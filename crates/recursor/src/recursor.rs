//! The recursor itself: cache-assisted iterative resolution.
//!
//! A [`Recursor`] is the shared service — caches, coalescing table, clock,
//! per-server gate, statistics. Each thread resolves through its own
//! [`RecursorWorker`], which owns a socket-backed [`Resolver`] for the
//! validated wire exchanges and consults the shared state around it:
//!
//! 1. answer cache (TTL-aware, positive + RFC 2308 negative),
//! 2. singleflight table (identical concurrent questions coalesce),
//! 3. infrastructure cache (start the descent at the deepest known cut
//!    instead of the root),
//! 4. the wire, with `ResolverConfig` retry/timeout policy and per-server
//!    concurrency bounds.
//!
//! Cache hits replay the original [`Resolution`] verbatim — same rcode,
//! same records, same TTL fields — so measurement observations are
//! byte-identical with and without the cache (asserted by the three-way
//! equivalence test).

use crate::cache::{AnswerCache, CacheConfig};
use crate::clock::SharedClock;
use crate::infra::InfraCache;
use crate::scheduler::ServerGate;
use crate::singleflight::Singleflight;
use dps_authdns::health::{HealthConfig, HealthTracker};
use dps_authdns::resolver::{FailureCause, Resolution, ResolveError, Resolver, ResolverConfig};
use dps_dns::{Message, Name, RData, Rcode, Record, RrType};
use dps_netsim::{Day, Network};
use dps_telemetry::{Counter, Histogram, Registry};
use std::net::IpAddr;
use std::ops::Sub;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Tunables for the whole service.
#[derive(Debug, Clone, Copy)]
pub struct RecursorConfig {
    /// Wire policy: per-attempt timeout, retries, loop guards, backoff,
    /// hedging.
    pub resolver: ResolverConfig,
    /// Answer-cache sizing and negative-TTL fallback.
    pub cache: CacheConfig,
    /// Maximum cached zone cuts in the infrastructure cache.
    pub infra_capacity: usize,
    /// Concurrent in-flight exchanges allowed per authoritative server.
    pub max_inflight_per_server: u32,
    /// Per-nameserver circuit-breaker policy, shared across workers.
    pub health: HealthConfig,
}

impl Default for RecursorConfig {
    fn default() -> Self {
        Self {
            resolver: ResolverConfig::default(),
            cache: CacheConfig::default(),
            infra_capacity: 10_000,
            max_inflight_per_server: 4,
            health: HealthConfig::default(),
        }
    }
}

/// Service-wide counters (monotonic; snapshot via [`Recursor::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecursorStats {
    /// Questions asked.
    pub queries: u64,
    /// Served from the answer cache.
    pub cache_hits: u64,
    /// Needed network work (or a coalesced wait).
    pub cache_misses: u64,
    /// Coalesced onto an identical in-flight question.
    pub coalesced: u64,
    /// Exchange attempts beyond the first within one server-set query.
    pub retries: u64,
    /// Descents that started below the root thanks to the infra cache.
    pub infra_starts: u64,
    /// Network resolutions that failed with silence until the deadline.
    pub failed_timeout: u64,
    /// Network resolutions that failed with ICMP-style unreachable.
    pub failed_unreachable: u64,
    /// Network resolutions that failed on corrupt/invalid replies.
    pub failed_corrupt: u64,
    /// Network resolutions that failed with an error RCODE.
    pub failed_servfail: u64,
    /// Network resolutions that failed for structural reasons.
    pub failed_other: u64,
    /// Hedge datagrams sent for straggling exchanges.
    pub hedges: u64,
    /// Circuit-breaker trips across all tracked servers.
    pub breaker_trips: u64,
}

impl RecursorStats {
    /// Failed network resolutions across every cause.
    pub fn failed_total(&self) -> u64 {
        self.failed_timeout
            + self.failed_unreachable
            + self.failed_corrupt
            + self.failed_servfail
            + self.failed_other
    }
}

impl Sub for RecursorStats {
    type Output = RecursorStats;
    fn sub(self, rhs: RecursorStats) -> RecursorStats {
        RecursorStats {
            queries: self.queries - rhs.queries,
            cache_hits: self.cache_hits - rhs.cache_hits,
            cache_misses: self.cache_misses - rhs.cache_misses,
            coalesced: self.coalesced - rhs.coalesced,
            retries: self.retries - rhs.retries,
            infra_starts: self.infra_starts - rhs.infra_starts,
            failed_timeout: self.failed_timeout - rhs.failed_timeout,
            failed_unreachable: self.failed_unreachable - rhs.failed_unreachable,
            failed_corrupt: self.failed_corrupt - rhs.failed_corrupt,
            failed_servfail: self.failed_servfail - rhs.failed_servfail,
            failed_other: self.failed_other - rhs.failed_other,
            hedges: self.hedges - rhs.hedges,
            breaker_trips: self.breaker_trips - rhs.breaker_trips,
        }
    }
}

#[derive(Default)]
struct AtomicStats {
    queries: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    coalesced: AtomicU64,
    retries: AtomicU64,
    infra_starts: AtomicU64,
    failed_timeout: AtomicU64,
    failed_unreachable: AtomicU64,
    failed_corrupt: AtomicU64,
    failed_servfail: AtomicU64,
    failed_other: AtomicU64,
    hedges: AtomicU64,
}

impl AtomicStats {
    fn record_failure_cause(&self, cause: FailureCause) {
        let counter = match cause {
            FailureCause::Timeout => &self.failed_timeout,
            FailureCause::Unreachable => &self.failed_unreachable,
            FailureCause::Corrupt => &self.failed_corrupt,
            FailureCause::ServerFailure => &self.failed_servfail,
            FailureCause::Other => &self.failed_other,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// Telemetry handles for the resolution path (`recursor.*` names).
/// `Default` handles are detached — they count, but belong to no registry.
#[derive(Clone, Default)]
struct RecursorMetrics {
    queries: Counter,
    coalesced: Counter,
    infra_hits: Counter,
    iteration_depth: Histogram,
}

impl RecursorMetrics {
    fn new(registry: &Registry) -> Self {
        Self {
            queries: registry.counter("recursor.queries"),
            coalesced: registry.counter("recursor.singleflight.coalesced"),
            infra_hits: registry.counter("recursor.infra.hits"),
            iteration_depth: registry.histogram("recursor.iteration.depth"),
        }
    }
}

struct Shared {
    config: RecursorConfig,
    root_hints: Vec<IpAddr>,
    answers: AnswerCache,
    infra: InfraCache,
    flight: Singleflight<(Name, RrType), Result<Resolution, ResolveError>>,
    clock: SharedClock,
    gate: ServerGate,
    health: Arc<HealthTracker>,
    stats: AtomicStats,
    metrics: RecursorMetrics,
}

impl Shared {
    fn stats_snapshot(&self) -> RecursorStats {
        let s = &self.stats;
        RecursorStats {
            queries: s.queries.load(Ordering::Relaxed),
            cache_hits: s.cache_hits.load(Ordering::Relaxed),
            cache_misses: s.cache_misses.load(Ordering::Relaxed),
            coalesced: s.coalesced.load(Ordering::Relaxed),
            retries: s.retries.load(Ordering::Relaxed),
            infra_starts: s.infra_starts.load(Ordering::Relaxed),
            failed_timeout: s.failed_timeout.load(Ordering::Relaxed),
            failed_unreachable: s.failed_unreachable.load(Ordering::Relaxed),
            failed_corrupt: s.failed_corrupt.load(Ordering::Relaxed),
            failed_servfail: s.failed_servfail.load(Ordering::Relaxed),
            failed_other: s.failed_other.load(Ordering::Relaxed),
            hedges: s.hedges.load(Ordering::Relaxed),
            breaker_trips: self.health.trips(),
        }
    }
}

/// The shared caching-recursor service. Cloning is cheap (an `Arc` bump);
/// all clones share caches, clock and statistics.
#[derive(Clone)]
pub struct Recursor {
    shared: Arc<Shared>,
}

impl Recursor {
    /// A fresh service resolving from `root_hints` (telemetry detached;
    /// see [`Recursor::with_telemetry`]).
    pub fn new(root_hints: Vec<IpAddr>, config: RecursorConfig) -> Self {
        Self::with_telemetry(root_hints, config, &Registry::new())
    }

    /// A fresh service whose `recursor.*` and `health.breaker.*`
    /// instruments live in `registry`.
    pub fn with_telemetry(
        root_hints: Vec<IpAddr>,
        config: RecursorConfig,
        registry: &Registry,
    ) -> Self {
        Self {
            shared: Arc::new(Shared {
                answers: AnswerCache::new(&config.cache).with_telemetry(registry),
                infra: InfraCache::new(config.infra_capacity),
                flight: Singleflight::new(),
                clock: SharedClock::new(),
                gate: ServerGate::new(config.max_inflight_per_server),
                health: Arc::new(HealthTracker::new(config.health).with_telemetry(registry)),
                stats: AtomicStats::default(),
                metrics: RecursorMetrics::new(registry),
                config,
                root_hints,
            }),
        }
    }

    /// Opens a worker bound to its own deterministic netsim stream.
    pub fn worker(&self, net: &Arc<Network>, src: IpAddr, stream: u64) -> RecursorWorker {
        let resolver = Resolver::new(net, src, stream, self.shared.root_hints.clone())
            .with_config(self.shared.config.resolver)
            .with_health(Arc::clone(&self.shared.health));
        let day_anchor_us = self.shared.clock.day_start_us();
        let socket_anchor_us = resolver.now_us();
        RecursorWorker {
            shared: Arc::clone(&self.shared),
            resolver,
            day_anchor_us,
            socket_anchor_us,
        }
    }

    /// Jumps the shared clock to the start of `day`; entries whose TTLs
    /// ended on earlier days expire on their next lookup.
    pub fn begin_day(&self, day: Day) {
        self.shared.clock.advance_to_day(day);
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &SharedClock {
        &self.shared.clock
    }

    /// The answer cache (for inspection; workers populate it).
    pub fn answer_cache(&self) -> &AnswerCache {
        &self.shared.answers
    }

    /// The infrastructure cache.
    pub fn infra_cache(&self) -> &InfraCache {
        &self.shared.infra
    }

    /// The shared per-nameserver health tracker.
    pub fn health(&self) -> &Arc<HealthTracker> {
        &self.shared.health
    }

    /// Counter snapshot across all workers.
    pub fn stats(&self) -> RecursorStats {
        self.shared.stats_snapshot()
    }
}

/// One thread's handle on the service: a socket plus the shared caches.
pub struct RecursorWorker {
    shared: Arc<Shared>,
    resolver: Resolver,
    /// The shared-clock day start this worker's socket time is anchored to.
    day_anchor_us: u64,
    /// Socket time when the current day's anchor was taken.
    socket_anchor_us: u64,
}

impl RecursorWorker {
    /// Resolves `(qname, qtype)`, serving from cache when possible and
    /// coalescing with identical in-flight questions otherwise.
    pub fn resolve(&mut self, qname: &Name, qtype: RrType) -> Result<Resolution, ResolveError> {
        let shared = Arc::clone(&self.shared);
        shared.stats.queries.fetch_add(1, Ordering::Relaxed);
        shared.metrics.queries.inc();

        if let Some(hit) = shared.answers.get(qname, qtype, shared.clock.now_us()) {
            shared.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit);
        }
        shared.stats.cache_misses.fetch_add(1, Ordering::Relaxed);

        let key = (qname.clone(), qtype);
        let (result, coalesced) = shared.flight.run(key, || {
            let r = self.resolve_network(qname, qtype);
            if let Err(e) = &r {
                // Leader-only: one count per network resolution, not per
                // coalesced waiter.
                shared.stats.record_failure_cause(e.cause());
            }
            r
        });
        if coalesced {
            shared.stats.coalesced.fetch_add(1, Ordering::Relaxed);
            shared.metrics.coalesced.inc();
        }
        result
    }

    /// UDP queries this worker's socket has sent.
    pub fn queries_sent(&self) -> u64 {
        self.resolver.queries_sent()
    }

    /// This worker's socket virtual clock (µs since creation).
    pub fn now_us(&self) -> u64 {
        self.resolver.now_us()
    }

    /// Service-wide counter snapshot (shared across all workers).
    pub fn service_stats(&self) -> RecursorStats {
        self.shared.stats_snapshot()
    }

    /// Advances this worker's socket clock without sending — a pause
    /// between supervised retry passes (lets scripted outages end).
    pub fn sleep_us(&mut self, dt_us: u64) {
        self.resolver.sleep_us(dt_us);
    }

    /// Full resolution over the network (the singleflight leader's path).
    /// Mirrors `Resolver::resolve`'s CNAME-restart loop, with the answer
    /// cache consulted at each restart and results cached on the way out.
    fn resolve_network(&mut self, qname: &Name, qtype: RrType) -> Result<Resolution, ResolveError> {
        let shared = Arc::clone(&self.shared);
        let started = self.resolver.now_us();
        let mut chain: Vec<Record> = Vec::new();
        let mut current = qname.clone();

        for _ in 0..=shared.config.resolver.max_indirections {
            // A restarted alias target may itself be cached (shared CDN
            // edges are hit by many apexes).
            if current != *qname {
                let now = shared.clock.now_us();
                if let Some((hit, expires_at_us)) =
                    shared.answers.get_with_expiry(&current, qtype, now)
                {
                    shared.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                    // The replayed records keep their original ttl fields,
                    // so the re-cached chain must not outlive the entry it
                    // was derived from: cap by the remaining lifetime.
                    let remaining_secs = (expires_at_us.saturating_sub(now) / 1_000_000) as u32;
                    chain.extend(hit.answers);
                    return Ok(self.finish(
                        qname,
                        qtype,
                        hit.rcode,
                        chain,
                        started,
                        None,
                        Some(remaining_secs),
                    ));
                }
            }

            let resp = self.resolve_once(&current, qtype, 0)?;
            match resp.header.rcode {
                Rcode::NoError => {}
                Rcode::NxDomain => {
                    chain.extend(resp.answers.iter().cloned());
                    let soa = soa_minimum(&resp);
                    if current != *qname {
                        self.cache_segment(&current, qtype, Rcode::NxDomain, &resp.answers, soa);
                    }
                    return Ok(self.finish(
                        qname,
                        qtype,
                        Rcode::NxDomain,
                        chain,
                        started,
                        soa,
                        None,
                    ));
                }
                rc => return Err(ResolveError::ServerFailure(rc)),
            }

            chain.extend(resp.answers.iter().cloned());

            // Follow the CNAME chain inside this response.
            let mut tip = current.clone();
            loop {
                let next = resp.answers.iter().find_map(|r| match &r.rdata {
                    RData::Cname(t) if r.name == tip => Some(t.clone()),
                    _ => None,
                });
                match next {
                    Some(t) => tip = t,
                    None => break,
                }
            }

            let have_final = qtype == RrType::Cname
                || resp
                    .answers
                    .iter()
                    .any(|r| r.name == tip && r.rtype() == qtype);
            if have_final || tip == current {
                let soa = soa_minimum(&resp);
                if current != *qname {
                    // Terminal segment of a restarted chase: cacheable under
                    // its own name, so other apexes aliased onto the same
                    // target (shared CDN edges) hit without a descent.
                    self.cache_segment(&current, qtype, Rcode::NoError, &resp.answers, soa);
                }
                return Ok(self.finish(qname, qtype, Rcode::NoError, chain, started, soa, None));
            }
            current = tip;
        }
        Err(ResolveError::TooManyIndirections)
    }

    /// Caches a terminal resolution segment under its own name. Only
    /// complete segments may be stored: a mid-chain response (a CNAME whose
    /// target lives elsewhere) would replay as a truncated answer.
    fn cache_segment(
        &self,
        qname: &Name,
        qtype: RrType,
        rcode: Rcode,
        answers: &[Record],
        soa_minimum: Option<u32>,
    ) {
        let shared = &self.shared;
        let negative = rcode == Rcode::NxDomain || !answers.iter().any(|r| r.rtype() == qtype);
        let ttl = if negative {
            soa_minimum.unwrap_or(shared.config.cache.negative_ttl_fallback)
        } else {
            answers.iter().map(|r| r.ttl).min().unwrap_or(0)
        };
        let resolution = Resolution {
            rcode,
            answers: answers.to_vec(),
            elapsed_us: 0,
        };
        shared.answers.insert(
            qname,
            qtype,
            resolution,
            ttl,
            negative,
            shared.clock.now_us(),
        );
    }

    /// Folds elapsed socket time into the shared clock, caches the result
    /// (negative entries live for the SOA `minimum`, per RFC 2308), and
    /// builds the final [`Resolution`]. `ttl_cap` bounds the cached
    /// lifetime when the chain replayed an already-cached entry, so a
    /// derived answer never outlives its source.
    #[allow(clippy::too_many_arguments)]
    fn finish(
        &mut self,
        qname: &Name,
        qtype: RrType,
        rcode: Rcode,
        answers: Vec<Record>,
        started_us: u64,
        soa_minimum: Option<u32>,
        ttl_cap: Option<u32>,
    ) -> Resolution {
        let shared = &self.shared;
        let socket_now = self.resolver.now_us();
        let elapsed_us = socket_now - started_us;

        // Project this worker's socket time onto the shared day timeline:
        // virtual time is the *max* over workers of (day start + that
        // worker's own work since the day began), not the sum of all
        // workers' work — summing would expire entries N× too fast as the
        // worker count grows.
        let day_start = shared.clock.day_start_us();
        if day_start != self.day_anchor_us {
            self.day_anchor_us = day_start;
            self.socket_anchor_us = socket_now;
        }
        shared
            .clock
            .advance_to(self.day_anchor_us + (socket_now - self.socket_anchor_us));
        let now = shared.clock.now_us();

        let resolution = Resolution {
            rcode,
            answers,
            elapsed_us,
        };
        let negative =
            rcode == Rcode::NxDomain || !resolution.answers.iter().any(|r| r.rtype() == qtype);
        let ttl = if negative {
            soa_minimum.unwrap_or(shared.config.cache.negative_ttl_fallback)
        } else {
            resolution.answers.iter().map(|r| r.ttl).min().unwrap_or(0)
        };
        let ttl = ttl_cap.map_or(ttl, |cap| ttl.min(cap));
        shared
            .answers
            .insert(qname, qtype, resolution.clone(), ttl, negative, now);
        resolution
    }

    /// One referral descent for a single owner name, starting from the
    /// deepest cached cut (the root hints when the infra cache is cold).
    /// `depth` guards nested glue resolutions.
    fn resolve_once(
        &mut self,
        qname: &Name,
        qtype: RrType,
        depth: u32,
    ) -> Result<Message, ResolveError> {
        let shared = Arc::clone(&self.shared);
        if depth > 2 {
            return Err(ResolveError::NoNameservers);
        }
        let servers = match shared.infra.deepest(qname, shared.clock.now_us()) {
            Some((_, cached)) => {
                shared.stats.infra_starts.fetch_add(1, Ordering::Relaxed);
                shared.metrics.infra_hits.inc();
                cached
            }
            None => shared.root_hints.clone(),
        };

        let mut rounds = 0u64;
        let result = self.descend(qname, qtype, depth, servers, &mut rounds);
        shared.metrics.iteration_depth.observe(rounds);
        result
    }

    /// The referral walk of [`RecursorWorker::resolve_once`], split out so
    /// the number of query rounds lands in the iteration-depth histogram
    /// on every exit path.
    fn descend(
        &mut self,
        qname: &Name,
        qtype: RrType,
        depth: u32,
        mut servers: Vec<IpAddr>,
        rounds: &mut u64,
    ) -> Result<Message, ResolveError> {
        let shared = Arc::clone(&self.shared);
        for _ in 0..=shared.config.resolver.max_referrals {
            *rounds += 1;
            let resp = self.query_gated(&servers, qname, qtype)?;
            match resp.header.rcode {
                Rcode::NoError => {}
                _ => return Ok(resp),
            }
            if !resp.answers.is_empty() || resp.header.aa {
                return Ok(resp);
            }

            // Referral: learn the cut, gather NS targets + glue.
            let ns_records: Vec<&Record> = resp
                .authorities
                .iter()
                .filter(|r| matches!(r.rdata, RData::Ns(_)))
                .collect();
            let Some(cut) = ns_records.first().map(|r| r.name.clone()) else {
                return Err(ResolveError::NoNameservers);
            };
            let ns_ttl = ns_records.iter().map(|r| r.ttl).min().unwrap_or(0);
            let ns_targets: Vec<Name> = ns_records
                .iter()
                .filter_map(|r| match &r.rdata {
                    RData::Ns(t) => Some(t.clone()),
                    _ => None,
                })
                .collect();

            let mut next: Vec<IpAddr> = resp
                .additionals
                .iter()
                .filter_map(|r| match &r.rdata {
                    RData::A(a) if ns_targets.contains(&r.name) => Some(IpAddr::V4(*a)),
                    _ => None,
                })
                .collect();
            if next.is_empty() {
                // Glueless delegation: resolve the first NS names, via the
                // answer cache when their addresses are already known.
                for target in ns_targets.iter().take(2) {
                    let cached = shared.answers.get(target, RrType::A, shared.clock.now_us());
                    let answers = match cached {
                        Some(hit) => {
                            shared.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                            hit.answers
                        }
                        None => match self.resolve_once(target, RrType::A, depth + 1) {
                            Ok(m) => m.answers,
                            Err(_) => continue,
                        },
                    };
                    next.extend(answers.iter().filter_map(|r| match &r.rdata {
                        RData::A(a) if r.name == *target => Some(IpAddr::V4(*a)),
                        _ => None,
                    }));
                }
            }
            if next.is_empty() {
                return Err(ResolveError::NoNameservers);
            }
            shared
                .infra
                .put(cut, next.clone(), ns_ttl, shared.clock.now_us());
            servers = next;
        }
        Err(ResolveError::TooManyReferrals)
    }

    /// `Resolver`-style retry/failover over `servers`, one gated validated
    /// exchange at a time. Server order consults the shared circuit
    /// breakers; retry rounds back off exponentially (if configured); a
    /// straggling exchange hedges onto the next candidate when that
    /// server's politeness gate has a free slot.
    fn query_gated(
        &mut self,
        servers: &[IpAddr],
        qname: &Name,
        qtype: RrType,
    ) -> Result<Message, ResolveError> {
        let shared = Arc::clone(&self.shared);
        let hedging = shared.config.resolver.hedge_after_us > 0;
        let mut last_err = ResolveError::Timeout;
        let mut attempts = 0u64;
        for round in 0..shared.config.resolver.retries.max(1) {
            self.resolver.backoff_sleep(round);
            let ordered = shared.health.order(servers, shared.clock.now_us());
            for (i, &server) in ordered.iter().enumerate() {
                if attempts > 0 {
                    shared.stats.retries.fetch_add(1, Ordering::Relaxed);
                }
                attempts += 1;
                let hedges_before = self.resolver.hedges_sent();
                let exchanged = {
                    let _permit = shared.gate.acquire(server);
                    // Hedge only onto a candidate with a free politeness
                    // slot; never block on a second permit (deadlock-free:
                    // each worker blocks on at most its primary).
                    let hedge_permit = if hedging {
                        ordered
                            .get(i + 1)
                            .and_then(|&h| shared.gate.try_acquire(h).map(|p| (h, p)))
                    } else {
                        None
                    };
                    let hedge = hedge_permit.as_ref().map(|&(h, _)| h);
                    self.resolver.exchange_hedged(server, hedge, qname, qtype)
                };
                let hedged = self.resolver.hedges_sent() - hedges_before;
                if hedged > 0 {
                    shared.stats.hedges.fetch_add(hedged, Ordering::Relaxed);
                }
                match exchanged {
                    Ok(out) => {
                        shared.health.record_success(out.responder);
                        return Ok(out.message);
                    }
                    Err(e) => {
                        shared.health.record_failure(server, shared.clock.now_us());
                        last_err = e;
                    }
                }
            }
        }
        Err(last_err)
    }
}

/// RFC 2308 negative TTL: the SOA `minimum` attached to the authority
/// section of a negative answer.
fn soa_minimum(resp: &Message) -> Option<u32> {
    resp.authorities.iter().find_map(|r| match &r.rdata {
        RData::Soa(soa) => Some(soa.minimum),
        _ => None,
    })
}
