//! The TTL-aware answer cache.
//!
//! Keys are `(owner name, query type)`; values are full [`Resolution`]s so
//! a hit reproduces the uncached observation byte for byte. Entries honour
//! record TTLs against the shared virtual clock; authoritative negative
//! answers (NXDOMAIN / NODATA) are cached per RFC 2308 with the zone's SOA
//! `minimum` as their lifetime. The cache is sharded to keep lock
//! contention off the sweep's hot path and capacity-bounded: a full shard
//! evicts its earliest-expiring entry, which a fresh insert is about to
//! outlive anyway. Each shard keeps a `BTreeMap` expiry index beside the
//! hash map so the victim is found in O(log n) instead of a full scan
//! under the hot-path lock.

use dps_authdns::resolver::Resolution;
use dps_dns::{Name, RrType};
use dps_telemetry::{Counter, Registry};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// Answer-cache tunables.
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Maximum cached answers across all shards.
    pub capacity: usize,
    /// Number of independently locked shards (rounded up to at least 1).
    pub shards: usize,
    /// Negative-answer lifetime when the response carried no SOA to take
    /// RFC 2308's `minimum` from (seconds).
    pub negative_ttl_fallback: u32,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            capacity: 100_000,
            shards: 16,
            negative_ttl_fallback: 300,
        }
    }
}

/// A cached resolution with its expiry.
#[derive(Debug, Clone)]
pub struct CachedAnswer {
    /// The resolution served on a hit.
    pub resolution: Resolution,
    /// Absolute virtual expiry (µs).
    pub expires_at_us: u64,
    /// True for RFC 2308 negative entries (NXDOMAIN / NODATA).
    pub negative: bool,
    /// Insertion sequence number; tie-breaks the shard's expiry index.
    expiry_seq: u64,
}

/// Monotonic counters, readable as a consistent-enough snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from cache.
    pub hits: u64,
    /// Lookups that found nothing usable.
    pub misses: u64,
    /// Entries stored.
    pub inserts: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Entries dropped because their TTL had lapsed at lookup time.
    pub expirations: u64,
}

#[derive(Default)]
struct AtomicCacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
    expirations: AtomicU64,
}

type Key = (Name, RrType);

/// One shard: the answer map plus an expiry-ordered index over the same
/// entries, so capacity eviction pops the earliest expiry in O(log n)
/// rather than scanning the whole map under the lock.
#[derive(Default)]
struct ShardState {
    map: HashMap<Key, CachedAnswer>,
    by_expiry: BTreeMap<(u64, u64), Key>,
    next_seq: u64,
}

type Shard = Mutex<ShardState>;

/// Telemetry handles mirroring the lookup-path [`CacheStats`] counters
/// into a shared registry (`recursor.answer.*`). `Default` handles are
/// detached — they count, but belong to no registry.
#[derive(Clone, Default)]
struct CacheMetrics {
    hits: Counter,
    misses: Counter,
    expired: Counter,
}

impl CacheMetrics {
    fn new(registry: &Registry) -> Self {
        Self {
            hits: registry.counter("recursor.answer.hits"),
            misses: registry.counter("recursor.answer.misses"),
            expired: registry.counter("recursor.answer.expired"),
        }
    }
}

/// Sharded, thread-safe, TTL-aware cache of complete resolutions.
pub struct AnswerCache {
    shards: Vec<Shard>,
    shard_capacity: usize,
    stats: AtomicCacheStats,
    metrics: CacheMetrics,
}

impl AnswerCache {
    /// An empty cache sized by `config`.
    pub fn new(config: &CacheConfig) -> Self {
        let shards = config.shards.max(1);
        // Ceil-divide so the whole-cache bound is at least `capacity`.
        let shard_capacity = config.capacity.div_ceil(shards).max(1);
        Self {
            shards: (0..shards)
                .map(|_| Mutex::new(ShardState::default()))
                .collect(),
            shard_capacity,
            stats: AtomicCacheStats::default(),
            metrics: CacheMetrics::default(),
        }
    }

    /// Routes this cache's lookup counters into `registry`.
    #[must_use]
    pub fn with_telemetry(mut self, registry: &Registry) -> Self {
        self.metrics = CacheMetrics::new(registry);
        self
    }

    fn shard(&self, key: &Key) -> &Shard {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        // dps: allow(taint-panic, reason = "index is hash % shards.len() over a fixed non-empty shard array; no input value can push it out of bounds")
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// The resolution cached for `(qname, qtype)`, if still live at
    /// `now_us`. Expired entries are dropped on contact.
    pub fn get(&self, qname: &Name, qtype: RrType, now_us: u64) -> Option<Resolution> {
        self.get_with_expiry(qname, qtype, now_us).map(|(r, _)| r)
    }

    /// Like [`AnswerCache::get`], but also returns the entry's absolute
    /// expiry (µs). Callers that re-cache a replayed answer under a new
    /// name must cap the derived TTL by the remaining lifetime, as a real
    /// resolver decrements TTLs on replay.
    pub fn get_with_expiry(
        &self,
        qname: &Name,
        qtype: RrType,
        now_us: u64,
    ) -> Option<(Resolution, u64)> {
        let key = (qname.clone(), qtype);
        let mut shard = self.shard(&key).lock();
        let state = &mut *shard;
        match state.map.get(&key) {
            Some(e) if e.expires_at_us > now_us => {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                self.metrics.hits.inc();
                Some((e.resolution.clone(), e.expires_at_us))
            }
            Some(_) => {
                if let Some(dead) = state.map.remove(&key) {
                    state
                        .by_expiry
                        .remove(&(dead.expires_at_us, dead.expiry_seq));
                }
                self.stats.expirations.fetch_add(1, Ordering::Relaxed);
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                self.metrics.expired.inc();
                self.metrics.misses.inc();
                None
            }
            None => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                self.metrics.misses.inc();
                None
            }
        }
    }

    /// Whether the live entry for `(qname, qtype)` is negative. `None` when
    /// nothing (live) is cached. Does not touch hit/miss counters.
    pub fn negative(&self, qname: &Name, qtype: RrType, now_us: u64) -> Option<bool> {
        let key = (qname.clone(), qtype);
        let shard = self.shard(&key).lock();
        shard
            .map
            .get(&key)
            .filter(|e| e.expires_at_us > now_us)
            .map(|e| e.negative)
    }

    /// Stores `resolution` for `ttl_secs` starting at `now_us`. A positive
    /// insert over a negative entry (or vice versa) simply replaces it —
    /// the answer a zone serves *now* wins. A zero TTL is uncacheable and
    /// ignored.
    pub fn insert(
        &self,
        qname: &Name,
        qtype: RrType,
        resolution: Resolution,
        ttl_secs: u32,
        negative: bool,
        now_us: u64,
    ) {
        if ttl_secs == 0 {
            return;
        }
        let key = (qname.clone(), qtype);
        let expires_at_us = now_us + u64::from(ttl_secs) * 1_000_000;
        let mut shard = self.shard(&key).lock();
        let state = &mut *shard;
        let expiry_seq = state.next_seq;
        state.next_seq += 1;
        if let Some(old) = state.map.remove(&key) {
            state.by_expiry.remove(&(old.expires_at_us, old.expiry_seq));
        } else if state.map.len() >= self.shard_capacity {
            // Evict the entry closest to dying of old age.
            if let Some((_, victim)) = state.by_expiry.pop_first() {
                state.map.remove(&victim);
                self.stats.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        state
            .by_expiry
            .insert((expires_at_us, expiry_seq), key.clone());
        state.map.insert(
            key,
            CachedAnswer {
                resolution,
                expires_at_us,
                negative,
                expiry_seq,
            },
        );
        self.stats.inserts.fetch_add(1, Ordering::Relaxed);
    }

    /// Live + expired-but-unswept entries currently held.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.stats.hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            inserts: self.stats.inserts.load(Ordering::Relaxed),
            evictions: self.stats.evictions.load(Ordering::Relaxed),
            expirations: self.stats.expirations.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dps_dns::Rcode;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn res(rcode: Rcode) -> Resolution {
        Resolution {
            rcode,
            answers: vec![],
            elapsed_us: 0,
        }
    }

    #[test]
    fn serves_until_ttl_then_expires() {
        let cache = AnswerCache::new(&CacheConfig::default());
        cache.insert(
            &n("a.test"),
            RrType::A,
            res(Rcode::NoError),
            30,
            false,
            1_000,
        );
        assert!(cache.get(&n("a.test"), RrType::A, 1_000).is_some());
        assert!(cache.get(&n("a.test"), RrType::A, 30_000_999).is_some());
        assert!(cache.get(&n("a.test"), RrType::A, 30_001_000).is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.expirations), (2, 1, 1));
    }

    #[test]
    fn capacity_evicts_earliest_expiry() {
        let cache = AnswerCache::new(&CacheConfig {
            capacity: 2,
            shards: 1,
            ..Default::default()
        });
        cache.insert(
            &n("long.test"),
            RrType::A,
            res(Rcode::NoError),
            600,
            false,
            0,
        );
        cache.insert(
            &n("short.test"),
            RrType::A,
            res(Rcode::NoError),
            5,
            false,
            0,
        );
        cache.insert(&n("new.test"), RrType::A, res(Rcode::NoError), 60, false, 0);
        assert_eq!(cache.len(), 2);
        assert!(
            cache.get(&n("short.test"), RrType::A, 0).is_none(),
            "earliest expiry evicted"
        );
        assert!(cache.get(&n("long.test"), RrType::A, 0).is_some());
        assert!(cache.get(&n("new.test"), RrType::A, 0).is_some());
    }

    #[test]
    fn positive_insert_replaces_negative_entry() {
        let cache = AnswerCache::new(&CacheConfig::default());
        cache.insert(
            &n("flip.test"),
            RrType::A,
            res(Rcode::NxDomain),
            300,
            true,
            0,
        );
        assert_eq!(cache.negative(&n("flip.test"), RrType::A, 0), Some(true));
        cache.insert(
            &n("flip.test"),
            RrType::A,
            res(Rcode::NoError),
            300,
            false,
            0,
        );
        assert_eq!(cache.negative(&n("flip.test"), RrType::A, 0), Some(false));
        assert_eq!(
            cache.get(&n("flip.test"), RrType::A, 1).unwrap().rcode,
            Rcode::NoError
        );
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn zero_ttl_is_not_cached() {
        let cache = AnswerCache::new(&CacheConfig::default());
        cache.insert(&n("zero.test"), RrType::A, res(Rcode::NoError), 0, false, 0);
        assert!(cache.is_empty());
    }
}
