//! The infrastructure cache: referral NS sets and their glue.
//!
//! When a sweep asks about `d1.com`, the referral from the root teaches the
//! recursor where `com` lives. The next thousand `.com` domains in the
//! sweep should start at the TLD servers, not at the root — that is the
//! bulk of the packet savings a shared resolver cache buys. Entries map a
//! zone cut to the addresses that serve it and expire with the NS RRset's
//! TTL.

use dps_dns::Name;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::IpAddr;

#[derive(Debug, Clone)]
struct InfraEntry {
    servers: Vec<IpAddr>,
    expires_at_us: u64,
}

/// Capacity-bounded cache of zone cut → name-server addresses.
pub struct InfraCache {
    inner: Mutex<HashMap<Name, InfraEntry>>,
    capacity: usize,
}

impl InfraCache {
    /// An empty cache holding at most `capacity` cuts.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(HashMap::new()),
            capacity: capacity.max(1),
        }
    }

    /// Records that `cut` is served by `servers` for `ttl_secs`.
    pub fn put(&self, cut: Name, servers: Vec<IpAddr>, ttl_secs: u32, now_us: u64) {
        if ttl_secs == 0 || servers.is_empty() {
            return;
        }
        let mut map = self.inner.lock();
        if !map.contains_key(&cut) && map.len() >= self.capacity {
            if let Some(victim) = map
                .iter()
                .min_by_key(|(_, e)| e.expires_at_us)
                .map(|(k, _)| k.clone())
            {
                map.remove(&victim);
            }
        }
        map.insert(
            cut,
            InfraEntry {
                servers,
                expires_at_us: now_us + u64::from(ttl_secs) * 1_000_000,
            },
        );
    }

    /// The deepest cached cut enclosing `qname` (the qname itself counts),
    /// with its servers. Walks towards the root; expired entries along the
    /// way are dropped. The root itself is never cached here — when this
    /// returns `None`, resolution starts from the root hints.
    pub fn deepest(&self, qname: &Name, now_us: u64) -> Option<(Name, Vec<IpAddr>)> {
        let mut map = self.inner.lock();
        let mut cursor = qname.clone();
        loop {
            match map.get(&cursor) {
                Some(e) if e.expires_at_us > now_us => {
                    return Some((cursor.clone(), e.servers.clone()));
                }
                Some(_) => {
                    map.remove(&cursor);
                }
                None => {}
            }
            cursor = cursor.parent()?;
            if cursor.is_root() {
                return None;
            }
        }
    }

    /// Cached cuts (including expired-but-unswept ones).
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn ip(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    #[test]
    fn deepest_enclosing_cut_wins() {
        let cache = InfraCache::new(16);
        cache.put(n("com"), vec![ip("10.0.0.1")], 300, 0);
        cache.put(n("examp.com"), vec![ip("10.0.0.2")], 300, 0);
        let (cut, servers) = cache.deepest(&n("www.examp.com"), 0).unwrap();
        assert_eq!(cut, n("examp.com"));
        assert_eq!(servers, vec![ip("10.0.0.2")]);
        let (cut, _) = cache.deepest(&n("other.com"), 0).unwrap();
        assert_eq!(cut, n("com"));
        assert!(cache.deepest(&n("other.net"), 0).is_none());
    }

    #[test]
    fn expiry_falls_back_to_shallower_cut() {
        let cache = InfraCache::new(16);
        cache.put(n("com"), vec![ip("10.0.0.1")], 3_600, 0);
        cache.put(n("examp.com"), vec![ip("10.0.0.2")], 60, 0);
        let (cut, _) = cache.deepest(&n("www.examp.com"), 61_000_000).unwrap();
        assert_eq!(cut, n("com"), "expired deep cut skipped");
        assert_eq!(cache.len(), 1, "expired entry dropped on contact");
    }

    #[test]
    fn capacity_bound_holds() {
        let cache = InfraCache::new(2);
        cache.put(n("a.test"), vec![ip("10.0.0.1")], 10, 0);
        cache.put(n("b.test"), vec![ip("10.0.0.2")], 20, 0);
        cache.put(n("c.test"), vec![ip("10.0.0.3")], 30, 0);
        assert_eq!(cache.len(), 2);
        assert!(
            cache.deepest(&n("a.test"), 0).is_none(),
            "earliest expiry evicted"
        );
    }
}
