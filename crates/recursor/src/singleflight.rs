//! Query coalescing: one in-flight resolution per distinct question.
//!
//! When several workers ask the same `(qname, qtype)` at once — common at
//! sweep start, when every worker needs the TLD's NS set — only the first
//! does network work; the rest block until the leader publishes its result
//! and then share it. This is the classic "singleflight" pattern.

use parking_lot::{Condvar, Mutex};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct Call<V> {
    slot: Mutex<Option<V>>,
    done: Condvar,
}

/// Deduplicates concurrent identical calls.
pub struct Singleflight<K, V> {
    inflight: Mutex<HashMap<K, Arc<Call<V>>>>,
    coalesced: AtomicU64,
}

impl<K: Eq + Hash + Clone, V: Clone> Singleflight<K, V> {
    /// An empty flight table.
    pub fn new() -> Self {
        Self {
            inflight: Mutex::new(HashMap::new()),
            coalesced: AtomicU64::new(0),
        }
    }

    /// Runs `work` for `key`, unless an identical call is already in
    /// flight — then blocks and returns the leader's result instead.
    /// The boolean is true when this call was coalesced onto another.
    ///
    /// `work` must not panic: followers of a panicked leader would wait
    /// forever (resolution work returns errors as values, so this does not
    /// arise in practice).
    pub fn run(&self, key: K, work: impl FnOnce() -> V) -> (V, bool) {
        let call = {
            let mut inflight = self.inflight.lock();
            match inflight.entry(key.clone()) {
                Entry::Occupied(e) => {
                    let call = Arc::clone(e.get());
                    drop(inflight);
                    let mut slot = call.slot.lock();
                    while slot.is_none() {
                        call.done.wait(&mut slot);
                    }
                    self.coalesced.fetch_add(1, Ordering::Relaxed);
                    return (slot.clone().expect("leader published"), true);
                }
                Entry::Vacant(v) => {
                    let call = Arc::new(Call {
                        slot: Mutex::new(None),
                        done: Condvar::new(),
                    });
                    v.insert(Arc::clone(&call));
                    call
                }
            }
        };
        let value = work();
        *call.slot.lock() = Some(value.clone());
        call.done.notify_all();
        self.inflight.lock().remove(&key);
        (value, false)
    }

    /// Calls that piggy-backed on another's work so far.
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }
}

impl<K: Eq + Hash + Clone, V: Clone> Default for Singleflight<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use std::sync::Barrier;

    #[test]
    fn sequential_calls_each_run() {
        let sf = Singleflight::new();
        let (a, c1) = sf.run("k", || 1);
        let (b, c2) = sf.run("k", || 2);
        assert_eq!((a, c1, b, c2), (1, false, 2, false));
        assert_eq!(sf.coalesced(), 0);
    }

    #[test]
    fn concurrent_identical_calls_coalesce() {
        const THREADS: u32 = 8;
        let sf = Arc::new(Singleflight::new());
        let executions = Arc::new(AtomicU32::new(0));
        let gate = Arc::new(Barrier::new(THREADS as usize));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let (sf, executions, gate) =
                    (Arc::clone(&sf), Arc::clone(&executions), Arc::clone(&gate));
                std::thread::spawn(move || {
                    gate.wait();
                    sf.run("k", || {
                        executions.fetch_add(1, Ordering::SeqCst);
                        // Hold the flight open long enough for others to pile on.
                        std::thread::sleep(std::time::Duration::from_millis(50));
                        42
                    })
                    .0
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 42);
        }
        // Every thread that arrived while the leader slept shared its work.
        let ran = executions.load(Ordering::SeqCst);
        assert!(ran < THREADS, "{ran} executions for {THREADS} threads");
        assert_eq!(sf.coalesced(), u64::from(THREADS - ran));
    }
}
