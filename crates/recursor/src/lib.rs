//! dps-recursor: a caching recursive-resolution service.
//!
//! Sits between `dps-authdns` (iterative resolution over the simulated
//! network) and `dps-measure` (the sweep pipeline). Adds the pieces a real
//! resolver fleet would have that the bare iterative resolver lacks:
//!
//! * a sharded, TTL-aware **answer cache** (positive + RFC 2308 negative),
//! * an **infrastructure cache** of referral NS sets and glue so sibling
//!   queries skip the root,
//! * **singleflight coalescing** of concurrent identical queries,
//! * a **sweep scheduler** with bounded per-server concurrency and
//!   per-sweep statistics.

pub mod cache;
pub mod clock;
pub mod infra;
pub mod recursor;
pub mod scheduler;
pub mod singleflight;

pub use cache::{AnswerCache, CacheConfig, CacheStats, CachedAnswer};
pub use clock::SharedClock;
pub use infra::InfraCache;
pub use recursor::{Recursor, RecursorConfig, RecursorStats, RecursorWorker};
pub use scheduler::{ServerGate, SweepReport, SweepScheduler};
pub use singleflight::Singleflight;
