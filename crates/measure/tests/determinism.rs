//! Same-seed determinism regression: two independently built worlds with
//! the same seed must produce **byte-identical** archives.
//!
//! The chaos smoke in `ci.sh` checks the same property end-to-end through
//! the `dpscope` binary, but only on the chaos configuration and only when
//! that gate runs. This test pins the invariant in `cargo test` directly,
//! so a nondeterminism regression (a stray `HashMap` iteration, ambient
//! randomness, wall-clock read) fails the ordinary test suite with a
//! pinpointable diff instead of an opaque `cmp` failure in CI.

use dps_ecosystem::{ScenarioParams, World};
use dps_measure::{SnapshotStore, Study, StudyConfig};
use std::sync::atomic::{AtomicU64, Ordering};

/// Unique suffix per archive file so concurrently running tests in this
/// binary never collide on a temp path.
static NEXT_FILE: AtomicU64 = AtomicU64::new(0);

fn run_once(seed: u64) -> Vec<u8> {
    let mut world = World::imc2016(ScenarioParams::tiny(seed));
    let config = StudyConfig {
        days: 6,
        cc_start_day: 4,
        stride: 1,
    };
    let store = Study::new(config).run(&mut world);
    let path = std::env::temp_dir().join(format!(
        "dps-determinism-{}-{seed}-{}.dps",
        std::process::id(),
        NEXT_FILE.fetch_add(1, Ordering::Relaxed)
    ));
    store.save_archive(&path).expect("archive writes");
    let bytes = std::fs::read(&path).expect("archive readable");
    std::fs::remove_file(&path).ok();
    bytes
}

#[test]
fn same_seed_runs_produce_byte_identical_archives() {
    let a = run_once(9);
    let b = run_once(9);
    assert!(!a.is_empty());
    assert_eq!(
        a, b,
        "two same-seed runs serialised different archive bytes"
    );
}

#[test]
fn different_seeds_produce_different_archives() {
    // Guard against the test trivially passing because the archive ignores
    // the world entirely.
    let a = run_once(9);
    let c = run_once(10);
    assert_ne!(a, c, "archives do not depend on the seed at all");
}

#[test]
fn byte_identical_archives_reload_identically() {
    let bytes = run_once(11);
    let path =
        std::env::temp_dir().join(format!("dps-determinism-reload-{}.dps", std::process::id()));
    std::fs::write(&path, &bytes).expect("archive writes");
    let store = SnapshotStore::load_archive(&path).expect("archive loads");
    // Re-serialising a loaded store reproduces the original bytes: load is
    // lossless and save is a pure function of content.
    let path2 =
        std::env::temp_dir().join(format!("dps-determinism-resave-{}.dps", std::process::id()));
    store.save_archive(&path2).expect("archive re-writes");
    let again = std::fs::read(&path2).expect("archive readable");
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&path2).ok();
    assert_eq!(bytes, again, "save(load(a)) differed from a");
}

#[test]
fn telemetry_pages_are_archived_and_seed_deterministic() {
    // Two same-seed studies must render identical telemetry, and the
    // telemetry must actually be there: a per-day page for every measured
    // day, with the study's own counters populated.
    let mut stores = Vec::new();
    for _ in 0..2 {
        let bytes = run_once(12);
        let path = std::env::temp_dir().join(format!(
            "dps-determinism-telemetry-{}-{}.dps",
            std::process::id(),
            NEXT_FILE.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&path, &bytes).expect("archive writes");
        let store = SnapshotStore::load_archive(&path).expect("archive loads");
        std::fs::remove_file(&path).ok();
        stores.push(store);
    }
    let days: Vec<u32> = stores[0].all_telemetry().map(|(d, _)| d).collect();
    assert_eq!(days, vec![0, 1, 2, 3, 4, 5], "one telemetry page per day");
    let merged = stores[0].merged_telemetry();
    assert_eq!(merged.counters.get("measure.days"), Some(&6));
    assert!(merged.counters.get("measure.rows").copied().unwrap_or(0) > 0);
    assert_eq!(
        stores[0].merged_telemetry().to_json(),
        stores[1].merged_telemetry().to_json(),
        "same-seed studies rendered different metrics JSON"
    );
}

/// Runs a same-seed archived study with the given streaming block size
/// and shard count, returning the directory holding the archive.
fn run_archived_once(seed: u64, stream_block: usize, shards: u32) -> std::path::PathBuf {
    let mut world = World::imc2016(ScenarioParams::tiny(seed));
    let config = StudyConfig {
        days: 6,
        cc_start_day: 4,
        stride: 1,
    };
    let dir = std::env::temp_dir().join(format!(
        "dps-determinism-archived-{}-{}",
        std::process::id(),
        NEXT_FILE.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("archive.dps");
    Study::new(config)
        .with_stream_block(stream_block)
        .with_shards(shards)
        .run_archived(&mut world, &path)
        .expect("archived study runs");
    dir
}

/// Streaming world generation is an implementation detail of memory, not
/// of content: collecting a day in bounded blocks must serialise the
/// exact bytes a fully materialised collection would.
#[test]
fn streaming_blocks_match_materialized_collection_byte_for_byte() {
    let streamed = run_archived_once(13, dps_measure::STREAM_BLOCK_ENTRIES, 1);
    let materialized = run_archived_once(13, usize::MAX, 1);
    let a = std::fs::read(streamed.join("archive.dps")).expect("streamed archive");
    let b = std::fs::read(materialized.join("archive.dps")).expect("materialized archive");
    std::fs::remove_dir_all(&streamed).ok();
    std::fs::remove_dir_all(&materialized).ok();
    assert!(!a.is_empty());
    assert_eq!(a, b, "stream-block size leaked into the archive bytes");
}

/// Shard count is likewise invisible in content: loading a 3-shard
/// archive and a single-file archive of the same-seed run, then
/// re-saving both through the same single-file writer, must produce
/// identical bytes (same pages, same dictionary, same stats — the
/// canonical re-save erases only the commit granularity, which is the
/// one legitimate difference between the two on-disk histories).
#[test]
fn sharded_study_reloads_to_the_single_file_bytes() {
    let single = run_archived_once(14, dps_measure::STREAM_BLOCK_ENTRIES, 1);
    let sharded = run_archived_once(14, dps_measure::STREAM_BLOCK_ENTRIES, 3);
    assert!(
        sharded.join("archive.manifest").exists(),
        "shards=3 writes a manifest"
    );
    assert!(
        !single.join("archive.manifest").exists(),
        "shards=1 keeps the historical single-file layout"
    );
    let from_single =
        SnapshotStore::load_archive(&single.join("archive.dps")).expect("single-file loads");
    let from_sharded =
        SnapshotStore::load_archive(&sharded.join("archive.dps")).expect("sharded loads");
    let canon_single = single.join("resaved.dps");
    let canon_sharded = sharded.join("resaved.dps");
    from_single.save_archive(&canon_single).expect("re-save");
    from_sharded.save_archive(&canon_sharded).expect("re-save");
    let a = std::fs::read(&canon_single).expect("canonical single");
    let b = std::fs::read(&canon_sharded).expect("canonical sharded");
    std::fs::remove_dir_all(&single).ok();
    std::fs::remove_dir_all(&sharded).ok();
    assert!(!a.is_empty());
    assert_eq!(a, b, "sharded content drifted from the single-file run");
}
