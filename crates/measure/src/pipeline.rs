//! The study driver: sweeps every due source every day and fills the
//! snapshot store (cluster manager + worker cloud of paper Fig. 1).
//!
//! On multi-core machines the per-day sweep fans the input list out over a
//! crossbeam worker cloud; collected rows are merged and dictionary-encoded
//! by the manager thread, mirroring the collection/aggregation split of the
//! real system.

use crate::collector::{collect, collect_raw, BulkPath, QueryPath, RawRow, SldInterner};
use crate::observation::{entry_code, schema, Row, Source, SOURCES};
use crate::quality::{decode_qualities, encode_qualities, CauseCounts, DayQuality, QUALITY_SOURCE};
use crate::snapshot::{SnapshotStore, UNIQUE_KEY_COLUMN};
use crate::supervisor::{sweep_supervised_metered, SupervisorConfig, SweepMetrics};
use crate::telemetry::{decode_telemetry, encode_telemetry, TELEMETRY_SOURCE};
use dps_columnar::{StringDict, Table, TableBuilder};
use dps_ecosystem::World;
use dps_netsim::{Day, RibHistory};
use dps_store::{StoreReader, StoreWriter};
use dps_telemetry::{Counter, Registry, Snapshot};

/// Study configuration.
#[derive(Debug, Clone, Copy)]
pub struct StudyConfig {
    /// Total days to measure (gTLD window).
    pub days: u32,
    /// First day the .nl and Alexa sources are measured.
    pub cc_start_day: u32,
    /// Measure only every `stride`-th day (1 = daily, the paper's cadence;
    /// larger strides cut experiment wall-clock while preserving shapes).
    pub stride: u32,
}

impl StudyConfig {
    /// Daily measurement matching `world` parameters.
    pub fn for_world(world: &World) -> Self {
        Self {
            days: world.params.gtld_days,
            cc_start_day: world.params.cc_start_day,
            stride: 1,
        }
    }
}

/// Archive source id reserved for streaming-analysis checkpoint pages
/// (`dps-stream`). Data sources occupy 0..=4, quality pages 5 and
/// telemetry pages 6; 7 keeps checkpoint pages last within each day in
/// the catalog's `(day, source)` order.
pub const ANALYSIS_SOURCE: u8 = 7;

/// A hook on the day-commit path: an incremental analysis engine that
/// consumes each finished day *as it is committed* and emits one
/// checkpoint page per day so a resumed run replays — rather than
/// recomputes — analysis state.
///
/// Both the single-process [`Study::run_archived_observed`] and the
/// cluster manager funnel every committed day through the same
/// implementation, which is what keeps incremental analysis
/// worker-count-independent: the observer only ever sees the already
/// deterministically-merged day pages.
pub trait DayObserver {
    /// Called once per freshly measured day, after all of the day's rows
    /// have been interned into `dict` but before the commit. Returns the
    /// checkpoint table to persist under [`ANALYSIS_SOURCE`] plus
    /// telemetry counter deltas to fold into the day's telemetry page.
    fn on_day(
        &mut self,
        day: u32,
        pages: &[SourcePage],
        dict: &StringDict,
    ) -> std::io::Result<(Table, Vec<(&'static str, u64)>)>;

    /// Called once per already-committed day during resume, in day
    /// order, with the day's persisted checkpoint table. Must replay the
    /// engine to the exact state [`on_day`](Self::on_day) left it in.
    fn on_resume(&mut self, day: u32, table: &Table) -> std::io::Result<()>;
}

/// Reborrows an optional observer for one call without consuming it.
/// (A plain `as_deref_mut` cannot shorten the trait-object lifetime —
/// `&mut (dyn Trait + 'a)` is invariant in `'a` — but this explicit
/// coercion site can.)
pub fn reborrow_observer<'a>(
    observer: &'a mut Option<&mut dyn DayObserver>,
) -> Option<&'a mut dyn DayObserver> {
    match observer {
        Some(o) => Some(&mut **o),
        None => None,
    }
}

/// The measurement calendar: which sources are due on `day` under
/// `config`. Free function so out-of-process drivers (the cluster
/// manager) shard the exact same calendar [`Study`] sweeps.
pub fn due_sources_for(config: &StudyConfig, day: u32) -> Vec<Source> {
    let mut v = vec![Source::Com, Source::Net, Source::Org];
    if day >= config.cc_start_day {
        v.push(Source::Nl);
        v.push(Source::Alexa);
    }
    v
}

/// One finished (day, source) sweep: the encoded table plus its quality
/// record, ready to append to an archive in calendar order.
pub struct SourcePage {
    /// The source this page belongs to.
    pub source: Source,
    /// Dictionary-encoded observation rows.
    pub table: Table,
    /// Exact data-point count for the page (Table 1 accounting).
    pub data_points: u64,
    /// The day's coverage/failure record for this source.
    pub quality: DayQuality,
}

/// True when `day` is already durable in the archive: every due source
/// page plus the quality and telemetry pages are committed. A commit
/// happens once per day, so a day is either fully durable or (after
/// truncating a torn tail) absent entirely.
pub fn day_committed(writer: &StoreWriter, config: &StudyConfig, day: u32) -> bool {
    due_sources_for(config, day)
        .iter()
        .all(|s| writer.contains(day, s.index() as u8))
        && writer.contains(day, QUALITY_SOURCE)
        && writer.contains(day, TELEMETRY_SOURCE)
}

/// Appends one finished day to the archive and the in-memory store, then
/// commits a durable footer. This is **the** day-commit path: the
/// single-process [`Study::run_archived`] and the cluster manager both
/// funnel through it, which is what keeps a multi-worker sweep
/// byte-identical to the single-process run — pages land in the same
/// (day, source) order, followed by the same quality and telemetry
/// pages, followed by one commit against the shared dictionary.
///
/// `pages` must be in [`due_sources_for`] order for the day.
pub fn append_day(
    writer: &mut StoreWriter,
    store: &mut SnapshotStore,
    day: u32,
    pages: Vec<SourcePage>,
    telemetry: Snapshot,
) -> std::io::Result<()> {
    append_day_observed(writer, store, day, pages, telemetry, None)
}

/// [`append_day`] with an optional streaming-analysis observer: the
/// observer consumes the day's pages (rows already interned) before the
/// commit, its counter deltas are folded into the day's telemetry page,
/// and its checkpoint table is persisted under [`ANALYSIS_SOURCE`] after
/// the telemetry page — so the whole day, checkpoint included, is
/// covered by the same single durable commit.
pub fn append_day_observed(
    writer: &mut StoreWriter,
    store: &mut SnapshotStore,
    day: u32,
    pages: Vec<SourcePage>,
    mut telemetry: Snapshot,
    observer: Option<&mut dyn DayObserver>,
) -> std::io::Result<()> {
    let analysis = match observer {
        Some(obs) => {
            let (table, counters) = obs.on_day(day, &pages, &store.dict)?;
            for (name, v) in counters {
                *telemetry.counters.entry(name).or_insert(0) += v;
            }
            Some(table)
        }
        None => None,
    };
    let mut day_qualities = Vec::new();
    for page in pages {
        writer.append_table(
            day,
            page.source.index() as u8,
            &page.table,
            page.data_points,
        )?;
        store.add_table(day, page.source, &page.table, page.data_points);
        store.add_quality(page.quality);
        day_qualities.push(page.quality);
    }
    writer.append_table(day, QUALITY_SOURCE, &encode_qualities(&day_qualities), 0)?;
    writer.append_table(day, TELEMETRY_SOURCE, &encode_telemetry(&telemetry), 0)?;
    store.add_telemetry(day, telemetry);
    if let Some(table) = analysis {
        writer.append_table(day, ANALYSIS_SOURCE, &table, 0)?;
        store.add_analysis(day, table.to_bytes());
    }
    writer.commit(&store.dict)
}

/// Rehydrates a store from the committed pages of a resumed archive:
/// the dictionary continues from the last footer (interning is
/// idempotent, so ids stay identical) and committed days are reloaded
/// from the file instead of re-measured. Shared by
/// [`Study::run_archived`] and the cluster manager's resume path.
pub fn resume_store(
    store: &mut SnapshotStore,
    writer: &StoreWriter,
    path: &std::path::Path,
) -> std::io::Result<()> {
    resume_store_observed(store, writer, path, None)
}

/// [`resume_store`] with an optional streaming-analysis observer: the
/// persisted checkpoint pages of committed days are replayed through
/// [`DayObserver::on_resume`] in day order, so the engine resumes to the
/// exact (byte-identical) state it held when each day was committed.
///
/// The archive reads happen inside `dps-store`, but the untrusted bytes
/// are *consumed* here — the marker makes this a taint root the call
/// graph alone cannot derive.
// dps: ingress
pub fn resume_store_observed(
    store: &mut SnapshotStore,
    writer: &StoreWriter,
    path: &std::path::Path,
    mut observer: Option<&mut dyn DayObserver>,
) -> std::io::Result<()> {
    store.dict = writer.dict().clone();
    if writer.is_empty() {
        return Ok(());
    }
    // Rehydrate committed days (exact data-point counts come from the
    // catalog; no re-measurement, no estimation).
    let archive = StoreReader::open_auto_with_cache(path, 0)?;
    for (&(day, source), meta) in &archive.catalog().pages {
        let table = archive.table(day, source)?.ok_or_else(|| {
            std::io::Error::other("catalog lists a page the archive cannot produce")
        })?;
        if source == ANALYSIS_SOURCE {
            if let Some(obs) = observer.as_deref_mut() {
                obs.on_resume(day, &table)?;
            }
            store.add_analysis(day, table.to_bytes());
            continue;
        }
        if source == TELEMETRY_SOURCE {
            let snapshot = decode_telemetry(&table).ok_or_else(|| {
                std::io::Error::other("archive holds an undecodable telemetry page")
            })?;
            store.add_telemetry(day, snapshot);
            continue;
        }
        if source == QUALITY_SOURCE {
            let qualities = decode_qualities(&table).ok_or_else(|| {
                std::io::Error::other("archive holds an undecodable quality page")
            })?;
            for q in qualities {
                store.add_quality(q);
            }
            continue;
        }
        let src = Source::from_index(u32::from(source))
            .ok_or_else(|| std::io::Error::other("archive has an unknown source id"))?;
        store.add_table(day, src, &table, meta.data_points);
    }
    Ok(())
}

/// Sweep-volume counters the study records per measured day.
struct StudyMetrics {
    days: Counter,
    rows: Counter,
    data_points: Counter,
}

impl StudyMetrics {
    fn new(registry: &Registry) -> Self {
        Self {
            days: registry.counter("measure.days"),
            rows: registry.counter("measure.rows"),
            data_points: registry.counter("measure.data.points"),
        }
    }
}

/// Streaming-generation memory contract: at most this many entries'
/// worth of raw rows are in flight per source sweep. The day's rows are
/// generated block by block and interned into the page builder as each
/// block lands, so peak raw-row memory is `O(STREAM_BLOCK_ENTRIES)`
/// regardless of scale — never a whole-day `Vec`. Interning still walks
/// entries in list order, so the produced archive is byte-identical to a
/// whole-day materialization.
pub const STREAM_BLOCK_ENTRIES: usize = 8192;

/// Drives a full study over a world using the bulk query path.
pub struct Study {
    config: StudyConfig,
    store: SnapshotStore,
    history: RibHistory,
    registry: Registry,
    metrics: StudyMetrics,
    /// Raw-row streaming block size (entries); see [`STREAM_BLOCK_ENTRIES`].
    stream_block: usize,
    /// Shard files for a freshly created archive (1 = single-file).
    shards: u32,
}

impl Study {
    /// A study with an empty store and a private telemetry registry
    /// (per-day deltas land in the store as telemetry pages).
    pub fn new(config: StudyConfig) -> Self {
        let registry = Registry::new();
        let metrics = StudyMetrics::new(&registry);
        Self {
            config,
            store: SnapshotStore::new(),
            history: RibHistory::new(),
            registry,
            metrics,
            stream_block: STREAM_BLOCK_ENTRIES,
            shards: 1,
        }
    }

    /// Overrides the streaming block size (entries per generation block).
    /// `usize::MAX` reproduces the old whole-day materialization — the
    /// reference path the streaming-equivalence property test compares
    /// against. Output bytes are identical for any non-zero value.
    pub fn with_stream_block(mut self, entries: usize) -> Self {
        self.stream_block = entries.max(1);
        self
    }

    /// Shard count for a *freshly created* archive: 1 (the default)
    /// writes the historical single-file `archive.dps`; N > 1 writes a
    /// manifest plus N shard files whose scan work parallelises per
    /// shard. Resuming an existing archive keeps its layout regardless.
    pub fn with_shards(mut self, shards: u32) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// The study's telemetry registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The measurement calendar: which sources are due on `day`.
    pub fn due_sources(&self, day: u32) -> Vec<Source> {
        due_sources_for(&self.config, day)
    }

    /// Runs the whole study: advances the world through every measured day
    /// and sweeps all due sources. Returns the filled store.
    pub fn run(self, world: &mut World) -> SnapshotStore {
        self.run_with_history(world).0
    }

    /// Like [`run`](Self::run), additionally returning the archive of
    /// daily `pfx2as` snapshots (routing data *at measurement time*,
    /// paper §3.2).
    pub fn run_with_history(mut self, world: &mut World) -> (SnapshotStore, RibHistory) {
        let mut interner = SldInterner::new();
        let mut day = 0u32;
        while day < self.config.days {
            world.advance_to(Day(day));
            self.history.record(Day(day), world.pfx2as());
            let before = self.registry.snapshot();
            self.measure_day(world, day, &mut interner);
            let delta = self.registry.snapshot().since(&before);
            self.store.add_telemetry(day, delta);
            day += self.config.stride.max(1);
        }
        (self.store, self.history)
    }

    /// Runs the whole study while streaming each finished day into a
    /// `dps-store` archive at `path`, committing a durable footer after
    /// every measured day (checkpoint). If `path` already holds a partial
    /// archive — say, from a killed sweep — the run *resumes*: committed
    /// days are rehydrated from the file instead of re-measured, the
    /// dictionary continues from the last footer (interning is idempotent,
    /// so ids stay identical), and the world is still advanced through
    /// every day so ecosystem state matches an uninterrupted run. The
    /// resulting archive is byte-identical to one written in a single
    /// uninterrupted sweep.
    pub fn run_archived(
        self,
        world: &mut World,
        path: &std::path::Path,
    ) -> std::io::Result<SnapshotStore> {
        self.run_archived_observed(world, path, None)
    }

    /// [`run_archived`](Self::run_archived) with an optional
    /// streaming-analysis observer: committed days replay their
    /// checkpoint pages through the observer on resume, and every
    /// freshly measured day feeds the observer before its commit. A
    /// committed day with no checkpoint page means the archive was
    /// written without streaming analysis and cannot be resumed with it.
    pub fn run_archived_observed(
        mut self,
        world: &mut World,
        path: &std::path::Path,
        mut observer: Option<&mut dyn DayObserver>,
    ) -> std::io::Result<SnapshotStore> {
        let mut writer = StoreWriter::resume_or_create(path, self.shards, Some(UNIQUE_KEY_COLUMN))?;
        // Continue interning into the committed dictionary so a resumed
        // sweep assigns the same ids an uninterrupted one would.
        resume_store_observed(
            &mut self.store,
            &writer,
            path,
            reborrow_observer(&mut observer),
        )?;
        let mut interner = SldInterner::new();
        let mut day = 0u32;
        while day < self.config.days {
            // Advance through *every* day — including already-committed
            // ones — so world state evolves exactly as in a fresh run.
            world.advance_to(Day(day));
            self.history.record(Day(day), world.pfx2as());
            if !day_committed(&writer, &self.config, day) {
                let before = self.registry.snapshot();
                let pages = self.collect_day(world, day, &mut interner);
                let delta = self.registry.snapshot().since(&before);
                append_day_observed(
                    &mut writer,
                    &mut self.store,
                    day,
                    pages,
                    delta,
                    reborrow_observer(&mut observer),
                )?;
            } else if observer.is_some() && !writer.contains(day, ANALYSIS_SOURCE) {
                return Err(std::io::Error::other(
                    "archive day committed without an analysis checkpoint; \
                     re-run without --stream or start a fresh archive",
                ));
            }
            day += self.config.stride.max(1);
        }
        Ok(self.store)
    }

    /// Sweeps all due sources for the world's current day.
    ///
    /// The input list is fanned out over the crossbeam worker cloud
    /// (paper Fig. 1): workers collect raw rows against the immutable
    /// world; the manager thread dictionary-encodes and stores them.
    pub fn measure_day(&mut self, world: &World, day: u32, interner: &mut SldInterner) {
        for page in self.collect_day(world, day, interner) {
            self.store
                .add_table(day, page.source, &page.table, page.data_points);
            self.store.add_quality(page.quality);
        }
    }

    /// Collects and encodes one table per due source for `day` without
    /// storing them (shared by [`measure_day`](Self::measure_day) and
    /// [`run_archived`](Self::run_archived)).
    fn collect_day(
        &mut self,
        world: &World,
        day: u32,
        interner: &mut SldInterner,
    ) -> Vec<SourcePage> {
        let pfx2as = world.pfx2as();
        let mut out = Vec::new();
        self.metrics.days.inc();
        for source in self.due_sources(day) {
            let entries = match source.tld() {
                Some(tld) => world.zone_entries(tld),
                None => world.alexa_entries(),
            };
            // Streaming generation: walk the entry list in bounded blocks.
            // Each block fans out over the worker cloud, lands as raw rows,
            // and is interned into the page builder immediately — so raw
            // rows for at most `stream_block` entries exist at any moment,
            // not the whole day (the fixed-memory contract of
            // [`STREAM_BLOCK_ENTRIES`]). Blocks, chunks, and rows all keep
            // entry-list order, so the output is byte-identical to a
            // whole-day materialization.
            let workers = dps_columnar::mapreduce::default_workers().max(1);
            let block_len = self.stream_block.max(1);
            let mut builder = TableBuilder::new(schema());
            let mut data_points = 0u64;
            let mut attempted = 0u32;
            let mut failed = 0u32;
            let mut causes = CauseCounts::default();
            for block in entries.chunks(block_len) {
                // Worker cloud: one map task per chunk of the block.
                let chunk = block.len().div_ceil(workers).max(1);
                let chunks: Vec<&[dps_ecosystem::ZoneEntry]> = block.chunks(chunk).collect();
                let raw_chunks: Vec<Vec<RawRow>> =
                    dps_columnar::mapreduce::par_map(&chunks, |batch| {
                        let mut path = BulkPath::new(world);
                        batch
                            .iter()
                            .map(|&entry| {
                                let apex = world.entry_name(entry);
                                collect_raw(&mut path, &apex, entry_code(entry), &pfx2as)
                            })
                            .collect()
                    });
                // Manager: intern + encode (ordered, deterministic),
                // tallying the day's quality as rows stream past. The bulk
                // path cannot fail transiently, so the record has no
                // retries or hedges — only definitive failures (vanished
                // names) lower coverage.
                for raw in raw_chunks.into_iter().flatten() {
                    attempted += 1;
                    failed += u32::from(raw.failed && raw.retryable);
                    causes.merge(&raw.causes);
                    let row = raw.intern(&mut self.store.dict, interner);
                    data_points += u64::from(row.data_points);
                    builder.push_row(&row.pack(day, source));
                }
            }
            let mut quality = DayQuality::perfect(day, source, attempted, failed);
            quality.causes = causes;
            self.metrics.rows.add(u64::from(attempted));
            self.metrics.data_points.add(data_points);
            out.push(SourcePage {
                source,
                table: builder.finish(),
                data_points,
                quality,
            });
        }
        out
    }

    /// Immutable access to the store while the study is running.
    pub fn store(&self) -> &SnapshotStore {
        &self.store
    }
}

/// Sweeps one list through an arbitrary query path (used by the wire-path
/// validation tests and the lossy-network example).
pub fn sweep_with_path(
    world: &World,
    path: &mut impl QueryPath,
    source: Source,
    day: u32,
    store: &mut SnapshotStore,
    interner: &mut SldInterner,
) {
    let pfx2as = world.pfx2as();
    let entries = match source.tld() {
        Some(tld) => world.zone_entries(tld),
        None => world.alexa_entries(),
    };
    let mut builder = TableBuilder::new(schema());
    let mut data_points = 0u64;
    for &entry in entries.iter() {
        let apex = world.entry_name(entry);
        let row: Row = collect(
            path,
            &apex,
            entry_code(entry),
            &pfx2as,
            &mut store.dict,
            interner,
        );
        data_points += u64::from(row.data_points);
        builder.push_row(&row.pack(day, source));
    }
    store.add_table(day, source, &builder.finish(), data_points);
}

/// [`sweep_with_path`] under fault-tolerant supervision: first pass,
/// dead-letter retry passes, and a stored [`DayQuality`] record for the
/// day. Returns the quality record for the caller's logs.
#[allow(clippy::too_many_arguments)]
pub fn sweep_with_path_supervised(
    world: &World,
    path: &mut impl QueryPath,
    source: Source,
    day: u32,
    store: &mut SnapshotStore,
    interner: &mut SldInterner,
    config: &SupervisorConfig,
) -> DayQuality {
    sweep_with_path_supervised_metered(
        world,
        path,
        source,
        day,
        store,
        interner,
        config,
        &SweepMetrics::default(),
    )
}

/// [`sweep_with_path_supervised`] with telemetry: the sweep records its
/// quality tallies and virtual-time span into `metrics`.
#[allow(clippy::too_many_arguments)]
pub fn sweep_with_path_supervised_metered(
    world: &World,
    path: &mut impl QueryPath,
    source: Source,
    day: u32,
    store: &mut SnapshotStore,
    interner: &mut SldInterner,
    config: &SupervisorConfig,
    metrics: &SweepMetrics,
) -> DayQuality {
    let pfx2as = world.pfx2as();
    let entries = match source.tld() {
        Some(tld) => world.zone_entries(tld),
        None => world.alexa_entries(),
    };
    let jobs: Vec<(dps_dns::Name, u32)> = entries
        .iter()
        .map(|&entry| (world.entry_name(entry), entry_code(entry)))
        .collect();
    let sweep = sweep_supervised_metered(path, &jobs, &pfx2as, day, source, config, metrics);
    let mut builder = TableBuilder::new(schema());
    let mut data_points = 0u64;
    for raw in sweep.rows {
        let row = raw.intern(&mut store.dict, interner);
        data_points += u64::from(row.data_points);
        builder.push_row(&row.pack(day, source));
    }
    store.add_table(day, source, &builder.finish(), data_points);
    store.add_quality(sweep.quality);
    sweep.quality
}

/// Lists every source in Table 1 order (re-export convenience).
pub fn all_sources() -> [Source; 5] {
    SOURCES
}

#[cfg(test)]
mod tests {
    use super::*;
    use dps_ecosystem::ScenarioParams;

    #[test]
    fn tiny_study_fills_all_sources() {
        let mut world = World::imc2016(ScenarioParams::tiny(5));
        let config = StudyConfig {
            days: 25,
            cc_start_day: 20,
            stride: 1,
        };
        let store = Study::new(config).run(&mut world);

        for s in [Source::Com, Source::Net, Source::Org] {
            let st = store.stats(s);
            assert_eq!(st.days, 25, "{s:?}");
            assert_eq!(st.first_day, Some(0));
            assert!(st.unique_slds.len() > 10, "{s:?}");
            assert!(st.data_points > 0);
        }
        for s in [Source::Nl, Source::Alexa] {
            let st = store.stats(s);
            assert_eq!(st.days, 5, "{s:?}");
            assert_eq!(st.first_day, Some(20));
        }
    }

    #[test]
    fn history_records_routing_at_measurement_time() {
        use dps_netsim::OriginChange;
        // Horizon past the first ENOM→Verisign flip (day 30).
        let params = dps_ecosystem::ScenarioParams {
            seed: 4,
            scale: 0.05,
            gtld_days: 35,
            cc_start_day: 35,
        };
        let mut world = World::imc2016(params);
        let (_store, history) = Study::new(StudyConfig {
            days: 35,
            cc_start_day: 35,
            stride: 1,
        })
        .run_with_history(&mut world);
        assert_eq!(history.len(), 35);
        let changes = history.diff(Day(29), Day(30));
        let flip = changes.iter().find_map(|c| match c {
            OriginChange::OriginFlip { from, to, .. } => Some((from.clone(), to.clone())),
            _ => None,
        });
        let (from, to) = flip.expect("ENOM→Verisign flip recorded on day 30");
        assert_eq!(from[0].0, 21740, "ENOM before");
        assert_eq!(to[0].0, 26415, "Verisign during diversion");
    }

    #[test]
    fn stride_skips_days() {
        let mut world = World::imc2016(ScenarioParams::tiny(5));
        let config = StudyConfig {
            days: 20,
            cc_start_day: 99,
            stride: 5,
        };
        let store = Study::new(config).run(&mut world);
        assert_eq!(store.days(Source::Com), vec![0, 5, 10, 15]);
    }

    #[test]
    fn day_tables_decode_and_carry_day_column() {
        let mut world = World::imc2016(ScenarioParams::tiny(6));
        let config = StudyConfig {
            days: 3,
            cc_start_day: 99,
            stride: 1,
        };
        let store = Study::new(config).run(&mut world);
        let t = store.table(2, Source::Com).unwrap();
        assert!(t.rows() > 0);
        let days = t.column_by_name("day").unwrap();
        assert!(days.iter().all(|&d| d == 2));
    }

    #[test]
    fn archived_run_checkpoints_every_day_and_matches_in_memory() {
        let path =
            std::env::temp_dir().join(format!("dps-pipeline-archived-{}.dps", std::process::id()));
        std::fs::remove_file(&path).ok();
        let config = StudyConfig {
            days: 6,
            cc_start_day: 4,
            stride: 1,
        };
        let mut world = World::imc2016(ScenarioParams::tiny(9));
        let archived = Study::new(config).run_archived(&mut world, &path).unwrap();
        let mut world2 = World::imc2016(ScenarioParams::tiny(9));
        let in_memory = Study::new(config).run(&mut world2);
        for s in SOURCES {
            let (a, b) = (archived.stats(s), in_memory.stats(s));
            assert_eq!(a.days, b.days, "{s:?}");
            assert_eq!(a.data_points, b.data_points, "{s:?}");
            assert_eq!(a.unique_slds, b.unique_slds, "{s:?}");
        }
        // A second run over the finished archive measures nothing new and
        // reloads the exact same store from the file.
        let mut world3 = World::imc2016(ScenarioParams::tiny(9));
        let reloaded = Study::new(config).run_archived(&mut world3, &path).unwrap();
        assert_eq!(
            reloaded.stats(Source::Com).data_points,
            archived.stats(Source::Com).data_points
        );
        assert_eq!(reloaded.days(Source::Com), archived.days(Source::Com));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compression_beats_raw() {
        let mut world = World::imc2016(ScenarioParams::tiny(7));
        let config = StudyConfig {
            days: 5,
            cc_start_day: 99,
            stride: 1,
        };
        let store = Study::new(config).run(&mut world);
        let st = store.stats(Source::Com);
        assert!(
            st.stored_bytes * 2 < st.raw_bytes,
            "stored {} raw {}",
            st.stored_bytes,
            st.raw_bytes
        );
    }
}
