//! Stage II: the snapshot store — daily per-source columnar tables.
//!
//! Persistence is the `dps-store` single-file paged archive
//! ([`save_archive`](SnapshotStore::save_archive) /
//! [`load_archive`](SnapshotStore::load_archive)); the directory-based
//! [`save_dir`](SnapshotStore::save_dir) / [`load_dir`](SnapshotStore::load_dir)
//! API survives as a thin shim over it (plus a read-only fallback for the
//! deprecated loose-file layout older archives used).

use crate::observation::{schema, Source, SOURCES};
use crate::pipeline::ANALYSIS_SOURCE;
use crate::quality::{decode_qualities, encode_qualities, DayQuality, QUALITY_SOURCE};
use crate::telemetry::{decode_telemetry, encode_telemetry, TELEMETRY_SOURCE};
use dps_columnar::{StringDict, Table};
use dps_store::{Archive, StoreReader, StoreWriter};
use dps_telemetry::Snapshot;
use std::collections::{BTreeMap, BTreeSet};

/// Name of the single-file archive inside a `save_dir` directory.
pub const ARCHIVE_FILE: &str = "archive.dps";

/// The table column whose distinct values the archive tracks per source
/// (zone entries — the paper's unique-SLD statistic).
pub const UNIQUE_KEY_COLUMN: &str = "entry";

/// Per-source data-set statistics (paper Table 1).
#[derive(Debug, Clone, Default)]
pub struct SourceStats {
    /// First measured day, if any.
    pub first_day: Option<u32>,
    /// Last measured day.
    pub last_day: Option<u32>,
    /// Number of measured days.
    pub days: u32,
    /// Unique SLDs (zone entries) observed over the whole period. Ordered
    /// so persistence and reporting paths iterate deterministically.
    pub unique_slds: BTreeSet<u32>,
    /// Collected data points (resource records).
    pub data_points: u64,
    /// Stored (encoded) bytes.
    pub stored_bytes: u64,
    /// Raw (4 bytes/cell) bytes.
    pub raw_bytes: u64,
}

/// One stored day table: its encoded bytes and the true collected
/// data-point count (persisted exactly — never re-estimated on reload).
struct StoredTable {
    bytes: Vec<u8>,
    data_points: u64,
}

/// The measurement archive: one encoded table per (day, source), plus the
/// shared string dictionary and per-source statistics.
pub struct SnapshotStore {
    /// Shared dictionary for SLD strings.
    pub dict: StringDict,
    tables: BTreeMap<(u32, u8), StoredTable>,
    stats: Vec<SourceStats>,
    qualities: BTreeMap<(u32, u8), DayQuality>,
    telemetry: BTreeMap<u32, Snapshot>,
    analysis: BTreeMap<u32, Vec<u8>>,
}

impl SnapshotStore {
    /// An empty store.
    pub fn new() -> Self {
        Self {
            dict: StringDict::new(),
            tables: BTreeMap::new(),
            stats: vec![SourceStats::default(); SOURCES.len()],
            qualities: BTreeMap::new(),
            telemetry: BTreeMap::new(),
            analysis: BTreeMap::new(),
        }
    }

    /// Records a day's streaming-analysis checkpoint page (encoded table
    /// bytes, held opaquely — `dps-stream` owns the codec).
    pub fn add_analysis(&mut self, day: u32, bytes: Vec<u8>) {
        self.analysis.insert(day, bytes);
    }

    /// The streaming-analysis checkpoint bytes for `day`, if any.
    pub fn analysis(&self, day: u32) -> Option<&[u8]> {
        self.analysis.get(&day).map(Vec::as_slice)
    }

    /// Days carrying a streaming-analysis checkpoint, ascending.
    pub fn analysis_days(&self) -> Vec<u32> {
        self.analysis.keys().copied().collect()
    }

    /// Records a day's telemetry snapshot (replacing any existing one).
    pub fn add_telemetry(&mut self, day: u32, snapshot: Snapshot) {
        self.telemetry.insert(day, snapshot);
    }

    /// The telemetry snapshot for `day`, if the sweep stored one.
    pub fn telemetry(&self, day: u32) -> Option<&Snapshot> {
        self.telemetry.get(&day)
    }

    /// Every stored `(day, snapshot)` pair, ascending by day.
    pub fn all_telemetry(&self) -> impl Iterator<Item = (u32, &Snapshot)> {
        self.telemetry.iter().map(|(&d, s)| (d, s))
    }

    /// Every per-day snapshot merged into one (counters and histograms
    /// add; gauges keep the latest day's level).
    pub fn merged_telemetry(&self) -> Snapshot {
        let mut merged = Snapshot::default();
        for snapshot in self.telemetry.values() {
            merged.merge(snapshot);
        }
        merged
    }

    /// Records a day's quality record (replacing any existing one for the
    /// same `(day, source)`).
    pub fn add_quality(&mut self, quality: DayQuality) {
        self.qualities
            .insert((quality.day, quality.source.index() as u8), quality);
    }

    /// The quality record for `(day, source)`, if the sweep stored one.
    pub fn quality(&self, day: u32, source: Source) -> Option<&DayQuality> {
        self.qualities.get(&(day, source.index() as u8))
    }

    /// Quality records of one source, ascending by day.
    pub fn qualities(&self, source: Source) -> Vec<&DayQuality> {
        self.qualities
            .iter()
            .filter(|((_, s), _)| *s == source.index() as u8)
            .map(|(_, q)| q)
            .collect()
    }

    /// Every quality record, ascending by `(day, source)`.
    pub fn all_qualities(&self) -> impl Iterator<Item = &DayQuality> {
        self.qualities.values()
    }

    /// Adds a finished day table, updating statistics.
    pub fn add_table(&mut self, day: u32, source: Source, table: &Table, data_points: u64) {
        let bytes = table.to_bytes();
        let Some(st) = self.stats.get_mut(source.index()) else {
            return;
        };
        st.first_day = Some(st.first_day.map_or(day, |d| d.min(day)));
        st.last_day = Some(st.last_day.map_or(day, |d| d.max(day)));
        st.days += 1;
        st.data_points += data_points;
        st.stored_bytes += bytes.len() as u64;
        st.raw_bytes += table.raw_len() as u64;
        if let Some(col) = table.column_by_name(UNIQUE_KEY_COLUMN) {
            st.unique_slds.extend(col.iter().copied());
        }
        self.tables.insert(
            (day, source.index() as u8),
            StoredTable { bytes, data_points },
        );
    }

    /// Decodes the table for `(day, source)`. Undecodable stored bytes
    /// read as absent rather than aborting the process.
    pub fn table(&self, day: u32, source: Source) -> Option<Table> {
        self.tables
            .get(&(day, source.index() as u8))
            .and_then(|t| Table::from_bytes(&t.bytes).ok())
    }

    /// Days measured for a source, ascending.
    pub fn days(&self, source: Source) -> Vec<u32> {
        self.tables
            .keys()
            .filter(|(_, s)| *s == source.index() as u8)
            .map(|(d, _)| *d)
            .collect()
    }

    /// The encoded table blobs of one source, ascending by day (the
    /// parallel analysis engine decodes them on worker threads).
    pub fn encoded(&self, source: Source) -> Vec<(u32, &[u8])> {
        self.tables
            .iter()
            .filter(|((_, s), _)| *s == source.index() as u8)
            .map(|((d, _), t)| (*d, t.bytes.as_slice()))
            .collect()
    }

    /// Iterates (day, decoded table) for one source, ascending by day.
    pub fn scan(&self, source: Source) -> impl Iterator<Item = (u32, Table)> + '_ {
        self.tables
            .iter()
            .filter(move |((_, s), _)| *s == source.index() as u8)
            .map(|((d, _), t)| (*d, Table::from_bytes(&t.bytes).expect("valid")))
    }

    /// Raw encoded bytes of every stored table (for size accounting).
    pub fn total_stored_bytes(&self) -> u64 {
        self.tables.values().map(|t| t.bytes.len() as u64).sum()
    }

    /// Statistics for a source.
    pub fn stats(&self, source: Source) -> &SourceStats {
        // dps: allow(taint-panic, reason = "stats is built with one slot per SOURCES entry and source.index() is that source's position in SOURCES; no input reaches the index")
        &self.stats[source.index()]
    }

    /// The snapshot schema (fixed).
    pub fn schema(&self) -> dps_columnar::Schema {
        schema()
    }

    /// Persists the whole store as a `dps-store` single-file archive at
    /// `path`: CRC-checked pages, footer catalog with the exact per-table
    /// data-point counts, and the string dictionary.
    pub fn save_archive(&self, path: &std::path::Path) -> std::io::Result<()> {
        self.save_archive_with_shards(path, 1)
    }

    /// Like [`save_archive`](Self::save_archive) but sharded: a manifest
    /// plus `shards` shard files, each holding its row range of every
    /// page. `shards = 1` is exactly `save_archive` (single-file layout).
    pub fn save_archive_with_shards(
        &self,
        path: &std::path::Path,
        shards: u32,
    ) -> std::io::Result<()> {
        let mut writer = StoreWriter::create_store(path, shards, Some(UNIQUE_KEY_COLUMN))?;
        // Append in global (day, source) page order: a day's data tables
        // first, then its quality page under QUALITY_SOURCE, then its
        // telemetry page under TELEMETRY_SOURCE — the same order
        // `Study::run_archived` streams pages in, so both writers produce
        // byte-identical archives for identical content.
        let days: BTreeSet<u32> = self
            .tables
            .keys()
            .chain(self.qualities.keys())
            .map(|&(day, _)| day)
            .chain(self.telemetry.keys().copied())
            .collect();
        for day in days {
            for (&(_, source), stored) in self.tables.range((day, 0)..=(day, u8::MAX)) {
                let table = Table::from_bytes(&stored.bytes).map_err(std::io::Error::other)?;
                writer.append_table(day, source, &table, stored.data_points)?;
            }
            let day_qualities: Vec<DayQuality> = self
                .qualities
                .range((day, 0)..=(day, u8::MAX))
                .map(|(_, q)| *q)
                .collect();
            if !day_qualities.is_empty() {
                writer.append_table(day, QUALITY_SOURCE, &encode_qualities(&day_qualities), 0)?;
            }
            if let Some(snapshot) = self.telemetry.get(&day) {
                writer.append_table(day, TELEMETRY_SOURCE, &encode_telemetry(snapshot), 0)?;
            }
            if let Some(bytes) = self.analysis.get(&day) {
                let table = Table::from_bytes(bytes).map_err(std::io::Error::other)?;
                writer.append_table(day, ANALYSIS_SOURCE, &table, 0)?;
            }
        }
        writer.commit(&self.dict)
    }

    /// Materialises a full store from a `dps-store` archive, restoring the
    /// dictionary and the per-source statistics *exactly* as saved (the
    /// catalog carries true data-point counts; nothing is estimated).
    pub fn load_archive(path: &std::path::Path) -> std::io::Result<Self> {
        let reader = StoreReader::open_auto(path)?;
        Self::from_store(&reader)
    }

    /// Materialises a full store from an open [`Archive`] handle.
    pub fn from_archive(archive: &Archive) -> std::io::Result<Self> {
        Self::from_pages(archive.dict(), archive.catalog(), |d, s| {
            archive.table(d, s)
        })
    }

    /// Materialises a full store from an open [`StoreReader`] — either the
    /// single-file or the manifest + shard-files layout (shard sub-pages
    /// are reassembled into logical tables transparently).
    pub fn from_store(reader: &StoreReader) -> std::io::Result<Self> {
        Self::from_pages(reader.dict(), reader.catalog(), |d, s| reader.table(d, s))
    }

    fn from_pages(
        dict: &StringDict,
        catalog: &dps_store::Catalog,
        get: impl Fn(u32, u8) -> std::io::Result<Option<std::sync::Arc<Table>>>,
    ) -> std::io::Result<Self> {
        let mut store = Self {
            dict: dict.clone(),
            tables: BTreeMap::new(),
            stats: vec![SourceStats::default(); SOURCES.len()],
            qualities: BTreeMap::new(),
            telemetry: BTreeMap::new(),
            analysis: BTreeMap::new(),
        };
        for (&(day, source), meta) in &catalog.pages {
            let table = get(day, source)?.ok_or_else(|| {
                std::io::Error::other("catalog lists a page the archive cannot produce")
            })?;
            if source == ANALYSIS_SOURCE {
                store.analysis.insert(day, table.to_bytes());
                continue;
            }
            if source == TELEMETRY_SOURCE {
                let snapshot = decode_telemetry(&table).ok_or_else(|| {
                    std::io::Error::other("archive holds an undecodable telemetry page")
                })?;
                store.add_telemetry(day, snapshot);
                continue;
            }
            if source == QUALITY_SOURCE {
                let qualities = decode_qualities(&table).ok_or_else(|| {
                    std::io::Error::other("archive holds an undecodable quality page")
                })?;
                for q in qualities {
                    store.add_quality(q);
                }
                continue;
            }
            if Source::from_index(u32::from(source)).is_none() {
                return Err(std::io::Error::other("archive has an unknown source id"));
            }
            if table.schema().names() != schema().names() {
                return Err(std::io::Error::other(
                    "archive schema does not match this build; re-run the study",
                ));
            }
            store.tables.insert(
                (day, source),
                StoredTable {
                    bytes: table.to_bytes(),
                    data_points: meta.data_points,
                },
            );
        }
        for (i, st) in catalog.stats().into_iter().enumerate().take(SOURCES.len()) {
            store.stats[i] = SourceStats {
                first_day: st.first_day,
                last_day: st.last_day,
                days: st.days,
                unique_slds: st.unique_keys.into_iter().collect(),
                data_points: st.data_points,
                stored_bytes: st.stored_bytes,
                raw_bytes: st.raw_bytes,
            };
        }
        Ok(store)
    }

    /// Compatibility shim: persists into `dir` as a single
    /// [`ARCHIVE_FILE`] (the loose one-file-per-table layout this method
    /// used to write is deprecated and no longer produced).
    pub fn save_dir(&self, dir: &std::path::Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        self.save_archive(&dir.join(ARCHIVE_FILE))
    }

    /// Compatibility shim: loads a directory written by
    /// [`save_dir`](Self::save_dir). Prefers the single-file archive;
    /// falls back to the deprecated loose-file layout (whose data-point
    /// counts were never stored and are estimated as `non-failed rows × 5`).
    pub fn load_dir(dir: &std::path::Path) -> std::io::Result<Self> {
        let archive = dir.join(ARCHIVE_FILE);
        if archive.exists() {
            return Self::load_archive(&archive);
        }
        Self::load_legacy_dir(dir)
    }

    /// The deprecated loose-file reader (`index.tsv` + `.dpc` files).
    fn load_legacy_dir(dir: &std::path::Path) -> std::io::Result<Self> {
        let dict_bytes = std::fs::read(dir.join("dict.bin"))?;
        let dict = StringDict::from_bytes(&dict_bytes)
            .ok_or_else(|| std::io::Error::other("corrupt dictionary"))?;
        let index = std::fs::read_to_string(dir.join("index.tsv"))?;
        let mut store = Self {
            dict,
            tables: BTreeMap::new(),
            stats: vec![SourceStats::default(); SOURCES.len()],
            qualities: BTreeMap::new(),
            telemetry: BTreeMap::new(),
            analysis: BTreeMap::new(),
        };
        for line in index.lines() {
            let mut parts = line.split('\t');
            let (Some(day), Some(source), Some(name)) = (parts.next(), parts.next(), parts.next())
            else {
                return Err(std::io::Error::other("corrupt index"));
            };
            let day: u32 = day.parse().map_err(std::io::Error::other)?;
            let source: u8 = source.parse().map_err(std::io::Error::other)?;
            let source = Source::from_index(u32::from(source))
                .ok_or_else(|| std::io::Error::other("bad source"))?;
            let bytes = std::fs::read(dir.join(name))?;
            let table = Table::from_bytes(&bytes).map_err(std::io::Error::other)?;
            if table.schema().names() != schema().names() {
                return Err(std::io::Error::other(
                    "archive schema does not match this build; re-run the study",
                ));
            }
            // The legacy layout never stored data-point counts; estimate.
            let dps = table
                .column_by_name("failed")
                .map(|c| c.iter().filter(|&&f| f == 0).count() as u64 * 5)
                .unwrap_or(0);
            store.add_table(day, source, &table, dps);
        }
        Ok(store)
    }
}

impl Default for SnapshotStore {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dps_columnar::TableBuilder;

    fn table_with_rows(day: u32, n: u32) -> Table {
        let mut b = TableBuilder::new(schema());
        for i in 0..n {
            let mut row = [0u32; 18];
            row[0] = day;
            row[1] = Source::Com.index() as u32;
            row[2] = i * 2;
            b.push_row(&row);
        }
        b.finish()
    }

    #[test]
    fn stats_accumulate_across_days() {
        let mut store = SnapshotStore::new();
        store.add_table(0, Source::Com, &table_with_rows(0, 100), 400);
        store.add_table(1, Source::Com, &table_with_rows(1, 120), 480);
        let st = store.stats(Source::Com);
        assert_eq!(st.days, 2);
        assert_eq!(st.first_day, Some(0));
        assert_eq!(st.last_day, Some(1));
        assert_eq!(st.data_points, 880);
        assert_eq!(st.unique_slds.len(), 120);
        assert!(st.stored_bytes > 0);
        assert!(st.stored_bytes < st.raw_bytes);
    }

    #[test]
    fn save_load_roundtrip() {
        let mut store = SnapshotStore::new();
        store.dict.intern("cloudflare.com");
        store.add_table(0, Source::Com, &table_with_rows(0, 50), 250);
        store.add_table(1, Source::Com, &table_with_rows(1, 60), 300);
        store.add_table(0, Source::Org, &table_with_rows(0, 10), 50);
        let dir = std::env::temp_dir().join(format!("dps-store-test-{}", std::process::id()));
        store.save_dir(&dir).unwrap();
        let back = SnapshotStore::load_dir(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(
            back.dict.get("cloudflare.com"),
            store.dict.get("cloudflare.com")
        );
        assert_eq!(back.days(Source::Com), vec![0, 1]);
        let t = back.table(1, Source::Com).unwrap();
        assert_eq!(t.rows(), 60);
        assert_eq!(back.stats(Source::Com).days, 2);
        assert_eq!(back.stats(Source::Org).unique_slds.len(), 10);
    }

    /// Regression: `data_points` used to be reconstructed on reload as
    /// `non-failed rows × 5`, silently replacing the true collected count.
    /// The archive catalog persists the exact value, so a save→load
    /// roundtrip must preserve every `SourceStats` field bit-for-bit.
    #[test]
    fn save_load_roundtrips_stats_exactly() {
        let mut store = SnapshotStore::new();
        store.dict.intern("incapdns.net");
        // 400 and 301 are deliberately NOT multiples of rows×5, so the old
        // estimate could never reproduce them.
        store.add_table(0, Source::Com, &table_with_rows(0, 100), 400);
        store.add_table(2, Source::Com, &table_with_rows(2, 80), 301);
        store.add_table(1, Source::Nl, &table_with_rows(1, 30), 77);
        let path =
            std::env::temp_dir().join(format!("dps-snapshot-exact-{}.dps", std::process::id()));
        store.save_archive(&path).unwrap();
        let back = SnapshotStore::load_archive(&path).unwrap();
        std::fs::remove_file(&path).ok();
        for source in SOURCES {
            let (a, b) = (store.stats(source), back.stats(source));
            assert_eq!(a.first_day, b.first_day, "{source:?} first_day");
            assert_eq!(a.last_day, b.last_day, "{source:?} last_day");
            assert_eq!(a.days, b.days, "{source:?} days");
            assert_eq!(a.data_points, b.data_points, "{source:?} data_points");
            assert_eq!(a.stored_bytes, b.stored_bytes, "{source:?} stored_bytes");
            assert_eq!(a.raw_bytes, b.raw_bytes, "{source:?} raw_bytes");
            assert_eq!(a.unique_slds, b.unique_slds, "{source:?} unique_slds");
        }
        assert_eq!(back.stats(Source::Com).data_points, 701);
        assert_eq!(back.stats(Source::Nl).data_points, 77);
    }

    #[test]
    fn quality_records_roundtrip_through_the_archive() {
        use crate::quality::CauseCounts;
        let mut store = SnapshotStore::new();
        store.add_table(0, Source::Com, &table_with_rows(0, 10), 50);
        store.add_table(1, Source::Com, &table_with_rows(1, 10), 50);
        let q0 = DayQuality {
            day: 0,
            source: Source::Com,
            attempted: 10,
            failed: 2,
            retried: 3,
            recovered: 1,
            causes: CauseCounts {
                timeouts: 4,
                unreachable: 1,
                corrupt: 0,
                servfail: 2,
                other: 0,
            },
            retry_passes: 2,
            breaker_trips: 1,
            hedges: 6,
        };
        store.add_quality(q0);
        store.add_quality(DayQuality::perfect(1, Source::Com, 10, 0));
        let path =
            std::env::temp_dir().join(format!("dps-snapshot-quality-{}.dps", std::process::id()));
        store.save_archive(&path).unwrap();
        let back = SnapshotStore::load_archive(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.quality(0, Source::Com), Some(&q0));
        assert_eq!(back.qualities(Source::Com).len(), 2);
        assert!((back.quality(0, Source::Com).unwrap().coverage() - 0.8).abs() < 1e-12);
        // Quality pages never leak into data-table accessors or stats.
        assert_eq!(back.days(Source::Com), vec![0, 1]);
        assert_eq!(back.stats(Source::Com).days, 2);
    }

    #[test]
    fn telemetry_snapshots_roundtrip_through_the_archive() {
        let registry = dps_telemetry::Registry::new();
        registry.counter("sweep.attempted").add(42);
        registry.histogram("sweep.day.us").observe(1_000_000);
        let mut store = SnapshotStore::new();
        store.add_table(0, Source::Com, &table_with_rows(0, 10), 50);
        store.add_telemetry(0, registry.snapshot());
        let path =
            std::env::temp_dir().join(format!("dps-snapshot-telemetry-{}.dps", std::process::id()));
        store.save_archive(&path).unwrap();
        let back = SnapshotStore::load_archive(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let day0 = back.telemetry(0).expect("telemetry page restored");
        assert_eq!(day0.counters.get("sweep.attempted"), Some(&42));
        assert_eq!(
            day0.histograms.get("sweep.day.us").map(|h| h.sum),
            Some(1_000_000)
        );
        assert_eq!(back.merged_telemetry().counters["sweep.attempted"], 42);
        // Telemetry pages never leak into data-table accessors or stats.
        assert_eq!(back.days(Source::Com), vec![0]);
        assert_eq!(back.stats(Source::Com).days, 1);
    }

    #[test]
    fn load_missing_dir_errors() {
        assert!(SnapshotStore::load_dir(std::path::Path::new("/nonexistent-dps")).is_err());
    }

    #[test]
    fn scan_returns_days_in_order() {
        let mut store = SnapshotStore::new();
        for day in [3u32, 1, 2] {
            store.add_table(day, Source::Net, &table_with_rows(day, 10), 0);
        }
        let days: Vec<u32> = store.scan(Source::Net).map(|(d, _)| d).collect();
        assert_eq!(days, vec![1, 2, 3]);
        assert!(store.table(2, Source::Net).is_some());
        assert!(store.table(2, Source::Org).is_none());
    }
}
