//! Stage II: the snapshot store — daily per-source columnar tables.

use crate::observation::{schema, Source, SOURCES};
use dps_columnar::{StringDict, Table};
use std::collections::{BTreeMap, HashSet};

/// Per-source data-set statistics (paper Table 1).
#[derive(Debug, Clone, Default)]
pub struct SourceStats {
    /// First measured day, if any.
    pub first_day: Option<u32>,
    /// Last measured day.
    pub last_day: Option<u32>,
    /// Number of measured days.
    pub days: u32,
    /// Unique SLDs (zone entries) observed over the whole period.
    pub unique_slds: HashSet<u32>,
    /// Collected data points (resource records).
    pub data_points: u64,
    /// Stored (encoded) bytes.
    pub stored_bytes: u64,
    /// Raw (4 bytes/cell) bytes.
    pub raw_bytes: u64,
}

/// The measurement archive: one encoded table per (day, source), plus the
/// shared string dictionary and per-source statistics.
pub struct SnapshotStore {
    /// Shared dictionary for SLD strings.
    pub dict: StringDict,
    tables: BTreeMap<(u32, u8), Vec<u8>>,
    stats: Vec<SourceStats>,
}

impl SnapshotStore {
    /// An empty store.
    pub fn new() -> Self {
        Self {
            dict: StringDict::new(),
            tables: BTreeMap::new(),
            stats: vec![SourceStats::default(); SOURCES.len()],
        }
    }

    /// Adds a finished day table, updating statistics.
    pub fn add_table(&mut self, day: u32, source: Source, table: &Table, data_points: u64) {
        let bytes = table.to_bytes();
        let st = &mut self.stats[source.index()];
        st.first_day = Some(st.first_day.map_or(day, |d| d.min(day)));
        st.last_day = Some(st.last_day.map_or(day, |d| d.max(day)));
        st.days += 1;
        st.data_points += data_points;
        st.stored_bytes += bytes.len() as u64;
        st.raw_bytes += table.raw_len() as u64;
        if let Some(col) = table.column_by_name("entry") {
            st.unique_slds.extend(col.iter().copied());
        }
        self.tables.insert((day, source.index() as u8), bytes);
    }

    /// Decodes the table for `(day, source)`.
    pub fn table(&self, day: u32, source: Source) -> Option<Table> {
        self.tables
            .get(&(day, source.index() as u8))
            .map(|b| Table::from_bytes(b).expect("store holds valid tables"))
    }

    /// Days measured for a source, ascending.
    pub fn days(&self, source: Source) -> Vec<u32> {
        self.tables
            .keys()
            .filter(|(_, s)| *s == source.index() as u8)
            .map(|(d, _)| *d)
            .collect()
    }

    /// The encoded table blobs of one source, ascending by day (the
    /// parallel analysis engine decodes them on worker threads).
    pub fn encoded(&self, source: Source) -> Vec<(u32, &[u8])> {
        self.tables
            .iter()
            .filter(|((_, s), _)| *s == source.index() as u8)
            .map(|((d, _), b)| (*d, b.as_slice()))
            .collect()
    }

    /// Iterates (day, decoded table) for one source, ascending by day.
    pub fn scan(&self, source: Source) -> impl Iterator<Item = (u32, Table)> + '_ {
        self.tables
            .iter()
            .filter(move |((_, s), _)| *s == source.index() as u8)
            .map(|((d, _), b)| (*d, Table::from_bytes(b).expect("valid")))
    }

    /// Raw encoded bytes of every stored table (for size accounting).
    pub fn total_stored_bytes(&self) -> u64 {
        self.tables.values().map(|b| b.len() as u64).sum()
    }

    /// Statistics for a source.
    pub fn stats(&self, source: Source) -> &SourceStats {
        &self.stats[source.index()]
    }

    /// The snapshot schema (fixed).
    pub fn schema(&self) -> dps_columnar::Schema {
        schema()
    }

    /// Persists the whole archive into a directory: one file per
    /// `(day, source)` table, plus the dictionary and statistics, so a
    /// multi-minute sweep can be analysed repeatedly without re-running.
    pub fn save_dir(&self, dir: &std::path::Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join("dict.bin"), self.dict.to_bytes())?;
        let mut index = String::new();
        for ((day, source), bytes) in &self.tables {
            let name = format!("day{day:05}_src{source}.dpc");
            std::fs::write(dir.join(&name), bytes)?;
            use std::fmt::Write as _;
            let _ = writeln!(index, "{day}\t{source}\t{name}");
        }
        std::fs::write(dir.join("index.tsv"), index)?;
        Ok(())
    }

    /// Loads an archive produced by [`save_dir`](Self::save_dir),
    /// recomputing the per-source statistics.
    pub fn load_dir(dir: &std::path::Path) -> std::io::Result<Self> {
        let dict_bytes = std::fs::read(dir.join("dict.bin"))?;
        let dict = StringDict::from_bytes(&dict_bytes)
            .ok_or_else(|| std::io::Error::other("corrupt dictionary"))?;
        let index = std::fs::read_to_string(dir.join("index.tsv"))?;
        let mut store = Self {
            dict,
            tables: BTreeMap::new(),
            stats: vec![SourceStats::default(); SOURCES.len()],
        };
        for line in index.lines() {
            let mut parts = line.split('\t');
            let (Some(day), Some(source), Some(name)) = (parts.next(), parts.next(), parts.next())
            else {
                return Err(std::io::Error::other("corrupt index"));
            };
            let day: u32 = day.parse().map_err(std::io::Error::other)?;
            let source: u8 = source.parse().map_err(std::io::Error::other)?;
            let source = Source::from_index(u32::from(source))
                .ok_or_else(|| std::io::Error::other("bad source"))?;
            let bytes = std::fs::read(dir.join(name))?;
            let table = Table::from_bytes(&bytes).map_err(std::io::Error::other)?;
            if table.schema().names() != schema().names() {
                return Err(std::io::Error::other(
                    "archive schema does not match this build; re-run the study",
                ));
            }
            // Data-point counts are not stored per table; reconstruct the
            // structural stats and leave data_points at the row estimate.
            let dps = table
                .column_by_name("failed")
                .map(|c| c.iter().filter(|&&f| f == 0).count() as u64 * 5)
                .unwrap_or(0);
            store.add_table(day, source, &table, dps);
        }
        Ok(store)
    }
}

impl Default for SnapshotStore {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dps_columnar::TableBuilder;

    fn table_with_rows(day: u32, n: u32) -> Table {
        let mut b = TableBuilder::new(schema());
        for i in 0..n {
            let mut row = [0u32; 18];
            row[0] = day;
            row[1] = Source::Com.index() as u32;
            row[2] = i * 2;
            b.push_row(&row);
        }
        b.finish()
    }

    #[test]
    fn stats_accumulate_across_days() {
        let mut store = SnapshotStore::new();
        store.add_table(0, Source::Com, &table_with_rows(0, 100), 400);
        store.add_table(1, Source::Com, &table_with_rows(1, 120), 480);
        let st = store.stats(Source::Com);
        assert_eq!(st.days, 2);
        assert_eq!(st.first_day, Some(0));
        assert_eq!(st.last_day, Some(1));
        assert_eq!(st.data_points, 880);
        assert_eq!(st.unique_slds.len(), 120);
        assert!(st.stored_bytes > 0);
        assert!(st.stored_bytes < st.raw_bytes);
    }

    #[test]
    fn save_load_roundtrip() {
        let mut store = SnapshotStore::new();
        store.dict.intern("cloudflare.com");
        store.add_table(0, Source::Com, &table_with_rows(0, 50), 250);
        store.add_table(1, Source::Com, &table_with_rows(1, 60), 300);
        store.add_table(0, Source::Org, &table_with_rows(0, 10), 50);
        let dir = std::env::temp_dir().join(format!("dps-store-test-{}", std::process::id()));
        store.save_dir(&dir).unwrap();
        let back = SnapshotStore::load_dir(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(
            back.dict.get("cloudflare.com"),
            store.dict.get("cloudflare.com")
        );
        assert_eq!(back.days(Source::Com), vec![0, 1]);
        let t = back.table(1, Source::Com).unwrap();
        assert_eq!(t.rows(), 60);
        assert_eq!(back.stats(Source::Com).days, 2);
        assert_eq!(back.stats(Source::Org).unique_slds.len(), 10);
    }

    #[test]
    fn load_missing_dir_errors() {
        assert!(SnapshotStore::load_dir(std::path::Path::new("/nonexistent-dps")).is_err());
    }

    #[test]
    fn scan_returns_days_in_order() {
        let mut store = SnapshotStore::new();
        for day in [3u32, 1, 2] {
            store.add_table(day, Source::Net, &table_with_rows(day, 10), 0);
        }
        let days: Vec<u32> = store.scan(Source::Net).map(|(d, _)| d).collect();
        assert_eq!(days, vec![1, 2, 3]);
        assert!(store.table(2, Source::Net).is_some());
        assert!(store.table(2, Source::Org).is_none());
    }
}
