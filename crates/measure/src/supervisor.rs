//! The sweep supervisor: first-pass collection, a dead-letter queue of
//! transiently failed names, bounded end-of-day retry passes, and the
//! day's [`DayQuality`] record.
//!
//! The paper's platform re-ran failed queries at the end of each daily
//! sweep and the authors then *manually* dropped days whose coverage was
//! still bad (§4.2). The supervisor automates both halves: names whose
//! collection hit a transient fault (timeout, unreachable, corrupt reply,
//! SERVFAIL) land in a dead-letter queue and are re-collected after a
//! virtual-time pause — long enough for blackout windows to pass and open
//! circuit breakers to half-open — and whatever remains failed is recorded
//! in the day's quality row so the analysis layer can gate on coverage.
//!
//! Determinism: jobs are collected in input order, retries in queue order,
//! and rows are returned in input order regardless of retry outcomes, so a
//! supervised sweep that fully recovers is byte-identical (post interning)
//! to a sweep on a healthy network.

use crate::collector::{collect_raw, QueryPath, RawRow};
use crate::observation::Source;
use crate::quality::{CauseCounts, DayQuality};
use dps_dns::Name;
use dps_netsim::Pfx2As;
use dps_telemetry::{Counter, Histogram, Registry};

/// Telemetry handles for supervised sweeps. Default handles are detached
/// (no registry), so existing call sites record into thin air at the cost
/// of an uncontended atomic per event.
#[derive(Clone, Default)]
pub struct SweepMetrics {
    /// `sweep.attempted` — names the first pass attempted.
    pub attempted: Counter,
    /// `sweep.retries` — names that entered the dead-letter queue.
    pub retries: Counter,
    /// `sweep.recovered` — dead-letter names whose retry completed.
    pub recovered: Counter,
    /// `sweep.failed` — names still failed after every pass.
    pub failed: Counter,
    /// `sweep.deadletter.passes` — end-of-day retry passes run.
    pub deadletter_passes: Counter,
    /// `sweep.failures.timeout` — timeout tallies across all attempts.
    pub failures_timeout: Counter,
    /// `sweep.failures.unreachable`.
    pub failures_unreachable: Counter,
    /// `sweep.failures.corrupt`.
    pub failures_corrupt: Counter,
    /// `sweep.failures.servfail`.
    pub failures_servfail: Counter,
    /// `sweep.failures.other`.
    pub failures_other: Counter,
    /// `sweep.day.us` — virtual time one supervised sweep took.
    pub day_us: Histogram,
}

impl SweepMetrics {
    /// Handles registered under the `sweep.*` names in `registry`.
    pub fn new(registry: &Registry) -> Self {
        Self {
            attempted: registry.counter("sweep.attempted"),
            retries: registry.counter("sweep.retries"),
            recovered: registry.counter("sweep.recovered"),
            failed: registry.counter("sweep.failed"),
            deadletter_passes: registry.counter("sweep.deadletter.passes"),
            failures_timeout: registry.counter("sweep.failures.timeout"),
            failures_unreachable: registry.counter("sweep.failures.unreachable"),
            failures_corrupt: registry.counter("sweep.failures.corrupt"),
            failures_servfail: registry.counter("sweep.failures.servfail"),
            failures_other: registry.counter("sweep.failures.other"),
            day_us: registry.histogram("sweep.day.us"),
        }
    }

    fn record(&self, quality: &DayQuality, elapsed_us: u64) {
        self.attempted.add(u64::from(quality.attempted));
        self.retries.add(u64::from(quality.retried));
        self.recovered.add(u64::from(quality.recovered));
        self.failed.add(u64::from(quality.failed));
        self.deadletter_passes.add(u64::from(quality.retry_passes));
        self.failures_timeout
            .add(u64::from(quality.causes.timeouts));
        self.failures_unreachable
            .add(u64::from(quality.causes.unreachable));
        self.failures_corrupt.add(u64::from(quality.causes.corrupt));
        self.failures_servfail
            .add(u64::from(quality.causes.servfail));
        self.failures_other.add(u64::from(quality.causes.other));
        self.day_us.observe(elapsed_us);
    }
}

/// Tunables for [`sweep_supervised`].
#[derive(Debug, Clone, Copy)]
pub struct SupervisorConfig {
    /// Maximum end-of-day retry passes over the dead-letter queue.
    pub retry_passes: u32,
    /// Virtual-time pause before each retry pass (lets blackout windows
    /// end and breaker cool-downs elapse).
    pub retry_pause_us: u64,
}

impl Default for SupervisorConfig {
    /// Two retry passes, 30 virtual seconds apart (matches the default
    /// breaker cool-down in [`dps_authdns::HealthConfig`]).
    fn default() -> Self {
        Self {
            retry_passes: 2,
            retry_pause_us: 30_000_000,
        }
    }
}

/// What a supervised sweep produced.
#[derive(Debug)]
pub struct SupervisedSweep {
    /// One row per job, in job order.
    pub rows: Vec<RawRow>,
    /// The day's quality record for this source.
    pub quality: DayQuality,
}

/// Collects every `(apex, entry_code)` job through `path`, retrying
/// transient failures from a dead-letter queue, and reports quality.
pub fn sweep_supervised(
    path: &mut impl QueryPath,
    jobs: &[(Name, u32)],
    pfx2as: &Pfx2As,
    day: u32,
    source: Source,
    config: &SupervisorConfig,
) -> SupervisedSweep {
    sweep_supervised_metered(
        path,
        jobs,
        pfx2as,
        day,
        source,
        config,
        &SweepMetrics::default(),
    )
}

/// [`sweep_supervised`] with telemetry: the sweep's quality tallies and
/// virtual-time span land in `metrics` as well as in the returned record.
pub fn sweep_supervised_metered(
    path: &mut impl QueryPath,
    jobs: &[(Name, u32)],
    pfx2as: &Pfx2As,
    day: u32,
    source: Source,
    config: &SupervisorConfig,
    metrics: &SweepMetrics,
) -> SupervisedSweep {
    let start_us = path.now_us();
    let before = path.telemetry();
    let mut causes = CauseCounts::default();
    let mut rows = Vec::with_capacity(jobs.len());
    let mut dlq: Vec<usize> = Vec::new();

    for (i, (apex, entry)) in jobs.iter().enumerate() {
        let row = collect_raw(path, apex, *entry, pfx2as);
        causes.merge(&row.causes);
        if row.retryable {
            dlq.push(i);
        }
        rows.push(row);
    }

    let retried = dlq.len() as u32;
    let mut recovered = 0u32;
    let mut passes_run = 0u32;
    for _ in 0..config.retry_passes {
        if dlq.is_empty() {
            break;
        }
        passes_run += 1;
        path.pause_us(config.retry_pause_us);
        let mut still_failing = Vec::new();
        for &i in &dlq {
            let (apex, entry) = &jobs[i];
            let retry = collect_raw(path, apex, *entry, pfx2as);
            causes.merge(&retry.causes);
            if retry.retryable {
                // Keep the original row (it may hold partial data the
                // retry also failed to better) and queue another pass.
                still_failing.push(i);
            } else {
                if !retry.failed {
                    recovered += 1;
                }
                rows[i] = retry;
            }
        }
        dlq = still_failing;
    }

    let telemetry = path.telemetry().since(&before);
    // Unknown-state rows: whatever the dead-letter queue could not clear.
    // Definitive observations (including NXDOMAIN) are usable coverage.
    let failed = dlq.len() as u32;
    let quality = DayQuality {
        day,
        source,
        attempted: jobs.len() as u32,
        failed,
        retried,
        recovered,
        causes,
        retry_passes: passes_run,
        breaker_trips: telemetry.breaker_trips.min(u64::from(u32::MAX)) as u32,
        hedges: telemetry.hedges.min(u64::from(u32::MAX)) as u32,
    };
    metrics.record(&quality, path.now_us().saturating_sub(start_us));
    SupervisedSweep { quality, rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::PathTelemetry;
    use dps_authdns::resolver::{Resolution, ResolveError};
    use dps_dns::{Rcode, RrType};
    use std::collections::HashMap;

    /// A scripted path: per-name queues of outcomes, shared across qtypes.
    struct ScriptedPath {
        script: HashMap<String, Vec<Result<Rcode, ResolveError>>>,
        clock_us: u64,
    }

    impl ScriptedPath {
        fn new() -> Self {
            Self {
                script: HashMap::new(),
                clock_us: 0,
            }
        }

        fn on(&mut self, name: &str, outcomes: Vec<Result<Rcode, ResolveError>>) {
            self.script.insert(name.to_string(), outcomes);
        }
    }

    impl QueryPath for ScriptedPath {
        fn query(&mut self, qname: &Name, _qtype: RrType) -> Result<Resolution, ResolveError> {
            let key = qname.to_string();
            let outcome = self
                .script
                .get_mut(&key)
                .and_then(|q| {
                    if q.is_empty() {
                        None
                    } else {
                        Some(q.remove(0))
                    }
                })
                .unwrap_or(Ok(Rcode::NoError));
            outcome.map(|rcode| Resolution {
                rcode,
                answers: vec![],
                elapsed_us: 0,
            })
        }

        fn pause_us(&mut self, dt_us: u64) {
            self.clock_us += dt_us;
        }

        fn now_us(&self) -> u64 {
            self.clock_us
        }
    }

    fn jobs(names: &[&str]) -> Vec<(Name, u32)> {
        names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.parse().unwrap(), i as u32 * 2))
            .collect()
    }

    #[test]
    fn transient_failures_are_retried_and_recovered() {
        let mut path = ScriptedPath::new();
        // First apex query times out; the retry pass succeeds.
        path.on(
            "flaky.com.",
            vec![Err(ResolveError::Timeout), Ok(Rcode::NoError)],
        );
        let pfx2as = dps_netsim::Rib::new().snapshot();
        let sweep = sweep_supervised(
            &mut path,
            &jobs(&["flaky.com", "ok.com"]),
            &pfx2as,
            3,
            Source::Com,
            &SupervisorConfig::default(),
        );
        assert_eq!(sweep.rows.len(), 2);
        assert!(!sweep.rows[0].failed, "retry recovered the row");
        let q = sweep.quality;
        assert_eq!(
            (q.attempted, q.failed, q.retried, q.recovered),
            (2, 0, 1, 1)
        );
        assert_eq!(q.retry_passes, 1);
        assert_eq!(q.causes.timeouts, 1);
        assert!((q.coverage() - 1.0).abs() < 1e-12);
        assert_eq!(path.clock_us, SupervisorConfig::default().retry_pause_us);
    }

    #[test]
    fn permanent_failures_exhaust_passes_and_lower_coverage() {
        let mut path = ScriptedPath::new();
        path.on(
            "dead.com.",
            vec![
                Err(ResolveError::Timeout),
                Err(ResolveError::Timeout),
                Err(ResolveError::Timeout),
            ],
        );
        let pfx2as = dps_netsim::Rib::new().snapshot();
        let sweep = sweep_supervised(
            &mut path,
            &jobs(&["dead.com", "a.com", "b.com", "c.com"]),
            &pfx2as,
            0,
            Source::Com,
            &SupervisorConfig {
                retry_passes: 2,
                retry_pause_us: 1_000,
            },
        );
        assert!(sweep.rows[0].failed);
        let q = sweep.quality;
        assert_eq!((q.failed, q.retried, q.recovered), (1, 1, 0));
        assert_eq!(q.retry_passes, 2);
        assert_eq!(q.causes.timeouts, 3, "every attempt tallied");
        assert!((q.coverage() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn nxdomain_is_definitive_and_never_queued() {
        let mut path = ScriptedPath::new();
        path.on("gone.com.", vec![Ok(Rcode::NxDomain)]);
        let pfx2as = dps_netsim::Rib::new().snapshot();
        let sweep = sweep_supervised(
            &mut path,
            &jobs(&["gone.com"]),
            &pfx2as,
            0,
            Source::Com,
            &SupervisorConfig::default(),
        );
        let q = sweep.quality;
        assert!(sweep.rows[0].failed, "the data row records the NXDOMAIN");
        assert_eq!((q.retried, q.retry_passes), (0, 0));
        assert_eq!(q.failed, 0, "a definitive NXDOMAIN is usable coverage");
        assert!((q.coverage() - 1.0).abs() < 1e-12);
        assert_eq!(path.clock_us, 0, "no retry pause for definitive answers");
    }

    #[test]
    fn telemetry_defaults_to_zero_for_plain_paths() {
        let path = ScriptedPath::new();
        assert_eq!(path.telemetry(), PathTelemetry::default());
    }

    #[test]
    fn metered_sweep_publishes_quality_into_the_registry() {
        let registry = dps_telemetry::Registry::new();
        let metrics = SweepMetrics::new(&registry);
        let mut path = ScriptedPath::new();
        path.on(
            "flaky.com.",
            vec![Err(ResolveError::Timeout), Ok(Rcode::NoError)],
        );
        let pfx2as = dps_netsim::Rib::new().snapshot();
        sweep_supervised_metered(
            &mut path,
            &jobs(&["flaky.com", "ok.com"]),
            &pfx2as,
            3,
            Source::Com,
            &SupervisorConfig::default(),
            &metrics,
        );
        let snap = registry.snapshot();
        assert_eq!(snap.counters["sweep.attempted"], 2);
        assert_eq!(snap.counters["sweep.retries"], 1);
        assert_eq!(snap.counters["sweep.recovered"], 1);
        assert_eq!(snap.counters["sweep.failed"], 0);
        assert_eq!(snap.counters["sweep.deadletter.passes"], 1);
        assert_eq!(snap.counters["sweep.failures.timeout"], 1);
        let span = &snap.histograms["sweep.day.us"];
        assert_eq!(span.count, 1);
        assert_eq!(
            span.sum,
            SupervisorConfig::default().retry_pause_us,
            "the span covers the retry pause on the path's virtual clock"
        );
    }
}
