//! # dps-measure — the active DNS measurement pipeline
//!
//! An OpenINTEL-style measurement system (paper Fig. 1) over the simulated
//! Internet:
//!
//! * **Stage I — collection** ([`collector`]): for every name on the input
//!   lists (full TLD zone files + the Alexa-style list), query `A`/`AAAA`
//!   for the apex and the `www` label plus the apex `NS` set, capturing
//!   full CNAME expansions. Two interchangeable query paths exist: the
//!   wire path (iterative resolution over the lossy simulated network) and
//!   the bulk path (direct world evaluation) — tests pin their equivalence.
//! * **Stage II — storage** ([`snapshot`]): daily per-source columnar
//!   tables (the Parquet stand-in), dictionary-encoded and compressed.
//! * **Stage III — supplementing** ([`observation`]): every address is
//!   annotated with the origin AS of its most-specific covering prefix
//!   from the day's `pfx2as` snapshot (multi-origin sets preserved).
//! * **Supervision** ([`supervisor`], [`quality`]): sweeps run under a
//!   fault-tolerant supervisor — transiently failed names land in a
//!   dead-letter queue and are retried at end of day, and every (day,
//!   source) gets a persisted [`quality::DayQuality`] record (coverage,
//!   per-cause failure census, retry/hedge/breaker statistics) that the
//!   analysis layer uses to gate bad days (the paper's §4.2 cleaning,
//!   automated).
//!
//! [`pipeline::Study`] drives all three stages across the measurement
//! calendar and produces the [`snapshot::SnapshotStore`] the analysis
//! crate consumes, along with the Table 1 data-set statistics.

pub mod collector;
pub mod observation;
pub mod pipeline;
pub mod quality;
pub mod snapshot;
pub mod supervisor;
pub mod telemetry;

pub use collector::{BulkPath, PathTelemetry, QueryPath, RecursorPath, WirePath};
pub use observation::{Source, SOURCES};
pub use pipeline::{
    append_day, append_day_observed, day_committed, due_sources_for, resume_store,
    resume_store_observed, DayObserver, SourcePage, Study, StudyConfig, ANALYSIS_SOURCE,
    STREAM_BLOCK_ENTRIES,
};
pub use quality::{decode_qualities, encode_qualities, CauseCounts, DayQuality, QUALITY_SOURCE};
pub use snapshot::{SnapshotStore, SourceStats, ARCHIVE_FILE};
pub use supervisor::{
    sweep_supervised, sweep_supervised_metered, SupervisedSweep, SupervisorConfig, SweepMetrics,
};
pub use telemetry::{decode_telemetry, encode_telemetry, MetricKind, TELEMETRY_SOURCE};
