//! Measurement sources, the snapshot schema, and row packing.

use dps_columnar::Schema;
use dps_ecosystem::Tld;

/// A measurement input list (paper Table 1 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Source {
    /// The full `.com` zone.
    Com,
    /// The full `.net` zone.
    Net,
    /// The full `.org` zone.
    Org,
    /// The full `.nl` zone.
    Nl,
    /// The Alexa-style popularity list.
    Alexa,
}

/// All sources, in Table 1 order.
pub const SOURCES: [Source; 5] = [
    Source::Com,
    Source::Net,
    Source::Org,
    Source::Nl,
    Source::Alexa,
];

impl Source {
    /// Dense index.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Table 1 label.
    pub fn label(self) -> &'static str {
        match self {
            Source::Com => ".com",
            Source::Net => ".net",
            Source::Org => ".org",
            Source::Nl => ".nl",
            Source::Alexa => "Alexa 1M",
        }
    }

    /// The zone this source sweeps, if it is a zone source.
    pub fn tld(self) -> Option<Tld> {
        match self {
            Source::Com => Some(Tld::Com),
            Source::Net => Some(Tld::Net),
            Source::Org => Some(Tld::Org),
            Source::Nl => Some(Tld::Nl),
            Source::Alexa => None,
        }
    }

    /// From a dense index.
    pub fn from_index(i: u32) -> Option<Self> {
        SOURCES.get(i as usize).copied()
    }
}

/// Column order of daily snapshot tables.
///
/// All values are u32. `entry` is the zone-entry code
/// (see [`entry_code`]); `*_sld` columns are string-dictionary ids with 0 =
/// absent; `apex_v4` is the packed IPv4 address (0 = absent); `www_v4x` and
/// `wasnx` are XOR-deltas against the apex values so the common "www equals
/// apex" case compresses to runs of zero.
pub const COLUMNS: [&str; 18] = [
    "day", "source", "entry", "sld", "apex_v4", "www_v4x", "aaaa", "cname1", "cname2", "ns1",
    "ns2", "nsh1", "nsh2", "asn1", "asn2", "wasnx", "aaaa_asn", "failed",
];

/// Builds the snapshot schema.
pub fn schema() -> Schema {
    Schema::new(&COLUMNS)
}

/// Encodes a zone entry as a u32: customer domains are `2·id`,
/// infrastructure SLDs are `2·idx + 1`.
pub fn entry_code(entry: dps_ecosystem::ZoneEntry) -> u32 {
    match entry {
        dps_ecosystem::ZoneEntry::Domain(id) => id.0 * 2,
        dps_ecosystem::ZoneEntry::Infra(i) => (i as u32) * 2 + 1,
    }
}

/// Decodes an entry code.
pub fn decode_entry(code: u32) -> dps_ecosystem::ZoneEntry {
    if code % 2 == 0 {
        dps_ecosystem::ZoneEntry::Domain(dps_ecosystem::DomainId(code / 2))
    } else {
        dps_ecosystem::ZoneEntry::Infra((code / 2) as usize)
    }
}

/// One collected and supplemented measurement row, pre-dictionary.
#[derive(Debug, Clone, Default)]
pub struct Row {
    /// Zone-entry code.
    pub entry: u32,
    /// Dictionary id of the measured SLD itself (e.g. `d123.com`).
    pub sld: u32,
    /// Apex IPv4 (packed, 0 = none).
    pub apex_v4: u32,
    /// `www` IPv4 (packed, 0 = none).
    pub www_v4: u32,
    /// AAAA present on apex or www.
    pub aaaa: bool,
    /// First CNAME-chain SLD dictionary id.
    pub cname1: u32,
    /// Second distinct CNAME-chain SLD dictionary id.
    pub cname2: u32,
    /// First NS SLD dictionary id.
    pub ns1: u32,
    /// Second distinct NS SLD dictionary id.
    pub ns2: u32,
    /// Full host name of the first NS record (dictionary id; paper
    /// footnote 10 analyses these, e.g. `kate.ns.cloudflare.com`).
    pub nsh1: u32,
    /// Full host name of the second NS record.
    pub nsh2: u32,
    /// First origin AS of the apex address.
    pub asn1: u32,
    /// Second origin AS (multi-origin prefixes), 0 otherwise.
    pub asn2: u32,
    /// First origin AS of the `www` address.
    pub www_asn: u32,
    /// Origin AS of the AAAA address, when one was answered (the paper
    /// supplements v6 addresses against the v6 `pfx2as` table too).
    pub aaaa_asn: u32,
    /// Measurement failed (SERVFAIL / timeout): data columns are zero.
    pub failed: bool,
    /// Resource records observed for this name today (data points).
    pub data_points: u32,
}

impl Row {
    /// Packs into schema order for a given day/source.
    pub fn pack(&self, day: u32, source: Source) -> [u32; 18] {
        [
            day,
            source.index() as u32,
            self.entry,
            self.sld,
            self.apex_v4,
            self.www_v4 ^ self.apex_v4,
            self.aaaa as u32,
            self.cname1,
            self.cname2,
            self.ns1,
            self.ns2,
            self.nsh1,
            self.nsh2,
            self.asn1,
            self.asn2,
            self.www_asn ^ self.asn1,
            self.aaaa_asn,
            self.failed as u32,
        ]
    }

    /// Unpacks a row from decoded columns at index `i`.
    pub fn unpack(cols: &[&[u32]], i: usize) -> (u32, Source, Row) {
        let day = cols[0][i];
        let source = Source::from_index(cols[1][i]).expect("valid source");
        let apex_v4 = cols[4][i];
        let asn1 = cols[13][i];
        (
            day,
            source,
            Row {
                entry: cols[2][i],
                sld: cols[3][i],
                apex_v4,
                www_v4: cols[5][i] ^ apex_v4,
                aaaa: cols[6][i] != 0,
                cname1: cols[7][i],
                cname2: cols[8][i],
                ns1: cols[9][i],
                ns2: cols[10][i],
                nsh1: cols[11][i],
                nsh2: cols[12][i],
                asn1,
                asn2: cols[14][i],
                www_asn: cols[15][i] ^ asn1,
                aaaa_asn: cols[16][i],
                failed: cols[17][i] != 0,
                data_points: 0,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dps_ecosystem::{DomainId, ZoneEntry};

    #[test]
    fn entry_code_roundtrip() {
        for e in [
            ZoneEntry::Domain(DomainId(0)),
            ZoneEntry::Domain(DomainId(77)),
            ZoneEntry::Infra(0),
            ZoneEntry::Infra(12),
        ] {
            assert_eq!(decode_entry(entry_code(e)), e);
        }
    }

    #[test]
    fn row_pack_unpack() {
        let row = Row {
            entry: 42,
            sld: 3,
            apex_v4: 0x0A000001,
            www_v4: 0x0A000002,
            aaaa: true,
            cname1: 5,
            cname2: 0,
            ns1: 9,
            ns2: 10,
            nsh1: 21,
            nsh2: 22,
            asn1: 13335,
            asn2: 0,
            www_asn: 19551,
            aaaa_asn: 13335,
            failed: false,
            data_points: 7,
        };
        let packed = row.pack(17, Source::Org);
        let cols: Vec<Vec<u32>> = (0..18).map(|c| vec![packed[c]]).collect();
        let refs: Vec<&[u32]> = cols.iter().map(Vec::as_slice).collect();
        let (day, source, back) = Row::unpack(&refs, 0);
        assert_eq!(day, 17);
        assert_eq!(source, Source::Org);
        assert_eq!(back.apex_v4, row.apex_v4);
        assert_eq!(back.www_v4, row.www_v4);
        assert_eq!(back.www_asn, row.www_asn);
        assert_eq!(back.aaaa, row.aaaa);
        assert_eq!(back.aaaa_asn, row.aaaa_asn);
        assert_eq!(back.ns2, row.ns2);
        assert_eq!(back.nsh1, row.nsh1);
        assert_eq!(back.nsh2, row.nsh2);
    }

    #[test]
    fn sources_index_roundtrip() {
        for s in SOURCES {
            assert_eq!(Source::from_index(s.index() as u32), Some(s));
        }
        assert_eq!(Source::from_index(9), None);
    }
}
