//! Stage I: collecting one name's records through a query path.

use crate::observation::Row;
use crate::quality::CauseCounts;
use dps_authdns::resolver::{Resolution, ResolveError, Resolver};
use dps_columnar::StringDict;
use dps_dns::{Name, RData, Rcode, RrType};
use dps_ecosystem::World;
use dps_netsim::Pfx2As;
// dps: allow-file(unordered-collection, reason = "SldInterner's caches are keyed lookups only, never iterated; dictionary ids are assigned by StringDict in first-intern order, so hash order cannot leak into output")
use std::collections::HashMap;
use std::net::IpAddr;

/// Fault-handling counters a query path can expose. The sweep supervisor
/// snapshots these around a sweep and stores the delta in the day's
/// [`DayQuality`](crate::quality::DayQuality) record.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PathTelemetry {
    /// Hedged second datagrams sent so far.
    pub hedges: u64,
    /// Circuit-breaker trips so far.
    pub breaker_trips: u64,
}

impl PathTelemetry {
    /// Counter delta since `before` (saturating).
    pub fn since(&self, before: &PathTelemetry) -> PathTelemetry {
        PathTelemetry {
            hedges: self.hedges.saturating_sub(before.hedges),
            breaker_trips: self.breaker_trips.saturating_sub(before.breaker_trips),
        }
    }
}

/// A way to ask the DNS a question. The measurement pipeline is generic
/// over this so the bulk path (direct world evaluation) and the wire path
/// (iterative resolution over the lossy network) share every other line of
/// code.
pub trait QueryPath {
    /// Resolves `(qname, qtype)` from scratch.
    fn query(&mut self, qname: &Name, qtype: RrType) -> Result<Resolution, ResolveError>;

    /// Advances the path's notion of time without sending — the pause the
    /// supervisor inserts between dead-letter retry passes so transient
    /// faults (blackout windows, open breakers) have time to clear.
    /// Paths without a clock ignore it.
    fn pause_us(&mut self, _dt_us: u64) {}

    /// Current fault-handling counters. Paths without fault handling
    /// report zeros.
    fn telemetry(&self) -> PathTelemetry {
        PathTelemetry::default()
    }

    /// The path's virtual clock, for span timing. Paths without a clock
    /// report a frozen zero (spans over them record zero durations).
    fn now_us(&self) -> u64 {
        0
    }
}

/// Direct evaluation against the world (used for full-scale sweeps).
pub struct BulkPath<'w> {
    world: &'w World,
}

impl<'w> BulkPath<'w> {
    /// Wraps a world.
    pub fn new(world: &'w World) -> Self {
        Self { world }
    }
}

impl QueryPath for BulkPath<'_> {
    fn query(&mut self, qname: &Name, qtype: RrType) -> Result<Resolution, ResolveError> {
        self.world.resolve(qname, qtype)
    }
}

/// Iterative resolution over the simulated network.
pub struct WirePath {
    resolver: Resolver,
}

impl WirePath {
    /// Wraps an iterative resolver.
    pub fn new(resolver: Resolver) -> Self {
        Self { resolver }
    }
}

impl QueryPath for WirePath {
    fn query(&mut self, qname: &Name, qtype: RrType) -> Result<Resolution, ResolveError> {
        self.resolver.resolve(qname, qtype)
    }

    fn pause_us(&mut self, dt_us: u64) {
        self.resolver.sleep_us(dt_us);
    }

    fn telemetry(&self) -> PathTelemetry {
        PathTelemetry {
            hedges: self.resolver.hedges_sent(),
            breaker_trips: self.resolver.health().map_or(0, |h| h.trips()),
        }
    }

    fn now_us(&self) -> u64 {
        self.resolver.now_us()
    }
}

/// Iterative resolution through the shared caching recursor: wire
/// semantics, but TTL-aware answer/infrastructure caches and query
/// coalescing amortise packets across domains and sweep days.
pub struct RecursorPath {
    worker: dps_recursor::RecursorWorker,
}

impl RecursorPath {
    /// Wraps a recursor worker (one per sweeping thread; see
    /// [`dps_recursor::Recursor::worker`]).
    pub fn new(worker: dps_recursor::RecursorWorker) -> Self {
        Self { worker }
    }

    /// UDP queries this path's socket has sent.
    pub fn queries_sent(&self) -> u64 {
        self.worker.queries_sent()
    }
}

impl QueryPath for RecursorPath {
    fn query(&mut self, qname: &Name, qtype: RrType) -> Result<Resolution, ResolveError> {
        self.worker.resolve(qname, qtype)
    }

    fn pause_us(&mut self, dt_us: u64) {
        self.worker.sleep_us(dt_us);
    }

    fn telemetry(&self) -> PathTelemetry {
        let stats = self.worker.service_stats();
        PathTelemetry {
            hedges: stats.hedges,
            breaker_trips: stats.breaker_trips,
        }
    }

    fn now_us(&self) -> u64 {
        self.worker.now_us()
    }
}

/// Interns the registered domain ("SLD" in the paper's terminology) of
/// names through a name-keyed cache. Extraction is public-suffix aware
/// (see [`dps_dns::psl`]); the cache avoids re-rendering names.
pub struct SldInterner {
    psl: dps_dns::PublicSuffixList,
    cache: HashMap<Name, u32>,
    full_cache: HashMap<Name, u32>,
}

impl SldInterner {
    /// Uses the built-in public-suffix subset.
    pub fn new() -> Self {
        Self::with_psl(dps_dns::PublicSuffixList::default_list())
    }

    /// Uses a caller-provided public-suffix list (e.g. the real PSL when
    /// pointed at real data).
    pub fn with_psl(psl: dps_dns::PublicSuffixList) -> Self {
        Self {
            psl,
            cache: HashMap::new(),
            full_cache: HashMap::new(),
        }
    }

    /// Dictionary id of `name`'s registered domain.
    pub fn intern(&mut self, dict: &mut StringDict, name: &Name) -> u32 {
        if let Some(&id) = self.cache.get(name) {
            return id;
        }
        let sld = self.psl.registered_domain(name);
        let mut s = sld.to_string();
        s.pop(); // drop the trailing dot for human-friendly dictionary entries
        let id = dict.intern(&s);
        self.cache.insert(name.clone(), id);
        id
    }

    /// Dictionary id of the full host name (used for NS host analysis,
    /// paper footnote 10). Distinct host names are few (a provider runs a
    /// handful of servers), so the cache stays small.
    pub fn intern_full(&mut self, dict: &mut StringDict, name: &Name) -> u32 {
        if let Some(&id) = self.full_cache.get(name) {
            return id;
        }
        let mut s = name.to_string();
        s.pop();
        let id = dict.intern(&s);
        self.full_cache.insert(name.clone(), id);
        id
    }
}

impl Default for SldInterner {
    fn default() -> Self {
        Self::new()
    }
}

fn v4_of(res: &Resolution) -> u32 {
    res.answers
        .iter()
        .find_map(|r| match r.rdata {
            RData::A(ip) => Some(u32::from(ip)),
            _ => None,
        })
        .unwrap_or(0)
}

fn v6_of(res: &Resolution) -> Option<std::net::Ipv6Addr> {
    res.answers.iter().find_map(|r| match r.rdata {
        RData::Aaaa(ip) => Some(ip),
        _ => None,
    })
}

/// A collected measurement before dictionary encoding: SLDs are still
/// [`Name`]s, so worker threads can produce it without touching the
/// shared dictionary.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RawRow {
    /// Zone-entry code.
    pub entry: u32,
    /// The measured apex (its SLD becomes the row's `sld` column).
    pub apex: Option<Name>,
    /// Apex IPv4 (packed, 0 = none).
    pub apex_v4: u32,
    /// `www` IPv4 (packed, 0 = none).
    pub www_v4: u32,
    /// AAAA present.
    pub aaaa: bool,
    /// First two distinct CNAME-chain target SLD carriers.
    pub cnames: [Option<Name>; 2],
    /// First two distinct NS host names, deduplicated per SLD (the `ns*`
    /// columns carry SLDs).
    pub ns: [Option<Name>; 2],
    /// First two NS host names verbatim (the `nsh*` columns).
    pub ns_hosts: [Option<Name>; 2],
    /// Origin AS of the apex address (+ second origin for MOAS).
    pub asn1: u32,
    /// Second origin.
    pub asn2: u32,
    /// Origin AS of the `www` address.
    pub www_asn: u32,
    /// Origin AS of the AAAA address (v6 `pfx2as`).
    pub aaaa_asn: u32,
    /// Measurement failed entirely.
    pub failed: bool,
    /// Resource records observed.
    pub data_points: u32,
    /// Some query of this row failed *transiently* (timeout, unreachable,
    /// corrupt reply, SERVFAIL): a retry might complete the measurement.
    /// NXDOMAIN is a definitive observation and never sets this.
    pub retryable: bool,
    /// Per-cause failure tally for this collection attempt.
    pub causes: CauseCounts,
}

impl RawRow {
    /// Dictionary-encodes into a packed [`Row`] (manager-thread step).
    pub fn intern(self, dict: &mut StringDict, interner: &mut SldInterner) -> Row {
        let mut pick =
            |name: &Option<Name>| name.as_ref().map(|n| interner.intern(dict, n)).unwrap_or(0);
        let [cname1_n, cname2_n] = &self.cnames;
        let [ns1_n, ns2_n] = &self.ns;
        let cname1 = pick(cname1_n);
        let cname2 = pick(cname2_n);
        let ns1 = pick(ns1_n);
        let ns2 = pick(ns2_n);
        let sld = pick(&self.apex);
        let mut pick_full = |name: &Option<Name>| {
            name.as_ref()
                .map(|n| interner.intern_full(dict, n))
                .unwrap_or(0)
        };
        let [nsh1_n, nsh2_n] = &self.ns_hosts;
        let nsh1 = pick_full(nsh1_n);
        let nsh2 = pick_full(nsh2_n);
        Row {
            entry: self.entry,
            sld,
            apex_v4: self.apex_v4,
            www_v4: self.www_v4,
            aaaa: self.aaaa,
            cname1,
            cname2,
            ns1,
            ns2,
            nsh1,
            nsh2,
            asn1: self.asn1,
            asn2: self.asn2,
            www_asn: self.www_asn,
            aaaa_asn: self.aaaa_asn,
            failed: self.failed,
            data_points: self.data_points,
        }
    }
}

fn push_distinct(slot: &mut [Option<Name>; 2], name: &Name) {
    match &slot[0] {
        None => slot[0] = Some(name.clone()),
        Some(first) if first.sld() != name.sld() && slot[1].is_none() => {
            slot[1] = Some(name.clone());
        }
        _ => {}
    }
}

/// Collects the paper's record set for one name — apex `A`/`AAAA`, `www`
/// `A`, apex `NS`, with CNAME expansions — and supplements origin ASes
/// from `pfx2as` (stage III). Runs on worker threads; no shared state.
pub fn collect_raw(path: &mut impl QueryPath, apex: &Name, entry: u32, pfx2as: &Pfx2As) -> RawRow {
    let mut row = RawRow {
        entry,
        apex: Some(apex.clone()),
        ..RawRow::default()
    };

    let apex_res = path.query(apex, RrType::A);
    let apex_res = match apex_res {
        Ok(r) => r,
        Err(e) => {
            row.failed = true;
            row.retryable = e.is_transient();
            row.causes.add(e.cause());
            return row;
        }
    };
    if apex_res.rcode != Rcode::NoError {
        // NXDOMAIN: the name vanished between zone-file fetch and sweep —
        // a definitive observation. SERVFAIL is a server-side fault and
        // worth a dead-letter retry.
        row.failed = true;
        if apex_res.rcode == Rcode::ServFail {
            row.retryable = true;
            row.causes.add(dps_authdns::FailureCause::ServerFailure);
        }
        return row;
    }
    row.data_points += apex_res.answers.len() as u32;
    row.apex_v4 = v4_of(&apex_res);

    let www = apex.prepend("www").expect("www fits");
    let www_res = path.query(&www, RrType::A);
    let aaaa_res = path.query(apex, RrType::Aaaa);
    let ns_res = path.query(apex, RrType::Ns);

    match &www_res {
        Ok(res) => {
            row.data_points += res.answers.len() as u32;
            row.www_v4 = v4_of(res);
            let mut cnames = std::mem::take(&mut row.cnames);
            for target in res.cname_chain() {
                push_distinct(&mut cnames, target);
            }
            row.cnames = cnames;
        }
        Err(e) => {
            row.retryable |= e.is_transient();
            row.causes.add(e.cause());
        }
    }
    let mut aaaa_addr = None;
    match &aaaa_res {
        Ok(res) => {
            row.data_points += res.answers.len() as u32;
            aaaa_addr = v6_of(res);
            row.aaaa = aaaa_addr.is_some();
        }
        Err(e) => {
            row.retryable |= e.is_transient();
            row.causes.add(e.cause());
        }
    }
    match &ns_res {
        Ok(res) => {
            row.data_points += res.answers.len() as u32;
            let mut ns = std::mem::take(&mut row.ns);
            let mut hosts = std::mem::take(&mut row.ns_hosts);
            for rec in res.records_of(RrType::Ns) {
                if let RData::Ns(host) = &rec.rdata {
                    push_distinct(&mut ns, host);
                    if hosts[0].is_none() {
                        hosts[0] = Some(host.clone());
                    } else if hosts[1].is_none() && hosts[0].as_ref() != Some(host) {
                        hosts[1] = Some(host.clone());
                    }
                }
            }
            row.ns = ns;
            row.ns_hosts = hosts;
        }
        Err(e) => {
            row.retryable |= e.is_transient();
            row.causes.add(e.cause());
        }
    }

    // Stage III: supplement origin ASes.
    if row.apex_v4 != 0 {
        if let Some((origins, _)) = pfx2as.origins(IpAddr::V4(row.apex_v4.into())) {
            row.asn1 = origins.first().map(|a| a.0).unwrap_or(0);
            row.asn2 = origins.get(1).map(|a| a.0).unwrap_or(0);
        }
    }
    if row.www_v4 != 0 {
        if let Some((origins, _)) = pfx2as.origins(IpAddr::V4(row.www_v4.into())) {
            row.www_asn = origins.first().map(|a| a.0).unwrap_or(0);
        }
    }
    if let Some(v6) = aaaa_addr {
        if let Some((origins, _)) = pfx2as.origins(IpAddr::V6(v6)) {
            row.aaaa_asn = origins.first().map(|a| a.0).unwrap_or(0);
        }
    }
    row
}

/// [`collect_raw`] + dictionary encoding in one step (sequential paths).
#[allow(clippy::too_many_arguments)]
pub fn collect(
    path: &mut impl QueryPath,
    apex: &Name,
    entry: u32,
    pfx2as: &Pfx2As,
    dict: &mut StringDict,
    interner: &mut SldInterner,
) -> Row {
    collect_raw(path, apex, entry, pfx2as).intern(dict, interner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dps_ecosystem::{Diversion, ScenarioParams};

    #[test]
    fn collect_produces_references_for_cname_customer() {
        let world = World::imc2016(ScenarioParams::tiny(3));
        let mut dict = StringDict::new();
        let mut interner = SldInterner::new();
        let pfx2as = world.pfx2as();

        let (id, st) = world
            .domains()
            .iter()
            .enumerate()
            .find(|(_, st)| matches!(st.diversion, Diversion::Cname(_)) && st.alive_on(world.day()))
            .expect("cname customer");
        let apex = world.domain_name(dps_ecosystem::DomainId(id as u32));
        let mut path = BulkPath::new(&world);
        let row = collect(&mut path, &apex, 0, &pfx2as, &mut dict, &mut interner);

        assert!(!row.failed);
        assert_ne!(row.apex_v4, 0);
        assert_ne!(row.cname1, 0, "CNAME SLD captured");
        assert_ne!(row.ns1, 0, "NS SLD captured");
        assert_ne!(row.asn1, 0, "origin AS supplemented");
        let p = st.diversion.provider().unwrap();
        let spec = &dps_ecosystem::spec::PROVIDERS[p.0 as usize];
        let cname_sld = dict.resolve(row.cname1).unwrap();
        assert!(spec.cname_slds.contains(&cname_sld), "{cname_sld}");
        assert!(spec.asns.contains(&row.asn1), "{}", row.asn1);
        assert!(row.data_points >= 3);
    }

    #[test]
    fn collect_marks_missing_domains_failed() {
        let world = World::imc2016(ScenarioParams::tiny(3));
        let mut dict = StringDict::new();
        let mut interner = SldInterner::new();
        let pfx2as = world.pfx2as();
        let mut path = BulkPath::new(&world);
        let row = collect(
            &mut path,
            &"d99999999.com".parse().unwrap(),
            0,
            &pfx2as,
            &mut dict,
            &mut interner,
        );
        assert!(row.failed);
        assert_eq!(row.apex_v4, 0);
    }

    #[test]
    fn interner_caches_and_matches_dict() {
        let mut dict = StringDict::new();
        let mut i = SldInterner::new();
        let a = i.intern(&mut dict, &"x.edge.incapdns.net".parse().unwrap());
        let b = i.intern(&mut dict, &"other.incapdns.net".parse().unwrap());
        assert_eq!(a, b);
        assert_eq!(dict.resolve(a), Some("incapdns.net"));
    }
}
