//! Per-day data-quality records: the automated analogue of the paper's
//! §4.2 manual data cleaning.
//!
//! Every supervised sweep produces one [`DayQuality`] per (day, source):
//! how many names were attempted, how many ended failed after the retry
//! passes, a per-cause failure census ([`CauseCounts`]), and the fault
//! handling the sweep needed (retries, hedges, breaker trips). The records
//! are persisted in the measurement archive under the reserved
//! [`QUALITY_SOURCE`] page id so an analysis run can gate days on
//! [`coverage`](DayQuality::coverage) without re-measuring anything — the
//! paper instead dropped bad days by hand.

use crate::observation::Source;
use dps_authdns::FailureCause;
use dps_columnar::{Schema, Table, TableBuilder};

/// Reserved archive source id for quality tables. Data sources occupy
/// `0..=4` (see [`crate::observation::SOURCES`]); quality pages ride in
/// the same archive keyed `(day, QUALITY_SOURCE)`.
pub const QUALITY_SOURCE: u8 = 5;

/// Column order of per-day quality tables (all u32; one row per source
/// measured that day).
pub const QUALITY_COLUMNS: [&str; 14] = [
    "day",
    "source",
    "attempted",
    "failed",
    "retried",
    "recovered",
    "timeouts",
    "unreachable",
    "corrupt",
    "servfail",
    "other",
    "retry_passes",
    "breaker_trips",
    "hedges",
];

/// Builds the quality-table schema.
pub fn quality_schema() -> Schema {
    Schema::new(&QUALITY_COLUMNS)
}

/// Failure tallies bucketed by [`FailureCause`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CauseCounts {
    /// Silence until the attempt deadline.
    pub timeouts: u32,
    /// ICMP-style destination unreachable.
    pub unreachable: u32,
    /// Only corrupt/unparseable datagrams arrived.
    pub corrupt: u32,
    /// The server answered with an error RCODE.
    pub servfail: u32,
    /// Structural failures (referral loops, lame delegations, …).
    pub other: u32,
}

impl CauseCounts {
    /// Tallies one failure.
    pub fn add(&mut self, cause: FailureCause) {
        let slot = match cause {
            FailureCause::Timeout => &mut self.timeouts,
            FailureCause::Unreachable => &mut self.unreachable,
            FailureCause::Corrupt => &mut self.corrupt,
            FailureCause::ServerFailure => &mut self.servfail,
            FailureCause::Other => &mut self.other,
        };
        *slot = slot.saturating_add(1);
    }

    /// Adds another tally into this one.
    pub fn merge(&mut self, other: &CauseCounts) {
        self.timeouts = self.timeouts.saturating_add(other.timeouts);
        self.unreachable = self.unreachable.saturating_add(other.unreachable);
        self.corrupt = self.corrupt.saturating_add(other.corrupt);
        self.servfail = self.servfail.saturating_add(other.servfail);
        self.other = self.other.saturating_add(other.other);
    }

    /// Total failures across all causes.
    pub fn total(&self) -> u64 {
        u64::from(self.timeouts)
            + u64::from(self.unreachable)
            + u64::from(self.corrupt)
            + u64::from(self.servfail)
            + u64::from(self.other)
    }
}

/// One day's measurement quality for one source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DayQuality {
    /// Measurement day.
    pub day: u32,
    /// Which input list.
    pub source: Source,
    /// Names the sweep attempted to measure.
    pub attempted: u32,
    /// Names whose measurement was still incomplete after every retry
    /// pass (transient failure or partial data). Definitive NXDOMAIN for
    /// a vanished name is a usable observation and is *not* counted.
    pub failed: u32,
    /// Names that entered the dead-letter queue (any transient failure).
    pub retried: u32,
    /// Dead-letter names whose retry completed cleanly.
    pub recovered: u32,
    /// Failure census over every attempt (first pass + retries).
    pub causes: CauseCounts,
    /// End-of-day retry passes actually run.
    pub retry_passes: u32,
    /// Circuit-breaker trips during the sweep.
    pub breaker_trips: u32,
    /// Hedged second datagrams sent.
    pub hedges: u32,
}

impl DayQuality {
    /// A perfect-coverage record (used by paths that cannot fail
    /// transiently, e.g. bulk world evaluation).
    pub fn perfect(day: u32, source: Source, attempted: u32, failed: u32) -> Self {
        Self {
            day,
            source,
            attempted,
            failed,
            retried: 0,
            recovered: 0,
            causes: CauseCounts::default(),
            retry_passes: 0,
            breaker_trips: 0,
            hedges: 0,
        }
    }

    /// Fraction of attempted names that ended with a usable measurement
    /// (`1.0` for an empty list).
    pub fn coverage(&self) -> f64 {
        if self.attempted == 0 {
            1.0
        } else {
            f64::from(self.attempted - self.failed.min(self.attempted)) / f64::from(self.attempted)
        }
    }

    /// Packs into quality-schema column order.
    pub fn pack(&self) -> [u32; 14] {
        [
            self.day,
            self.source.index() as u32,
            self.attempted,
            self.failed,
            self.retried,
            self.recovered,
            self.causes.timeouts,
            self.causes.unreachable,
            self.causes.corrupt,
            self.causes.servfail,
            self.causes.other,
            self.retry_passes,
            self.breaker_trips,
            self.hedges,
        ]
    }

    /// Unpacks row `i` of decoded quality columns. `None` for a row or
    /// column the (possibly corrupt) table does not actually hold.
    pub fn unpack(cols: &[&[u32]], i: usize) -> Option<Self> {
        let cell = |c: usize| -> Option<u32> { cols.get(c)?.get(i).copied() };
        Some(Self {
            day: cell(0)?,
            source: Source::from_index(cell(1)?)?,
            attempted: cell(2)?,
            failed: cell(3)?,
            retried: cell(4)?,
            recovered: cell(5)?,
            causes: CauseCounts {
                timeouts: cell(6)?,
                unreachable: cell(7)?,
                corrupt: cell(8)?,
                servfail: cell(9)?,
                other: cell(10)?,
            },
            retry_passes: cell(11)?,
            breaker_trips: cell(12)?,
            hedges: cell(13)?,
        })
    }
}

/// Encodes one day's quality records (one row per source) as a columnar
/// table for the archive page `(day, QUALITY_SOURCE)`.
pub fn encode_qualities(qualities: &[DayQuality]) -> Table {
    let mut b = TableBuilder::new(quality_schema());
    for q in qualities {
        b.push_row(&q.pack());
    }
    b.finish()
}

/// Decodes a quality table back into records. Returns `None` on a schema
/// mismatch or an unknown source id.
pub fn decode_qualities(table: &Table) -> Option<Vec<DayQuality>> {
    if table.schema().names() != quality_schema().names() {
        return None;
    }
    let cols: Vec<&[u32]> = (0..QUALITY_COLUMNS.len())
        .map(|c| table.column(c))
        .collect();
    (0..table.rows())
        .map(|i| DayQuality::unpack(&cols, i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(day: u32, source: Source) -> DayQuality {
        DayQuality {
            day,
            source,
            attempted: 1000,
            failed: 13,
            retried: 40,
            recovered: 27,
            causes: CauseCounts {
                timeouts: 31,
                unreachable: 4,
                corrupt: 2,
                servfail: 9,
                other: 1,
            },
            retry_passes: 2,
            breaker_trips: 3,
            hedges: 17,
        }
    }

    #[test]
    fn coverage_is_fraction_of_usable_rows() {
        let q = sample(0, Source::Com);
        assert!((q.coverage() - 0.987).abs() < 1e-9);
        assert_eq!(DayQuality::perfect(0, Source::Nl, 0, 0).coverage(), 1.0);
        let dead = DayQuality::perfect(0, Source::Org, 10, 10);
        assert_eq!(dead.coverage(), 0.0);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let qs = vec![sample(3, Source::Com), sample(3, Source::Alexa)];
        let table = encode_qualities(&qs);
        assert_eq!(table.rows(), 2);
        let back = decode_qualities(&table).expect("decodes");
        assert_eq!(back, qs);
    }

    #[test]
    fn cause_counts_merge_and_total() {
        let mut a = CauseCounts::default();
        a.add(FailureCause::Timeout);
        a.add(FailureCause::Timeout);
        a.add(FailureCause::ServerFailure);
        let mut b = CauseCounts::default();
        b.add(FailureCause::Unreachable);
        b.merge(&a);
        assert_eq!(b.timeouts, 2);
        assert_eq!(b.unreachable, 1);
        assert_eq!(b.servfail, 1);
        assert_eq!(b.total(), 4);
    }

    #[test]
    fn quality_schema_has_no_unique_key_column() {
        // Quality pages must never contribute to the archive's unique-SLD
        // tracking, which keys on the data schema's `entry` column.
        assert!(!QUALITY_COLUMNS.contains(&crate::snapshot::UNIQUE_KEY_COLUMN));
    }
}
