//! Persisting pipeline telemetry into the measurement archive.
//!
//! Every measured day gets one page under the reserved
//! [`TELEMETRY_SOURCE`] id holding that day's [`Snapshot`] delta — the
//! counters, gauges and histograms the sweep accumulated while producing
//! the day's data pages. Like quality pages, telemetry rides in the same
//! single-file archive and is rehydrated on resume, so an aborted-and-
//! resumed sweep persists byte-identical telemetry to an uninterrupted
//! one.
//!
//! Metric names are not stored as strings: the page schema is numeric
//! (`dps-columnar` tables hold `u32` cells), so each row carries the
//! metric's index into the fixed [`CATALOG`] below. Encoding writes the
//! *entire* catalog every time — zero-valued counters and gauges
//! included — so two runs always persist the same row skeleton and a
//! telemetry page's bytes are a pure function of the recorded values.
//! Histogram buckets are the exception: only nonzero buckets get rows
//! (ascending), mirroring [`dps_telemetry::HistogramSnapshot`], which
//! keeps `decode ∘ encode` exactly the identity.

use dps_columnar::{Schema, Table, TableBuilder};
use dps_telemetry::{Snapshot, HISTOGRAM_BUCKETS};

/// Reserved archive source id for telemetry pages. Data sources occupy
/// `0..=4`, quality pages `5` (see [`crate::quality::QUALITY_SOURCE`]).
pub const TELEMETRY_SOURCE: u8 = 6;

/// Column order of telemetry tables (all u32).
pub const TELEMETRY_COLUMNS: [&str; 5] = ["metric", "kind", "bucket", "lo", "hi"];

/// Row kinds in the `kind` column.
const KIND_COUNTER: u32 = 0;
const KIND_GAUGE: u32 = 1;
const KIND_HIST_BUCKET: u32 = 2;
const KIND_HIST_COUNT: u32 = 3;
const KIND_HIST_SUM: u32 = 4;

/// Instrument kind of a catalogued metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter.
    Counter,
    /// Signed level.
    Gauge,
    /// Log₂-bucketed histogram.
    Histogram,
}

/// Every metric the pipeline records, in persisted id order (the row
/// `metric` column is an index into this table). Append-only: reordering
/// or removing entries changes the meaning of archived pages.
pub const CATALOG: &[(&str, MetricKind)] = &[
    ("health.breaker.probes", MetricKind::Counter),
    ("health.breaker.skips", MetricKind::Counter),
    ("health.breaker.trips", MetricKind::Counter),
    ("measure.data.points", MetricKind::Counter),
    ("measure.days", MetricKind::Counter),
    ("measure.rows", MetricKind::Counter),
    ("net.chaos.degraded", MetricKind::Counter),
    ("net.latency.us", MetricKind::Histogram),
    ("net.packets.blackholed", MetricKind::Counter),
    ("net.packets.corrupted", MetricKind::Counter),
    ("net.packets.delivered", MetricKind::Counter),
    ("net.packets.dropped", MetricKind::Counter),
    ("net.packets.duplicated", MetricKind::Counter),
    ("net.packets.sent", MetricKind::Counter),
    ("net.packets.unroutable", MetricKind::Counter),
    ("recursor.answer.expired", MetricKind::Counter),
    ("recursor.answer.hits", MetricKind::Counter),
    ("recursor.answer.misses", MetricKind::Counter),
    ("recursor.infra.hits", MetricKind::Counter),
    ("recursor.iteration.depth", MetricKind::Histogram),
    ("recursor.queries", MetricKind::Counter),
    ("recursor.singleflight.coalesced", MetricKind::Counter),
    ("store.bytes.read", MetricKind::Counter),
    ("store.cache.hits", MetricKind::Counter),
    ("store.cache.misses", MetricKind::Counter),
    ("store.footer.chain", MetricKind::Histogram),
    ("store.footer.walks", MetricKind::Counter),
    ("store.pages.decoded", MetricKind::Counter),
    ("store.scan.pages", MetricKind::Histogram),
    ("store.scans", MetricKind::Counter),
    ("stream.checkpoint.bytes", MetricKind::Counter),
    ("stream.refs", MetricKind::Counter),
    ("stream.rows", MetricKind::Counter),
    ("stream.sketch.hashes", MetricKind::Counter),
    ("sweep.attempted", MetricKind::Counter),
    ("sweep.day.us", MetricKind::Histogram),
    ("sweep.deadletter.passes", MetricKind::Counter),
    ("sweep.failed", MetricKind::Counter),
    ("sweep.failures.corrupt", MetricKind::Counter),
    ("sweep.failures.other", MetricKind::Counter),
    ("sweep.failures.servfail", MetricKind::Counter),
    ("sweep.failures.timeout", MetricKind::Counter),
    ("sweep.failures.unreachable", MetricKind::Counter),
    ("sweep.recovered", MetricKind::Counter),
    ("sweep.retries", MetricKind::Counter),
];

/// Builds the telemetry-table schema.
pub fn telemetry_schema() -> Schema {
    Schema::new(&TELEMETRY_COLUMNS)
}

fn split(v: u64) -> (u32, u32) {
    (v as u32, (v >> 32) as u32)
}

fn join(lo: u32, hi: u32) -> u64 {
    u64::from(lo) | (u64::from(hi) << 32)
}

/// Maps i64 gauge levels onto u64 so small magnitudes stay small.
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Encodes a snapshot as a columnar table for an archive page
/// `(day, TELEMETRY_SOURCE)`. Only catalogued names persist; the whole
/// catalog is written (zeros included) so equal snapshots always encode
/// to identical bytes.
pub fn encode_telemetry(snapshot: &Snapshot) -> Table {
    let mut b = TableBuilder::new(telemetry_schema());
    for (id, &(name, kind)) in CATALOG.iter().enumerate() {
        let id = id as u32;
        match kind {
            MetricKind::Counter => {
                let (lo, hi) = split(snapshot.counters.get(name).copied().unwrap_or(0));
                b.push_row(&[id, KIND_COUNTER, 0, lo, hi]);
            }
            MetricKind::Gauge => {
                let (lo, hi) = split(zigzag(snapshot.gauges.get(name).copied().unwrap_or(0)));
                b.push_row(&[id, KIND_GAUGE, 0, lo, hi]);
            }
            MetricKind::Histogram => {
                let hist = snapshot.histograms.get(name).cloned().unwrap_or_default();
                let (lo, hi) = split(hist.count);
                b.push_row(&[id, KIND_HIST_COUNT, 0, lo, hi]);
                let (lo, hi) = split(hist.sum);
                b.push_row(&[id, KIND_HIST_SUM, 0, lo, hi]);
                for &(bucket, count) in &hist.buckets {
                    let (lo, hi) = split(count);
                    b.push_row(&[id, KIND_HIST_BUCKET, u32::from(bucket), lo, hi]);
                }
            }
        }
    }
    b.finish()
}

/// Decodes a telemetry table back into a snapshot. `None` on a schema
/// mismatch, an unknown metric id, a kind that contradicts the catalog,
/// or an out-of-range bucket index.
pub fn decode_telemetry(table: &Table) -> Option<Snapshot> {
    if table.schema().names() != telemetry_schema().names() {
        return None;
    }
    let ids = table.column(0);
    let kinds = table.column(1);
    let buckets = table.column(2);
    let los = table.column(3);
    let his = table.column(4);
    let mut snap = Snapshot::default();
    for (i, &id) in ids.iter().enumerate() {
        let (name, kind) = *CATALOG.get(id as usize)?;
        let value = join(*los.get(i)?, *his.get(i)?);
        match (*kinds.get(i)?, kind) {
            (KIND_COUNTER, MetricKind::Counter) => {
                snap.counters.insert(name, value);
            }
            (KIND_GAUGE, MetricKind::Gauge) => {
                snap.gauges.insert(name, unzigzag(value));
            }
            (KIND_HIST_COUNT, MetricKind::Histogram) => {
                snap.histograms.entry(name).or_default().count = value;
            }
            (KIND_HIST_SUM, MetricKind::Histogram) => {
                snap.histograms.entry(name).or_default().sum = value;
            }
            (KIND_HIST_BUCKET, MetricKind::Histogram) => {
                let bucket = u8::try_from(*buckets.get(i)?).ok()?;
                if usize::from(bucket) >= HISTOGRAM_BUCKETS {
                    return None;
                }
                snap.histograms
                    .entry(name)
                    .or_default()
                    .buckets
                    .push((bucket, value));
            }
            _ => return None,
        }
    }
    Some(snap)
}

/// The catalogued names, useful for reporting loops.
pub fn catalog_names() -> impl Iterator<Item = &'static str> {
    CATALOG.iter().map(|&(name, _)| name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dps_telemetry::Registry;

    fn sample() -> Snapshot {
        let r = Registry::new();
        r.counter("recursor.queries").add(12_345_678_901);
        r.counter("sweep.failed").add(3);
        r.gauge("net.chaos.degraded"); // kind clash: stays a counter at 0
        r.histogram("net.latency.us").observe(0);
        r.histogram("net.latency.us").observe(1500);
        r.histogram("sweep.day.us").observe(u64::MAX);
        r.snapshot()
    }

    #[test]
    fn encode_decode_roundtrip() {
        let snap = sample();
        let table = encode_telemetry(&snap);
        let back = decode_telemetry(&table).expect("decodes");
        assert_eq!(
            back.counters.get("recursor.queries"),
            Some(&12_345_678_901),
            "u64 values survive the lo/hi split"
        );
        assert_eq!(back.counters.get("sweep.failed"), Some(&3));
        let lat = back.histograms.get("net.latency.us").expect("histogram");
        assert_eq!(lat.count, 2);
        assert_eq!(lat.sum, 1500);
        assert_eq!(lat.buckets, vec![(0, 1), (11, 1)]);
        let day = back.histograms.get("sweep.day.us").expect("histogram");
        assert_eq!(day.sum, u64::MAX);
        assert_eq!(day.buckets, vec![(64, 1)]);
        // Re-encoding the decoded snapshot is byte-identical: the page is
        // a pure function of the recorded values.
        assert_eq!(encode_telemetry(&back).to_bytes(), table.to_bytes());
    }

    #[test]
    fn encoding_writes_the_full_catalog_skeleton() {
        let empty = encode_telemetry(&Snapshot::default());
        let nonzero = encode_telemetry(&sample());
        // Same skeleton: only histogram bucket rows may differ in count.
        let hist_buckets = 3; // sample() fills 2 latency buckets + 1 day bucket
        assert_eq!(empty.rows() + hist_buckets, nonzero.rows());
        let decoded = decode_telemetry(&empty).expect("decodes");
        assert_eq!(
            decoded.counters.len() + decoded.histograms.len(),
            CATALOG.len()
        );
        assert!(decoded.counters.values().all(|&v| v == 0));
    }

    #[test]
    fn gauges_roundtrip_negative_levels() {
        for v in [i64::MIN, -17, 0, 1, i64::MAX] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn decode_rejects_unknown_ids_and_kind_clashes() {
        let mut b = TableBuilder::new(telemetry_schema());
        b.push_row(&[u32::MAX, KIND_COUNTER, 0, 1, 0]);
        assert!(decode_telemetry(&b.finish()).is_none(), "unknown metric id");
        let mut b = TableBuilder::new(telemetry_schema());
        b.push_row(&[0, KIND_GAUGE, 0, 1, 0]); // id 0 is a counter
        assert!(decode_telemetry(&b.finish()).is_none(), "kind clash");
        let mut b = TableBuilder::new(telemetry_schema());
        b.push_row(&[7, KIND_HIST_BUCKET, 65, 1, 0]); // net.latency.us
        assert!(decode_telemetry(&b.finish()).is_none(), "bucket overflow");
    }

    #[test]
    fn catalog_is_sorted_and_distinct() {
        assert!(catalog_names()
            .zip(catalog_names().skip(1))
            .all(|(a, b)| a < b));
    }

    #[test]
    fn telemetry_schema_has_no_unique_key_column() {
        assert!(!TELEMETRY_COLUMNS.contains(&crate::snapshot::UNIQUE_KEY_COLUMN));
    }
}
