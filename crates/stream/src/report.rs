//! Deterministic rendering of analysis state.
//!
//! [`analysis_json`] is the *shared* renderer behind the equivalence
//! guarantee: the incremental engine's [`finalize`] output and a full
//! `dps-core` rescan of the same archive are both rendered through this
//! one function, so "incremental matches full-rescan" is checked as
//! plain byte equality of two JSON strings (`dpscope stream check`).
//!
//! [`finalize`]: crate::engine::StreamEngine::finalize

use dps_core::growth::{self, GrowthConfig};
use dps_core::{flux, ScanOutput};

/// Flux window (measured days) used in the canonical rendering — the
/// paper's two-week buckets at daily cadence.
pub const FLUX_WINDOW: usize = 14;

/// Renders the complete analysis of one scan output as canonical JSON:
/// DPS-use series, growth over the combined gTLD any-provider series
/// (masked days bridged), and per-provider security flux (masked day
/// indices treated as unknown). Fully deterministic: field order is
/// fixed, integers are exact, floats use Rust's shortest-roundtrip
/// formatting — byte equality of two renderings is state equality.
pub fn analysis_json(out: &ScanOutput, names: &[String], masked_gtld_days: &[u32]) -> String {
    let series = &out.series;
    let combined = series.combined_any();
    let growth = growth::analyze_masked(
        &series.days,
        &combined,
        &GrowthConfig::default(),
        masked_gtld_days,
    );
    let masked_idx: Vec<usize> = masked_gtld_days
        .iter()
        .filter_map(|&d| series.day_index(d))
        .collect();
    let flux = flux::analyze_masked(&out.timelines, names.len(), FLUX_WINDOW, &masked_idx);

    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"days\": {},\n", json_u32s(&series.days)));
    s.push_str(&format!(
        "  \"zone_size_combined\": {},\n",
        json_u32s(&series.combined_zone_size())
    ));
    s.push_str(&format!("  \"combined_any\": {},\n", json_u32s(&combined)));
    s.push_str("  \"tld_any\": [");
    push_series_list(&mut s, &series.tld_any);
    s.push_str("],\n  \"source_any\": [");
    push_series_list(&mut s, &series.source_any);
    s.push_str("],\n  \"growth\": {\n");
    s.push_str(&format!("    \"factor\": {},\n", growth.factor));
    s.push_str(&format!(
        "    \"masked_days\": {},\n",
        json_u32s(&growth.masked_days)
    ));
    s.push_str("    \"shifts\": [");
    for (i, (idx, delta)) in growth.shifts.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!("[{idx}, {delta}]"));
    }
    s.push_str("],\n");
    s.push_str(&format!(
        "    \"normalized\": {}\n",
        json_f64s(&growth.normalized)
    ));
    s.push_str("  },\n");
    s.push_str("  \"providers\": [\n");
    for (p, name) in names.iter().enumerate() {
        s.push_str("    {");
        s.push_str(&format!("\"name\": {:?}, ", name));
        s.push_str(&format!(
            "\"any\": {}, ",
            json_u32s(&series.provider_any[p])
        ));
        s.push_str(&format!(
            "\"asn\": {}, ",
            json_u32s(&series.provider_asn[p])
        ));
        s.push_str(&format!(
            "\"cname\": {}, ",
            json_u32s(&series.provider_cname[p])
        ));
        s.push_str(&format!("\"ns\": {}, ", json_u32s(&series.provider_ns[p])));
        let f = &flux[p];
        s.push_str(&format!("\"influx\": {}, ", json_u32s(&f.influx)));
        s.push_str(&format!("\"outflux\": {}, ", json_u32s(&f.outflux)));
        s.push_str(&format!("\"flux_delta\": {}", json_i64s(&f.delta())));
        s.push('}');
        if p + 1 < names.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("  ]\n}\n");
    s
}

fn push_series_list(s: &mut String, list: &[Vec<u32>]) {
    for (i, v) in list.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&json_u32s(v));
    }
}

fn json_u32s(v: &[u32]) -> String {
    let items: Vec<String> = v.iter().map(u32::to_string).collect();
    format!("[{}]", items.join(", "))
}

fn json_i64s(v: &[i64]) -> String {
    let items: Vec<String> = v.iter().map(i64::to_string).collect();
    format!("[{}]", items.join(", "))
}

fn json_f64s(v: &[f64]) -> String {
    let items: Vec<String> = v.iter().map(f64::to_string).collect();
    format!("[{}]", items.join(", "))
}
