//! The checkpoint page codec: one `ANALYSIS_SOURCE` table per day.
//!
//! A checkpoint page persists the *entire* day delta the engine applied
//! — per-source row/quality tallies, per-provider reference counts, the
//! deduplicated reference set, and the per-provider day sketches — so a
//! resumed run replays `decode → apply` through the exact same
//! `apply_delta` path the live run used and lands in byte-identical
//! state.
//!
//! Layout: a fixed six-column `u32` table (`skind,a,b,c,d,e`). Row
//! kinds, in encode order:
//!
//! | kind | meaning   | a        | b        | c          | d         | e      |
//! |-----:|-----------|----------|----------|------------|-----------|--------|
//! | 0    | header    | version  | day      | #providers | sketch k  | #rows  |
//! | 1    | source    | source   | rows     | source_any | attempted | failed |
//! | 2    | provider  | provider | any      | asn        | cname     | ns     |
//! | 3    | reference | entry    | provider | kind bits  | 0         | 0      |
//! | 4    | sketch    | provider | hash lo  | hash hi    | 0         | 0      |
//!
//! Decoding is *checked and total*: any structural violation returns
//! `None` (this file sits in the analyzer's panic-free-decode scope, so
//! no `unwrap`/`expect`/indexing — truncated or bit-flipped pages can
//! never panic the resume path).

use crate::sketch::KmvSketch;
use dps_columnar::{Schema, Table, TableBuilder};
use std::collections::BTreeMap;

/// Checkpoint table column names. Deliberately avoids the archive's
/// unique-key column name (`entry`) so checkpoint pages never perturb
/// the catalog's unique-SLD statistics.
pub const STREAM_COLUMNS: [&str; 6] = ["skind", "a", "b", "c", "d", "e"];

/// Checkpoint layout version.
pub const CHECKPOINT_VERSION: u32 = 1;

const KIND_HEADER: u32 = 0;
const KIND_SOURCE: u32 = 1;
const KIND_PROVIDER: u32 = 2;
const KIND_REF: u32 = 3;
const KIND_SKETCH: u32 = 4;

/// Everything one committed day contributes to the incremental analysis
/// state. Maps are ordered so encoding is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DayDelta {
    /// The day this delta belongs to.
    pub day: u32,
    /// Per due source: `(source id, rows, source_any, attempted, failed)`
    /// in calendar (due-source) order.
    pub sources: Vec<(u8, u32, u32, u32, u32)>,
    /// Per provider: `[any, asn, cname, ns]` reference-row counts summed
    /// over the gTLD sources (index = paper Table 2 provider order).
    pub providers: Vec<[u32; 4]>,
    /// Deduplicated `(entry, provider) → OR'd reference-kind bits`
    /// (ASN=1, CNAME=2, NS=4) for the day.
    pub references: BTreeMap<(u32, u8), u8>,
    /// Per provider: the day's distinct-touch sketch.
    pub sketches: Vec<KmvSketch>,
}

fn schema() -> Schema {
    Schema::new(&STREAM_COLUMNS)
}

/// Encodes a day delta as a checkpoint table.
pub fn encode_delta(delta: &DayDelta) -> Table {
    let sketch_k = delta.sketches.first().map_or(0, |s| s.k() as u32);
    let n_rows = 1
        + delta.sources.len()
        + delta.providers.len()
        + delta.references.len()
        + delta.sketches.iter().map(KmvSketch::len).sum::<usize>();
    let mut b = TableBuilder::new(schema());
    b.push_row(&[
        KIND_HEADER,
        CHECKPOINT_VERSION,
        delta.day,
        delta.providers.len() as u32,
        sketch_k,
        n_rows as u32,
    ]);
    for &(source, rows, source_any, attempted, failed) in &delta.sources {
        b.push_row(&[
            KIND_SOURCE,
            u32::from(source),
            rows,
            source_any,
            attempted,
            failed,
        ]);
    }
    for (provider, &[any, asn, cname, ns]) in delta.providers.iter().enumerate() {
        b.push_row(&[KIND_PROVIDER, provider as u32, any, asn, cname, ns]);
    }
    for (&(entry, provider), &bits) in &delta.references {
        b.push_row(&[KIND_REF, entry, u32::from(provider), u32::from(bits), 0, 0]);
    }
    for (provider, sketch) in delta.sketches.iter().enumerate() {
        for hash in sketch.hashes() {
            b.push_row(&[
                KIND_SKETCH,
                provider as u32,
                (hash & 0xFFFF_FFFF) as u32,
                (hash >> 32) as u32,
                0,
                0,
            ]);
        }
    }
    b.finish()
}

/// Checked, total decode of a checkpoint table back into the day delta.
/// Returns `None` on any structural violation: wrong schema, missing or
/// malformed header, unknown row kind, out-of-range provider or source
/// ids, zero or out-of-range reference bits, or a row-count mismatch
/// (which catches truncation that still parses as a table).
pub fn decode_delta(table: &Table) -> Option<DayDelta> {
    let want = schema();
    if table.schema().names() != want.names() {
        return None;
    }
    let kind_col = table.column(0);
    let a_col = table.column(1);
    let b_col = table.column(2);
    let c_col = table.column(3);
    let d_col = table.column(4);
    let e_col = table.column(5);

    let mut rows = kind_col
        .iter()
        .zip(a_col)
        .zip(b_col)
        .zip(c_col)
        .zip(d_col)
        .zip(e_col)
        .map(|(((((&k, &a), &b), &c), &d), &e)| (k, a, b, c, d, e));

    let Some((KIND_HEADER, version, day, n_providers, sketch_k, n_rows)) = rows.next() else {
        return None;
    };
    if version != CHECKPOINT_VERSION || n_rows as usize != table.rows() {
        return None;
    }
    let n_providers = n_providers as usize;
    let mut delta = DayDelta {
        day,
        sources: Vec::new(),
        providers: vec![[0u32; 4]; n_providers],
        references: BTreeMap::new(),
        sketches: vec![KmvSketch::new(sketch_k.max(1) as usize); n_providers],
    };
    let mut provider_rows = 0usize;
    for (kind, a, b, c, d, e) in rows {
        match kind {
            KIND_SOURCE => {
                if a > u32::from(u8::MAX) {
                    return None;
                }
                delta.sources.push((a as u8, b, c, d, e));
            }
            KIND_PROVIDER => {
                if a as usize != provider_rows {
                    return None;
                }
                let slot = delta.providers.get_mut(a as usize)?;
                *slot = [b, c, d, e];
                provider_rows += 1;
            }
            KIND_REF => {
                if b as usize >= n_providers || c == 0 || c > 7 || d != 0 || e != 0 {
                    return None;
                }
                delta.references.insert((a, b as u8), c as u8);
            }
            KIND_SKETCH => {
                if d != 0 || e != 0 {
                    return None;
                }
                let sketch = delta.sketches.get_mut(a as usize)?;
                sketch.insert_hash(u64::from(b) | (u64::from(c) << 32));
            }
            _ => return None,
        }
    }
    if provider_rows != n_providers || delta.sources.is_empty() {
        return None;
    }
    Some(delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketch::SKETCH_SEED;

    fn sample_delta() -> DayDelta {
        let mut delta = DayDelta {
            day: 7,
            sources: vec![(0, 100, 12, 100, 1), (1, 50, 3, 50, 0), (2, 30, 0, 30, 0)],
            providers: vec![[0u32; 4]; 9],
            references: BTreeMap::new(),
            sketches: vec![KmvSketch::default(); 9],
        };
        delta.providers[2] = [12, 4, 8, 2];
        delta.references.insert((40, 2), 3);
        delta.references.insert((88, 2), 4);
        for item in 0..20u64 {
            delta.sketches[2].insert(SKETCH_SEED, item);
        }
        delta
    }

    #[test]
    fn roundtrip_is_exact() {
        let delta = sample_delta();
        let table = encode_delta(&delta);
        assert_eq!(decode_delta(&table), Some(delta.clone()));
        // Re-encoding the decoded delta reproduces identical bytes.
        let again = encode_delta(&decode_delta(&table).unwrap());
        assert_eq!(table.to_bytes(), again.to_bytes());
    }

    #[test]
    fn wrong_schema_and_bad_rows_decode_to_none() {
        let mut b = TableBuilder::new(Schema::new(&["x", "y"]));
        b.push_row(&[1, 2]);
        assert_eq!(decode_delta(&b.finish()), None);

        // Unknown row kind.
        let mut b = TableBuilder::new(schema());
        b.push_row(&[KIND_HEADER, CHECKPOINT_VERSION, 0, 0, 64, 2]);
        b.push_row(&[99, 0, 0, 0, 0, 0]);
        assert_eq!(decode_delta(&b.finish()), None);

        // Row-count mismatch (truncation that still parses).
        let mut b = TableBuilder::new(schema());
        b.push_row(&[KIND_HEADER, CHECKPOINT_VERSION, 0, 0, 64, 5]);
        assert_eq!(decode_delta(&b.finish()), None);
    }
}
