//! The incremental analysis engine.
//!
//! `StreamEngine` hooks the day-commit path ([`dps_measure::DayObserver`])
//! and maintains DPS-use, growth, and flux state one day-delta at a
//! time, never rescanning the archive. Every live day flows through
//! *exactly* the same `delta → apply_delta` path a resumed day replays
//! from its persisted checkpoint page, which is what makes crash/resume
//! byte-identical to an uninterrupted run.
//!
//! Classifying each day against the *growing* dictionary is exact:
//! interning is append-only, so a day-`d` row can never contain a
//! dictionary id assigned after day `d` — the compiled reference set at
//! day `d` classifies day-`d` rows identically to the final dictionary.

// dps: allow-file(unordered-collection, reason = "finalize materialises dps-core's public Timelines type, whose map field is a HashMap; all engine-internal state is ordered BTree maps")

use crate::page::{decode_delta, encode_delta, DayDelta};
use crate::sketch::{flag_onsets, AttackFlag, KmvSketch, DEFAULT_K, SKETCH_SEED};
use dps_columnar::{StringDict, Table};
use dps_core::util::DayBits;
use dps_core::{
    CompiledRefs, ProviderRefs, RefKind, ScanOutput, SeriesSet, Timelines, DEFAULT_MIN_COVERAGE,
};
use dps_measure::observation::Row;
use dps_measure::{DayObserver, DayQuality, Source, SourcePage};
use std::collections::{BTreeMap, HashMap};

/// Incremental analysis state over the day-delta stream.
#[derive(Debug, Clone)]
pub struct StreamEngine {
    refs: Vec<ProviderRefs>,
    sketch_k: usize,
    /// Observed days, ascending (deltas must arrive in day order).
    days: Vec<u32>,
    /// `(day, source) → rows` (zone size).
    zone_rows: BTreeMap<(u32, u8), u32>,
    /// `(day, source) → rows referencing any provider`.
    source_any: BTreeMap<(u32, u8), u32>,
    /// `(day, source) → (attempted, failed)` — the only quality inputs
    /// coverage masking depends on.
    coverage: BTreeMap<(u32, u8), (u32, u32)>,
    /// `(day, provider) → [any, asn, cname, ns]` gTLD-summed counts.
    providers: BTreeMap<(u32, u8), [u32; 4]>,
    /// `(entry, provider) → day → OR'd reference-kind bits`.
    references: BTreeMap<(u32, u8), BTreeMap<u32, u8>>,
    /// `(provider, day) → distinct-touch sketch`.
    sketches: BTreeMap<(u8, u32), KmvSketch>,
}

impl StreamEngine {
    /// An engine over the paper's Table 2 provider references.
    pub fn new() -> Self {
        Self::with_refs(ProviderRefs::paper_table2(), DEFAULT_K)
    }

    /// An engine over custom references and sketch budget.
    pub fn with_refs(refs: Vec<ProviderRefs>, sketch_k: usize) -> Self {
        Self {
            refs,
            sketch_k: sketch_k.max(1),
            days: Vec::new(),
            zone_rows: BTreeMap::new(),
            source_any: BTreeMap::new(),
            coverage: BTreeMap::new(),
            providers: BTreeMap::new(),
            references: BTreeMap::new(),
            sketches: BTreeMap::new(),
        }
    }

    /// Number of providers tracked.
    pub fn n_providers(&self) -> usize {
        self.refs.len()
    }

    /// Provider display names, Table 2 order.
    pub fn provider_names(&self) -> Vec<String> {
        self.refs.iter().map(|r| r.name.clone()).collect()
    }

    /// Days observed so far, ascending.
    pub fn days(&self) -> &[u32] {
        &self.days
    }

    /// Classifies one committed day's pages into its delta. Pure: does
    /// not mutate the engine (the caller applies the delta separately,
    /// through the same path resume uses).
    pub fn delta_from_pages(&self, day: u32, pages: &[SourcePage], dict: &StringDict) -> DayDelta {
        let compiled = CompiledRefs::compile(&self.refs, dict);
        let n = self.refs.len();
        let mut delta = DayDelta {
            day,
            sources: Vec::new(),
            providers: vec![[0u32; 4]; n],
            references: BTreeMap::new(),
            sketches: vec![KmvSketch::new(self.sketch_k); n],
        };
        for page in pages {
            let table = &page.table;
            let cols: Vec<&[u32]> = (0..table.schema().width())
                .map(|c| table.column(c))
                .collect();
            let gtld = matches!(page.source, Source::Com | Source::Net | Source::Org);
            let mut source_any = 0u32;
            for i in 0..table.rows() {
                let (_, _, row) = Row::unpack(&cols, i);
                let found = compiled.classify(&row);
                if found.is_empty() {
                    continue;
                }
                source_any += 1;
                if !gtld {
                    continue;
                }
                for &(p, kinds) in &found {
                    let counts = &mut delta.providers[p as usize];
                    counts[0] += 1;
                    counts[1] += u32::from(kinds.contains(RefKind::ASN));
                    counts[2] += u32::from(kinds.contains(RefKind::CNAME));
                    counts[3] += u32::from(kinds.contains(RefKind::NS));
                    *delta.references.entry((row.entry, p)).or_insert(0) |= kind_bits(kinds);
                    delta.sketches[p as usize].insert(SKETCH_SEED, u64::from(row.entry));
                }
            }
            delta.sources.push((
                page.source.index() as u8,
                table.rows() as u32,
                source_any,
                page.quality.attempted,
                page.quality.failed,
            ));
        }
        delta
    }

    /// Applies one day delta — the single state-mutation path shared by
    /// live commits and checkpoint replay. Deltas must arrive in
    /// strictly ascending day order.
    pub fn apply_delta(&mut self, delta: &DayDelta) -> std::io::Result<()> {
        if self.days.last().is_some_and(|&d| d >= delta.day) {
            return Err(std::io::Error::other(
                "analysis checkpoints must replay in ascending day order",
            ));
        }
        if delta.providers.len() != self.refs.len() {
            return Err(std::io::Error::other(
                "analysis checkpoint provider count does not match this build",
            ));
        }
        self.days.push(delta.day);
        for &(source, rows, any, attempted, failed) in &delta.sources {
            self.zone_rows.insert((delta.day, source), rows);
            self.source_any.insert((delta.day, source), any);
            self.coverage
                .insert((delta.day, source), (attempted, failed));
        }
        for (p, counts) in delta.providers.iter().enumerate() {
            self.providers.insert((delta.day, p as u8), *counts);
        }
        for (&(entry, p), &bits) in &delta.references {
            self.references
                .entry((entry, p))
                .or_default()
                .insert(delta.day, bits);
        }
        for (p, sketch) in delta.sketches.iter().enumerate() {
            self.sketches.insert((p as u8, delta.day), sketch.clone());
        }
        Ok(())
    }

    /// gTLD day *values* whose coverage fell below the default masking
    /// threshold — bit-for-bit the days `QualityMask::from_store` +
    /// `masked_gtld_days` would report, because coverage depends only on
    /// the `(attempted, failed)` pair the delta carries.
    pub fn masked_gtld_days(&self) -> Vec<u32> {
        let mut out: Vec<u32> = Vec::new();
        for (&(day, source), &(attempted, failed)) in &self.coverage {
            if source > 2 {
                continue;
            }
            let Some(src) = Source::from_index(u32::from(source)) else {
                continue;
            };
            let q = DayQuality::perfect(day, src, attempted, failed);
            if q.coverage() < DEFAULT_MIN_COVERAGE && !out.contains(&day) {
                out.push(day);
            }
        }
        out.sort_unstable();
        out
    }

    /// Materialises the accumulated state as the exact [`ScanOutput`]
    /// the full-rescan `dps-core` scanner would produce over the same
    /// archive.
    pub fn finalize(&self) -> ScanOutput {
        let n_days = self.days.len();
        let n = self.refs.len();
        let day_pos: BTreeMap<u32, usize> =
            self.days.iter().enumerate().map(|(i, &d)| (d, i)).collect();
        let zeros = || vec![0u32; n_days];
        let mut series = SeriesSet {
            days: self.days.clone(),
            zone_sizes: (0..5).map(|_| zeros()).collect(),
            provider_any: (0..n).map(|_| zeros()).collect(),
            provider_asn: (0..n).map(|_| zeros()).collect(),
            provider_cname: (0..n).map(|_| zeros()).collect(),
            provider_ns: (0..n).map(|_| zeros()).collect(),
            tld_any: (0..3).map(|_| zeros()).collect(),
            source_any: (0..5).map(|_| zeros()).collect(),
        };
        for (&(day, source), &rows) in &self.zone_rows {
            if let (Some(&di), Some(dst)) = (
                day_pos.get(&day),
                series.zone_sizes.get_mut(usize::from(source)),
            ) {
                dst[di] = rows;
            }
        }
        for (&(day, source), &any) in &self.source_any {
            let Some(&di) = day_pos.get(&day) else {
                continue;
            };
            if let Some(dst) = series.source_any.get_mut(usize::from(source)) {
                dst[di] = any;
            }
            if let Some(dst) = series.tld_any.get_mut(usize::from(source)) {
                dst[di] = any;
            }
        }
        for (&(day, p), counts) in &self.providers {
            let (Some(&di), p) = (day_pos.get(&day), usize::from(p)) else {
                continue;
            };
            series.provider_any[p][di] = counts[0];
            series.provider_asn[p][di] = counts[1];
            series.provider_cname[p][di] = counts[2];
            series.provider_ns[p][di] = counts[3];
        }
        let mut map = HashMap::new();
        for (&(entry, p), days) in &self.references {
            let mut any = DayBits::new(n_days);
            let mut asn = DayBits::new(n_days);
            let mut cname = DayBits::new(n_days);
            let mut ns = DayBits::new(n_days);
            for (&day, &bits) in days {
                let Some(&di) = day_pos.get(&day) else {
                    continue;
                };
                any.set(di);
                if bits & 1 != 0 {
                    asn.set(di);
                }
                if bits & 2 != 0 {
                    cname.set(di);
                }
                if bits & 4 != 0 {
                    ns.set(di);
                }
            }
            map.insert(
                (entry, p),
                dps_core::scan::Timeline {
                    any,
                    asn,
                    cname,
                    ns,
                },
            );
        }
        ScanOutput {
            series,
            timelines: Timelines {
                days: self.days.clone(),
                map,
            },
        }
    }

    /// Per-provider `(day, distinct-estimate)` series, ascending.
    pub fn distinct_series(&self, provider: u8) -> Vec<(u32, u64)> {
        self.sketches
            .range((provider, 0)..=(provider, u32::MAX))
            .map(|(&(_, day), sketch)| (day, sketch.estimate()))
            .collect()
    }

    /// Attack-onset flags across all providers, ordered by (provider,
    /// day).
    pub fn attack_flags(&self) -> Vec<AttackFlag> {
        let mut flags = Vec::new();
        for p in 0..self.refs.len() as u8 {
            flags.extend(flag_onsets(p, &self.distinct_series(p)));
        }
        flags
    }
}

impl Default for StreamEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl DayObserver for StreamEngine {
    fn on_day(
        &mut self,
        day: u32,
        pages: &[SourcePage],
        dict: &StringDict,
    ) -> std::io::Result<(Table, Vec<(&'static str, u64)>)> {
        let delta = self.delta_from_pages(day, pages, dict);
        let table = encode_delta(&delta);
        let counters = vec![
            ("stream.checkpoint.bytes", table.to_bytes().len() as u64),
            ("stream.refs", delta.references.len() as u64),
            (
                "stream.rows",
                delta.sources.iter().map(|&(_, r, ..)| u64::from(r)).sum(),
            ),
            (
                "stream.sketch.hashes",
                delta.sketches.iter().map(|s| s.len() as u64).sum(),
            ),
        ];
        self.apply_delta(&delta)?;
        Ok((table, counters))
    }

    fn on_resume(&mut self, day: u32, table: &Table) -> std::io::Result<()> {
        let delta = decode_delta(table).ok_or_else(|| {
            std::io::Error::other("archive holds an undecodable analysis checkpoint page")
        })?;
        if delta.day != day {
            return Err(std::io::Error::other(
                "analysis checkpoint day does not match its catalog entry",
            ));
        }
        self.apply_delta(&delta)
    }
}

fn kind_bits(kinds: RefKind) -> u8 {
    u8::from(kinds.contains(RefKind::ASN))
        | (u8::from(kinds.contains(RefKind::CNAME)) << 1)
        | (u8::from(kinds.contains(RefKind::NS)) << 2)
}
