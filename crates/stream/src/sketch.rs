//! Mergeable distinct-count sketches and attack-onset flagging.
//!
//! The sketch is a bottom-k (KMV) distinct counter: it keeps the `k`
//! smallest values of a fixed-seed 64-bit hash over the inserted items.
//! Keeping the k *smallest* elements of a union is independent of how
//! the union is bracketed or ordered, which makes [`KmvSketch::merge`]
//! associative, commutative, and idempotent — the algebra that lets
//! per-shard sketches from any number of cluster workers collapse into
//! the same bytes as a single-process sweep (pinned by proptests).
//!
//! Estimation is pure integer math (`u128` widening, truncating
//! division), so the same sketch always yields the same estimate on
//! every platform.

use std::collections::BTreeSet;

/// Default number of retained hashes per sketch. Small enough that a
/// per-provider per-day sketch row fits comfortably in a checkpoint
/// page, large enough for ~10% relative error at scale.
pub const DEFAULT_K: usize = 64;

/// Fixed hashing seed: every sketch in the system hashes with the same
/// seed so sketches built anywhere are mergeable.
pub const SKETCH_SEED: u64 = 0xD9D5_2016_0D05_0001;

const SPLITMIX_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64 finalizer: a well-mixed 64-bit permutation.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(SPLITMIX_GAMMA);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The sketch hash of `item` under `seed` (fixed across the system).
pub fn sketch_hash(seed: u64, item: u64) -> u64 {
    splitmix64(seed ^ splitmix64(item))
}

/// A bottom-k (KMV) distinct-count sketch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KmvSketch {
    k: usize,
    hashes: BTreeSet<u64>,
}

impl KmvSketch {
    /// An empty sketch retaining the `k` smallest hashes.
    pub fn new(k: usize) -> Self {
        Self {
            k: k.max(1),
            hashes: BTreeSet::new(),
        }
    }

    /// Retained-hash budget.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of hashes currently retained (≤ `k`).
    pub fn len(&self) -> usize {
        self.hashes.len()
    }

    /// True when nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.hashes.is_empty()
    }

    /// Inserts an already-hashed value, evicting the largest retained
    /// hash if the budget overflows.
    pub fn insert_hash(&mut self, hash: u64) {
        self.hashes.insert(hash);
        while self.hashes.len() > self.k {
            if let Some(&max) = self.hashes.iter().next_back() {
                self.hashes.remove(&max);
            }
        }
    }

    /// Inserts an item under the system-wide fixed seed.
    pub fn insert(&mut self, seed: u64, item: u64) {
        self.insert_hash(sketch_hash(seed, item));
    }

    /// Merges another sketch in: union, keep the k smallest. With equal
    /// budgets this is associative, commutative, and idempotent; mixed
    /// budgets collapse to the smaller one (min is associative too).
    pub fn merge(&mut self, other: &KmvSketch) {
        self.k = self.k.min(other.k);
        for &h in &other.hashes {
            self.hashes.insert(h);
        }
        while self.hashes.len() > self.k {
            if let Some(&max) = self.hashes.iter().next_back() {
                self.hashes.remove(&max);
            }
        }
    }

    /// The retained hashes, ascending (the persisted representation).
    pub fn hashes(&self) -> impl Iterator<Item = u64> + '_ {
        self.hashes.iter().copied()
    }

    /// Deterministic distinct-count estimate. Exact below `k` inserts;
    /// above, the classic KMV estimator `(k − 1) · 2^64 / h_(k)` in
    /// truncating `u128` arithmetic.
    pub fn estimate(&self) -> u64 {
        if self.hashes.len() < self.k {
            return self.hashes.len() as u64;
        }
        let Some(&kth) = self.hashes.iter().next_back() else {
            return 0;
        };
        let numer = (self.k as u128 - 1) << 64;
        let denom = u128::from(kth) + 1;
        (numer / denom).min(u128::from(u64::MAX)) as u64
    }
}

impl Default for KmvSketch {
    fn default() -> Self {
        Self::new(DEFAULT_K)
    }
}

/// One flagged attack-onset day: a day whose distinct-touch estimate
/// for a provider spikes far above its trailing baseline — the
/// signature of a mass on-demand DPS activation (many domains diverting
/// to one provider at once).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackFlag {
    /// Provider index (paper Table 2 order).
    pub provider: u8,
    /// Flagged day.
    pub day: u32,
    /// Distinct estimate on the flagged day.
    pub estimate: u64,
    /// Trailing-window median baseline it was compared against.
    pub baseline: u64,
}

/// Trailing window length (days) for the onset baseline.
pub const ONSET_WINDOW: usize = 14;
/// Minimum distinct estimate before a day can be flagged at all.
pub const ONSET_MIN_ESTIMATE: u64 = 4;
/// Spike threshold as a ratio: flag when `estimate ≥ baseline · 5/2`.
pub const ONSET_NUM: u64 = 5;
/// Denominator of the spike-threshold ratio.
pub const ONSET_DEN: u64 = 2;

/// Flags onset days in one provider's `(day, estimate)` series
/// (ascending by day). A day is flagged when at least three prior days
/// exist, the estimate clears [`ONSET_MIN_ESTIMATE`], and it exceeds
/// the median of the up-to-[`ONSET_WINDOW`] previous estimates by the
/// [`ONSET_NUM`]/[`ONSET_DEN`] ratio. Pure integer math throughout.
pub fn flag_onsets(provider: u8, series: &[(u32, u64)]) -> Vec<AttackFlag> {
    let mut flags = Vec::new();
    for (i, &(day, estimate)) in series.iter().enumerate() {
        if i < 3 || estimate < ONSET_MIN_ESTIMATE {
            continue;
        }
        let start = i.saturating_sub(ONSET_WINDOW);
        let mut window: Vec<u64> = series
            .get(start..i)
            .unwrap_or(&[])
            .iter()
            .map(|&(_, e)| e)
            .collect();
        window.sort_unstable();
        let baseline = window.get(window.len() / 2).copied().unwrap_or(0);
        if estimate.saturating_mul(ONSET_DEN) >= baseline.max(1).saturating_mul(ONSET_NUM) {
            flags.push(AttackFlag {
                provider,
                day,
                estimate,
                baseline,
            });
        }
    }
    flags
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_k() {
        let mut s = KmvSketch::new(16);
        for i in 0..10u64 {
            s.insert(SKETCH_SEED, i);
        }
        assert_eq!(s.estimate(), 10);
        // Re-insert changes nothing.
        for i in 0..10u64 {
            s.insert(SKETCH_SEED, i);
        }
        assert_eq!(s.estimate(), 10);
    }

    #[test]
    fn estimate_is_in_the_ballpark_above_k() {
        let mut s = KmvSketch::new(64);
        for i in 0..10_000u64 {
            s.insert(SKETCH_SEED, i);
        }
        let est = s.estimate();
        assert!(
            (5_000..20_000).contains(&est),
            "estimate {est} far from 10000"
        );
    }

    #[test]
    fn merge_equals_bulk_insert() {
        let mut a = KmvSketch::new(32);
        let mut b = KmvSketch::new(32);
        let mut all = KmvSketch::new(32);
        for i in 0..500u64 {
            if i % 2 == 0 {
                a.insert(SKETCH_SEED, i);
            } else {
                b.insert(SKETCH_SEED, i);
            }
            all.insert(SKETCH_SEED, i);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn onset_flags_spike_over_flat_baseline() {
        let mut series: Vec<(u32, u64)> = (0..10).map(|d| (d, 10)).collect();
        series.push((10, 100));
        series.push((11, 10));
        let flags = flag_onsets(3, &series);
        assert_eq!(flags.len(), 1);
        assert_eq!(flags[0].day, 10);
        assert_eq!(flags[0].provider, 3);
        assert_eq!(flags[0].baseline, 10);
        // A flat series never flags.
        assert!(flag_onsets(0, &series[..10]).is_empty());
    }
}
