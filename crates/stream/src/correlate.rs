//! Correlating flagged attack-onset days with ground truth.
//!
//! The simulated ecosystem knows exactly when mass on-demand DPS
//! activations happen: basket-wide diversion events in the scenario
//! schedule (a hoster/e-commerce basket flipping hundreds of domains to
//! one provider at once — the signature the sketches are built to
//! catch). This module rebuilds the scenario from its parameters and
//! scores the engine's flags against those labelled activation days.

use crate::sketch::AttackFlag;
use dps_ecosystem::{Action, Scenario, ScenarioParams};
use dps_netsim::Day;
use std::collections::BTreeSet;

/// Default matching tolerance (days): a flag within ± this many days of
/// a labelled activation counts as a hit.
pub const DEFAULT_TOLERANCE: u32 = 2;

/// Flags scored against ground-truth activations.
#[derive(Debug, Clone)]
pub struct Correlation {
    /// Labelled `(provider, day)` mass-activation events.
    pub activations: Vec<(u8, u32)>,
    /// Flags that matched an activation within the tolerance.
    pub matched: Vec<AttackFlag>,
    /// Flags with no nearby activation (false alarms).
    pub unmatched_flags: Vec<AttackFlag>,
    /// Activations no flag came near (misses).
    pub missed: Vec<(u8, u32)>,
    /// The tolerance used (days).
    pub tolerance: u32,
}

/// Extracts the labelled mass on-demand activation days per provider
/// from the scenario schedule: every basket-wide diversion that
/// actually diverts traffic to a provider.
pub fn activation_days(params: ScenarioParams) -> Vec<(u8, u32)> {
    let scenario = Scenario::imc2016(params);
    let mut schedule = scenario.schedule.clone();
    let mut out: BTreeSet<(u8, u32)> = BTreeSet::new();
    for event in schedule.take_through(Day(u32::MAX)) {
        if let Action::BasketDiversion(_, diversion) = &event.action {
            if diversion.diverts_traffic() {
                if let Some(provider) = diversion.provider() {
                    out.insert((provider.0, event.day.0));
                }
            }
        }
    }
    out.into_iter().collect()
}

/// Scores `flags` against `activations` within ± `tolerance` days.
pub fn correlate(flags: &[AttackFlag], activations: &[(u8, u32)], tolerance: u32) -> Correlation {
    let hit = |flag: &AttackFlag| {
        activations
            .iter()
            .any(|&(p, d)| p == flag.provider && d.abs_diff(flag.day) <= tolerance)
    };
    let (matched, unmatched_flags): (Vec<AttackFlag>, Vec<AttackFlag>) =
        flags.iter().copied().partition(hit);
    let missed: Vec<(u8, u32)> = activations
        .iter()
        .filter(|&&(p, d)| {
            !flags
                .iter()
                .any(|f| f.provider == p && f.day.abs_diff(d) <= tolerance)
        })
        .copied()
        .collect();
    Correlation {
        activations: activations.to_vec(),
        matched,
        unmatched_flags,
        missed,
        tolerance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correlate_partitions_flags_and_activations() {
        let flags = vec![
            AttackFlag {
                provider: 2,
                day: 10,
                estimate: 100,
                baseline: 10,
            },
            AttackFlag {
                provider: 5,
                day: 40,
                estimate: 50,
                baseline: 5,
            },
        ];
        let activations = vec![(2u8, 11u32), (7, 20)];
        let c = correlate(&flags, &activations, 2);
        assert_eq!(c.matched.len(), 1);
        assert_eq!(c.matched[0].provider, 2);
        assert_eq!(c.unmatched_flags.len(), 1);
        assert_eq!(c.missed, vec![(7, 20)]);
    }

    #[test]
    fn tiny_scenario_has_labelled_activations() {
        let days = activation_days(ScenarioParams::tiny(2016));
        // Basket flips exist in every seed; all must name a provider day.
        assert!(!days.is_empty());
        assert!(days.iter().all(|&(p, _)| p < 9));
    }
}
