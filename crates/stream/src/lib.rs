//! # dps-stream — incremental analysis over the day-commit stream
//!
//! The paper (and, until now, this repo) derives DPS adoption, growth,
//! and security flux from full rescans of the measurement archive. This
//! crate turns "measure, then analyse" into one streaming pipeline:
//!
//! * [`engine::StreamEngine`] implements `dps_measure::DayObserver` and
//!   consumes each day's delta *at commit time* — from
//!   `Study::run_archived` and the cluster manager alike — maintaining
//!   DPS-use, growth, and flux state without ever rescanning.
//! * [`page`] persists each day's delta as an `ANALYSIS_SOURCE`
//!   checkpoint page inside the same durable commit as the data, so a
//!   crashed-and-resumed sweep replays `decode → apply` to byte-identical
//!   analysis state (the decode is checked and total).
//! * [`sketch`] adds mergeable bottom-k distinct sketches per
//!   (provider, day) — associative, commutative, idempotent merges under
//!   a fixed hash seed, so sketches are worker-count-independent — and
//!   flags attack-onset days where the distinct-touch estimate spikes
//!   over its trailing baseline.
//! * [`correlate`] scores those flags against the scenario's labelled
//!   mass on-demand activation events.
//! * [`report::analysis_json`] renders analysis state canonically; the
//!   equivalence guarantee ("incremental == full rescan") is enforced as
//!   byte equality of this rendering (`dpscope stream check`).

pub mod correlate;
pub mod engine;
pub mod page;
pub mod report;
pub mod sketch;

pub use correlate::{activation_days, correlate, Correlation, DEFAULT_TOLERANCE};
pub use engine::StreamEngine;
pub use page::{decode_delta, encode_delta, DayDelta, CHECKPOINT_VERSION};
pub use report::{analysis_json, FLUX_WINDOW};
pub use sketch::{flag_onsets, sketch_hash, AttackFlag, KmvSketch, DEFAULT_K, SKETCH_SEED};

#[cfg(test)]
mod tests {
    use super::*;
    use dps_core::{CompiledRefs, ProviderRefs, QualityMask, Scanner, DEFAULT_MIN_COVERAGE};
    use dps_ecosystem::{ScenarioParams, World};
    use dps_measure::{Study, StudyConfig};

    /// The tentpole invariant, in-process: run a study with the engine
    /// observing every commit, then full-rescan the same archive with
    /// dps-core — both renderings must be byte-identical.
    #[test]
    fn incremental_analysis_matches_full_rescan() {
        let path =
            std::env::temp_dir().join(format!("dps-stream-equiv-{}.dps", std::process::id()));
        std::fs::remove_file(&path).ok();
        let config = StudyConfig {
            days: 8,
            cc_start_day: 5,
            stride: 1,
        };
        let mut world = World::imc2016(ScenarioParams::tiny(13));
        let mut engine = StreamEngine::new();
        let store = Study::new(config)
            .run_archived_observed(&mut world, &path, Some(&mut engine))
            .unwrap();

        let incremental = analysis_json(
            &engine.finalize(),
            &engine.provider_names(),
            &engine.masked_gtld_days(),
        );

        let refs = CompiledRefs::compile(&ProviderRefs::paper_table2(), &store.dict);
        let archive = dps_store::Archive::open(&path).unwrap();
        let out = Scanner::new(&refs).run_archive(&archive).unwrap();
        let mask = QualityMask::from_store(&store, DEFAULT_MIN_COVERAGE);
        let rescan = analysis_json(&out, &refs.names, &mask.masked_gtld_days());
        std::fs::remove_file(&path).ok();

        assert_eq!(incremental, rescan, "incremental must equal full rescan");
        assert_eq!(engine.days(), out.series.days.as_slice());
    }

    /// Resuming from checkpoint pages alone rebuilds the exact engine
    /// state: a second run over the finished archive measures nothing
    /// and must replay to an identical rendering.
    #[test]
    fn resume_replays_to_identical_state() {
        let path =
            std::env::temp_dir().join(format!("dps-stream-resume-{}.dps", std::process::id()));
        std::fs::remove_file(&path).ok();
        let config = StudyConfig {
            days: 6,
            cc_start_day: 4,
            stride: 1,
        };
        let mut world = World::imc2016(ScenarioParams::tiny(21));
        let mut engine = StreamEngine::new();
        Study::new(config)
            .run_archived_observed(&mut world, &path, Some(&mut engine))
            .unwrap();
        let live = analysis_json(
            &engine.finalize(),
            &engine.provider_names(),
            &engine.masked_gtld_days(),
        );

        let mut world2 = World::imc2016(ScenarioParams::tiny(21));
        let mut replayed = StreamEngine::new();
        Study::new(config)
            .run_archived_observed(&mut world2, &path, Some(&mut replayed))
            .unwrap();
        let resumed = analysis_json(
            &replayed.finalize(),
            &replayed.provider_names(),
            &replayed.masked_gtld_days(),
        );
        std::fs::remove_file(&path).ok();
        assert_eq!(live, resumed, "checkpoint replay must be byte-identical");
    }

    /// A basket-wide on-demand activation produces a flagged onset that
    /// correlates with the scenario's ground-truth labels.
    #[test]
    fn sketches_flag_mass_activations() {
        let path =
            std::env::temp_dir().join(format!("dps-stream-flags-{}.dps", std::process::id()));
        std::fs::remove_file(&path).ok();
        let params = ScenarioParams {
            seed: 2016,
            scale: 0.02,
            gtld_days: 60,
            cc_start_day: 60,
        };
        let config = StudyConfig {
            days: 60,
            cc_start_day: 60,
            stride: 1,
        };
        let mut world = World::imc2016(params);
        let mut engine = StreamEngine::new();
        Study::new(config)
            .run_archived_observed(&mut world, &path, Some(&mut engine))
            .unwrap();
        std::fs::remove_file(&path).ok();

        let activations = activation_days(params);
        let flags = engine.attack_flags();
        let c = correlate(&flags, &activations, DEFAULT_TOLERANCE);
        // The scenario schedules basket flips; at this scale at least one
        // must both exist and be caught by the sketches.
        assert!(!c.activations.is_empty(), "ground truth has activations");
        assert!(
            !c.matched.is_empty(),
            "no flagged onset matched an activation; flags={flags:?} truth={activations:?}"
        );
    }
}
