//! Property-based tests for the streaming-analysis primitives: sketch
//! merges must form a commutative, associative, idempotent monoid under
//! any insertion split (that is what makes them worker-count
//! independent), and the checkpoint codec must round-trip exactly while
//! never panicking on truncated or bit-flipped pages.

use dps_columnar::Table;
use dps_stream::{decode_delta, encode_delta, DayDelta, KmvSketch, SKETCH_SEED};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn sketch_of(k: usize, items: &[u64]) -> KmvSketch {
    let mut s = KmvSketch::new(k);
    for &item in items {
        s.insert(SKETCH_SEED, item);
    }
    s
}

fn arb_items() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(any::<u64>(), 0..64)
}

fn arb_delta() -> impl Strategy<Value = DayDelta> {
    let sources = proptest::collection::vec(
        (
            any::<u8>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
        ),
        1..6,
    );
    let refs = proptest::collection::vec((any::<u32>(), any::<u8>(), 1u8..=7), 0..32);
    (
        any::<u32>(),
        sources,
        1usize..10,
        1usize..12,
        refs,
        proptest::collection::vec(arb_items(), 9..10),
    )
        .prop_map(|(day, sources, n, k, refs, item_sets)| DayDelta {
            day,
            sources,
            providers: vec![[1, 2, 3, 4]; n],
            references: refs
                .into_iter()
                .map(|(entry, p, bits)| ((entry, p % n as u8), bits))
                .collect::<BTreeMap<_, _>>(),
            sketches: item_sets
                .iter()
                .take(n)
                .map(|items| sketch_of(k, items))
                .collect(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn merge_is_commutative(k in 1usize..16, xs in arb_items(), ys in arb_items()) {
        let (a, b) = (sketch_of(k, &xs), sketch_of(k, &ys));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn merge_is_associative(
        k in 1usize..16,
        xs in arb_items(),
        ys in arb_items(),
        zs in arb_items(),
    ) {
        let (a, b, c) = (sketch_of(k, &xs), sketch_of(k, &ys), sketch_of(k, &zs));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn reinsert_and_self_merge_are_idempotent(k in 1usize..16, xs in arb_items()) {
        let a = sketch_of(k, &xs);
        // Re-inserting every item again changes nothing…
        let mut twice = a.clone();
        for &item in &xs {
            twice.insert(SKETCH_SEED, item);
        }
        prop_assert_eq!(&twice, &a);
        // …and neither does merging a sketch with itself.
        let mut merged = a.clone();
        merged.merge(&a);
        prop_assert_eq!(merged, a);
    }

    #[test]
    fn any_insertion_split_merges_to_the_bulk_sketch(
        k in 1usize..16,
        items in arb_items(),
        cut in any::<u32>(),
    ) {
        // Worker-count independence: however the day's rows are sharded,
        // merging the shard sketches equals one sketch over all rows.
        let at = cut as usize % (items.len() + 1);
        let (left, right) = items.split_at(at);
        let mut merged = sketch_of(k, left);
        merged.merge(&sketch_of(k, right));
        prop_assert_eq!(merged, sketch_of(k, &items));
    }

    #[test]
    fn checkpoint_roundtrip_is_exact(delta in arb_delta()) {
        let table = encode_delta(&delta);
        let decoded = decode_delta(&table);
        prop_assert_eq!(decoded.as_ref(), Some(&delta));
        // And byte-stable through a decode → re-encode cycle.
        let bytes = table.to_bytes();
        let reread = Table::from_bytes(&bytes).expect("own bytes parse");
        let again = encode_delta(&decode_delta(&reread).expect("own bytes decode"));
        prop_assert_eq!(again.to_bytes(), bytes);
    }

    #[test]
    fn decode_never_panics_on_truncation(delta in arb_delta(), cut in any::<u32>()) {
        let bytes = encode_delta(&delta).to_bytes();
        let keep = cut as usize % bytes.len().max(1);
        // Any Option result is fine; panicking is not. A truncated byte
        // stream that still parses as a table must fail the row-count or
        // structure checks rather than round-trip silently.
        if let Ok(table) = Table::from_bytes(bytes.get(..keep).unwrap_or(&[])) {
            if let Some(decoded) = decode_delta(&table) {
                prop_assert_eq!(decoded, delta.clone());
            }
        }
    }

    #[test]
    fn decode_never_panics_on_bit_flips(
        delta in arb_delta(),
        flips in proptest::collection::vec(any::<(u32, u8)>(), 1..8),
    ) {
        let mut bytes = encode_delta(&delta).to_bytes();
        if !bytes.is_empty() {
            for (at, x) in flips {
                let idx = at as usize % bytes.len();
                bytes[idx] ^= x;
            }
            if let Ok(table) = Table::from_bytes(&bytes) {
                let _ = decode_delta(&table);
            }
        }
    }
}
