//! Property tests pinning the LPM trie to a naive reference implementation
//! and checking prefix algebra.

use dps_netsim::{Asn, LpmTrie, Prefix, Rib};
use proptest::prelude::*;
use std::net::{IpAddr, Ipv4Addr};

fn arb_v4_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(addr, len)| {
        Prefix::new(IpAddr::V4(Ipv4Addr::from(addr)), len).expect("len in range")
    })
}

fn naive_lpm(entries: &[(Prefix, usize)], addr: IpAddr) -> Option<(usize, u8)> {
    entries
        .iter()
        .filter(|(p, _)| p.contains(addr))
        .max_by_key(|(p, _)| p.len())
        .map(|(p, v)| (*v, p.len()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn trie_matches_naive_scan(
        prefixes in proptest::collection::vec(arb_v4_prefix(), 1..40),
        addrs in proptest::collection::vec(any::<u32>(), 1..40),
    ) {
        // Deduplicate: the naive model keeps the *last* value per prefix,
        // matching insert-overwrites semantics.
        let mut trie = LpmTrie::new();
        let mut entries: Vec<(Prefix, usize)> = Vec::new();
        for (i, p) in prefixes.iter().enumerate() {
            trie.insert(p, i);
            entries.retain(|(q, _)| q != p);
            entries.push((*p, i));
        }
        for a in addrs {
            let addr = IpAddr::V4(Ipv4Addr::from(a));
            let got = trie.lookup(Prefix::align(addr), 32).map(|(v, l)| (*v, l));
            let want = naive_lpm(&entries, addr);
            prop_assert_eq!(got, want, "addr {}", addr);
        }
    }

    #[test]
    fn trie_remove_matches_naive(
        prefixes in proptest::collection::vec(arb_v4_prefix(), 1..20),
        remove_mask in any::<u32>(),
        addrs in proptest::collection::vec(any::<u32>(), 1..20),
    ) {
        let mut trie = LpmTrie::new();
        let mut entries: Vec<(Prefix, usize)> = Vec::new();
        for (i, p) in prefixes.iter().enumerate() {
            trie.insert(p, i);
            entries.retain(|(q, _)| q != p);
            entries.push((*p, i));
        }
        for (i, p) in prefixes.iter().enumerate() {
            if remove_mask & (1 << (i % 32)) != 0 {
                trie.remove(p);
                entries.retain(|(q, _)| q != p);
            }
        }
        for a in addrs {
            let addr = IpAddr::V4(Ipv4Addr::from(a));
            let got = trie.lookup(Prefix::align(addr), 32).map(|(v, l)| (*v, l));
            prop_assert_eq!(got, naive_lpm(&entries, addr));
        }
    }

    #[test]
    fn prefix_contains_consistent_with_covers(p in arb_v4_prefix(), q in arb_v4_prefix()) {
        if p.covers(&q) {
            // Every address in q is in p; check q's network address.
            prop_assert!(p.contains(q.network()));
        }
    }

    #[test]
    fn routeviews_roundtrip(prefixes in proptest::collection::vec(arb_v4_prefix(), 0..20)) {
        let mut rib = Rib::new();
        for (i, p) in prefixes.iter().enumerate() {
            rib.announce(*p, Asn(i as u32 % 5 + 1));
            rib.announce(*p, Asn(64500));
        }
        let snap = rib.snapshot();
        let text = snap.to_routeviews_text();
        let reparsed = dps_netsim::Pfx2As::from_routeviews_text(&text).unwrap();
        prop_assert_eq!(reparsed.len(), snap.len());
        for p in &prefixes {
            let addr = p.network();
            prop_assert_eq!(
                reparsed.origins(addr).map(|(o, l)| (o.to_vec(), l)),
                snap.origins(addr).map(|(o, l)| (o.to_vec(), l))
            );
        }
    }
}
