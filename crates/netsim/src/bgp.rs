//! A BGP-like global routing view and Routeviews-style `pfx2as` snapshots.
//!
//! The simulator does not model BGP path propagation — the study only ever
//! consumes the *outcome*: which origin AS(es) announce the most-specific
//! prefix covering an address on a given day. [`Rib`] is that global view;
//! providers and hosters announce/withdraw customer prefixes on it to
//! implement BGP-based traffic diversion (paper §2.2), and [`Pfx2As`] is the
//! immutable daily snapshot the analysis joins against (paper §3.2).

use crate::asn::Asn;
use crate::prefix::Prefix;
use crate::trie::LpmTrie;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::net::IpAddr;

/// Mutable global routing table: prefix → set of origin ASes.
///
/// Multiple origins for one prefix (MOAS) are kept as a set; the paper's
/// methodology "for multi-origin AS adds all the involved AS numbers"
/// (footnote 4), and [`Pfx2As::origins`] preserves that.
#[derive(Debug, Default, Clone)]
pub struct Rib {
    origins: BTreeMap<Prefix, BTreeSet<Asn>>,
}

impl Rib {
    /// An empty RIB.
    pub fn new() -> Self {
        Self::default()
    }

    /// Announces `prefix` with origin `asn`. Idempotent.
    pub fn announce(&mut self, prefix: Prefix, asn: Asn) {
        self.origins.entry(prefix).or_default().insert(asn);
    }

    /// Withdraws `asn`'s announcement of `prefix`. The prefix disappears
    /// from the table when its last origin withdraws.
    pub fn withdraw(&mut self, prefix: Prefix, asn: Asn) {
        if let Some(set) = self.origins.get_mut(&prefix) {
            set.remove(&asn);
            if set.is_empty() {
                self.origins.remove(&prefix);
            }
        }
    }

    /// True if `asn` currently originates `prefix`.
    pub fn is_announced(&self, prefix: &Prefix, asn: Asn) -> bool {
        self.origins.get(prefix).is_some_and(|s| s.contains(&asn))
    }

    /// Number of announced prefixes.
    pub fn len(&self) -> usize {
        self.origins.len()
    }

    /// True if nothing is announced.
    pub fn is_empty(&self) -> bool {
        self.origins.is_empty()
    }

    /// Freezes the current table into an immutable lookup snapshot.
    pub fn snapshot(&self) -> Pfx2As {
        let mut v4 = LpmTrie::new();
        let mut v6 = LpmTrie::new();
        for (prefix, origins) in &self.origins {
            let val: Vec<Asn> = origins.iter().copied().collect();
            if prefix.is_v4() {
                v4.insert(prefix, val);
            } else {
                v6.insert(prefix, val);
            }
        }
        let entries = self
            .origins
            .iter()
            .map(|(p, o)| (*p, o.iter().copied().collect::<Vec<_>>()))
            .collect();
        Pfx2As { v4, v6, entries }
    }
}

/// An immutable prefix-to-origin-AS mapping for one day, equivalent to the
/// CAIDA Routeviews `pfx2as` data set the paper supplements addresses with.
#[derive(Debug, Clone)]
pub struct Pfx2As {
    v4: LpmTrie<Vec<Asn>>,
    v6: LpmTrie<Vec<Asn>>,
    entries: Vec<(Prefix, Vec<Asn>)>,
}

impl Pfx2As {
    /// Origin AS(es) of the most-specific prefix covering `addr`, with the
    /// matched prefix length. `None` if the address is unrouted.
    pub fn origins(&self, addr: IpAddr) -> Option<(&[Asn], u8)> {
        let key = Prefix::align(addr);
        let (table, max) = if addr.is_ipv4() {
            (&self.v4, 32)
        } else {
            (&self.v6, 128)
        };
        table.lookup(key, max).map(|(v, l)| (v.as_slice(), l))
    }

    /// The single origin when there is no MOAS ambiguity.
    pub fn single_origin(&self, addr: IpAddr) -> Option<Asn> {
        match self.origins(addr) {
            Some((asns, _)) if asns.len() == 1 => Some(asns[0]),
            _ => None,
        }
    }

    /// Number of prefixes in the snapshot.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over all `(prefix, origins)` entries.
    pub fn entries(&self) -> impl Iterator<Item = (Prefix, &[Asn])> {
        self.entries.iter().map(|(p, o)| (*p, o.as_slice()))
    }

    /// Serialises in the Routeviews text format: one line per prefix,
    /// `network<TAB>length<TAB>origin[_origin…]` with `_` joining MOAS sets.
    pub fn to_routeviews_text(&self) -> String {
        let mut out = String::new();
        for (prefix, origins) in &self.entries {
            let joined = origins
                .iter()
                .map(|a| a.0.to_string())
                .collect::<Vec<_>>()
                .join("_");
            let _ = writeln!(out, "{}\t{}\t{}", prefix.network(), prefix.len(), joined);
        }
        out
    }

    /// Parses the Routeviews text format produced by
    /// [`to_routeviews_text`](Self::to_routeviews_text).
    pub fn from_routeviews_text(text: &str) -> Result<Self, String> {
        let mut rib = Rib::new();
        for (lineno, line) in text.lines().enumerate() {
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split('\t');
            let (net, len, origins) = (
                parts
                    .next()
                    .ok_or_else(|| format!("line {lineno}: missing network"))?,
                parts
                    .next()
                    .ok_or_else(|| format!("line {lineno}: missing length"))?,
                parts
                    .next()
                    .ok_or_else(|| format!("line {lineno}: missing origins"))?,
            );
            let prefix: Prefix = format!("{net}/{len}")
                .parse()
                .map_err(|e| format!("line {lineno}: {e}"))?;
            for asn in origins.split('_') {
                let asn: u32 = asn.parse().map_err(|_| format!("line {lineno}: bad ASN"))?;
                rib.announce(prefix, Asn(asn));
            }
        }
        Ok(rib.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn ip(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    #[test]
    fn announce_lookup_withdraw_cycle() {
        let mut rib = Rib::new();
        rib.announce(p("198.51.100.0/24"), Asn(19551));
        let snap = rib.snapshot();
        assert_eq!(snap.single_origin(ip("198.51.100.7")), Some(Asn(19551)));

        rib.withdraw(p("198.51.100.0/24"), Asn(19551));
        let snap = rib.snapshot();
        assert_eq!(snap.origins(ip("198.51.100.7")), None);
        assert!(rib.is_empty());
    }

    #[test]
    fn most_specific_prefix_wins() {
        let mut rib = Rib::new();
        rib.announce(p("203.0.0.0/8"), Asn(100)); // hoster's supernet
        rib.announce(p("203.0.113.0/24"), Asn(19551)); // DPS announces the /24
        let snap = rib.snapshot();
        let (origins, len) = snap.origins(ip("203.0.113.9")).unwrap();
        assert_eq!((origins, len), (&[Asn(19551)][..], 24));
        // Outside the /24, the hoster still originates.
        assert_eq!(snap.single_origin(ip("203.0.5.9")), Some(Asn(100)));
    }

    #[test]
    fn moas_keeps_all_origins() {
        let mut rib = Rib::new();
        rib.announce(p("192.0.2.0/24"), Asn(1));
        rib.announce(p("192.0.2.0/24"), Asn(2));
        let snap = rib.snapshot();
        let (origins, _) = snap.origins(ip("192.0.2.1")).unwrap();
        assert_eq!(origins, &[Asn(1), Asn(2)]);
        assert_eq!(snap.single_origin(ip("192.0.2.1")), None);

        // Withdrawing one origin keeps the other.
        rib.withdraw(p("192.0.2.0/24"), Asn(1));
        assert_eq!(rib.snapshot().single_origin(ip("192.0.2.1")), Some(Asn(2)));
    }

    #[test]
    fn routeviews_text_roundtrip() {
        let mut rib = Rib::new();
        rib.announce(p("10.0.0.0/8"), Asn(64500));
        rib.announce(p("192.0.2.0/24"), Asn(1));
        rib.announce(p("192.0.2.0/24"), Asn(2));
        rib.announce(p("2001:db8::/32"), Asn(64501));
        let snap = rib.snapshot();
        let text = snap.to_routeviews_text();
        assert!(text.contains("192.0.2.0\t24\t1_2"), "{text}");
        let reparsed = Pfx2As::from_routeviews_text(&text).unwrap();
        assert_eq!(reparsed.len(), snap.len());
        assert_eq!(
            reparsed.origins(ip("192.0.2.9")).unwrap().0,
            snap.origins(ip("192.0.2.9")).unwrap().0
        );
        assert_eq!(reparsed.single_origin(ip("2001:db8::1")), Some(Asn(64501)));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Pfx2As::from_routeviews_text("not\ta\tline").is_err());
        assert!(Pfx2As::from_routeviews_text("10.0.0.0\t8\tx").is_err());
        assert!(Pfx2As::from_routeviews_text("10.0.0.0\t99\t1").is_err());
    }

    #[test]
    fn snapshot_is_immutable_view() {
        let mut rib = Rib::new();
        rib.announce(p("10.0.0.0/8"), Asn(7));
        let snap = rib.snapshot();
        rib.withdraw(p("10.0.0.0/8"), Asn(7));
        // The earlier snapshot still answers.
        assert_eq!(snap.single_origin(ip("10.1.1.1")), Some(Asn(7)));
    }
}
