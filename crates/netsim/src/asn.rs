//! Autonomous-system numbers and the AS-to-name registry.
//!
//! The paper's reference-discovery procedure "uses AS-to-name data to find a
//! DPS's AS numbers" (footnote 5). [`AsRegistry`] plays that role: it maps
//! AS numbers to organisation names, and supports the reverse search by
//! substring that an analyst would do against, e.g., PeeringDB.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// An autonomous-system number.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct Asn(pub u32);

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// AS-number → organisation-name directory.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AsRegistry {
    names: BTreeMap<Asn, String>,
}

impl AsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or renames) an AS.
    pub fn register(&mut self, asn: Asn, name: impl Into<String>) {
        self.names.insert(asn, name.into());
    }

    /// Organisation name for an AS, if known.
    pub fn name(&self, asn: Asn) -> Option<&str> {
        self.names.get(&asn).map(String::as_str)
    }

    /// All ASNs whose organisation name contains `needle`
    /// (case-insensitive). This is the "find the provider's ASes by name"
    /// step seeding the reference-discovery procedure.
    pub fn search(&self, needle: &str) -> Vec<Asn> {
        let needle = needle.to_ascii_lowercase();
        self.names
            .iter()
            .filter(|(_, name)| name.to_ascii_lowercase().contains(&needle))
            .map(|(&asn, _)| asn)
            .collect()
    }

    /// Number of registered ASes.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no AS is registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all `(asn, name)` pairs in numeric order.
    pub fn iter(&self) -> impl Iterator<Item = (Asn, &str)> {
        self.names.iter().map(|(&a, n)| (a, n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_as_prefix() {
        assert_eq!(Asn(13335).to_string(), "AS13335");
    }

    #[test]
    fn search_is_case_insensitive_substring() {
        let mut reg = AsRegistry::new();
        reg.register(Asn(13335), "CloudFlare, Inc.");
        reg.register(Asn(19551), "Incapsula Inc");
        reg.register(Asn(20940), "Akamai International B.V.");
        assert_eq!(reg.search("cloudflare"), vec![Asn(13335)]);
        assert_eq!(reg.search("INC"), vec![Asn(13335), Asn(19551)]);
        assert!(reg.search("verisign").is_empty());
    }

    #[test]
    fn register_overwrites() {
        let mut reg = AsRegistry::new();
        reg.register(Asn(1), "old");
        reg.register(Asn(1), "new");
        assert_eq!(reg.name(Asn(1)), Some("new"));
        assert_eq!(reg.len(), 1);
    }
}
