//! A deterministic, virtual-time UDP network with fault injection.
//!
//! Services (authoritative name servers) register a request handler at an IP
//! address. Client [`Socket`]s send datagrams and receive responses under a
//! *virtual* clock: latency, loss, duplication and corruption are simulated
//! per-socket with a seeded RNG, so runs are reproducible bit-for-bit and
//! independent of wall-clock scheduling — even when many measurement workers
//! share the network from different threads.
//!
//! The design follows the request/response nature of DNS-over-UDP: a send
//! may synchronously produce zero or more deliveries into the sender's
//! inbox, time-stamped with simulated round-trip latency. `recv` advances
//! the socket's virtual clock. This mirrors smoltcp's poll-driven style and
//! its fault-injecting example devices (`--drop-chance`, `--corrupt-chance`).

use crate::chaos::ChaosSchedule;
use dps_telemetry::{Counter, Histogram, Registry};
use parking_lot::RwLock;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
// dps: allow-file(unordered-collection, reason = "the service table is a per-address dispatch lookup, never iterated; delivery order is governed by the virtual-time BinaryHeap")
use std::collections::{BinaryHeap, HashMap};
use std::fmt;
use std::net::IpAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A registered service: maps a source address and request payload to an
/// optional response payload. Handlers must be pure with respect to the
/// datagram (shared state goes behind its own locks).
pub type Handler = Arc<dyn Fn(IpAddr, &[u8]) -> Option<Vec<u8>> + Send + Sync>;

/// Fault-injection parameters, applied independently to the request and the
/// response leg of each exchange.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProfile {
    /// Probability a datagram is silently dropped, per leg, in `[0, 1]`.
    pub loss: f64,
    /// Probability one octet of the datagram is flipped, per leg.
    pub corrupt: f64,
    /// Probability a datagram is delivered twice, per leg.
    pub duplicate: f64,
    /// One-way latency range in microseconds (uniform).
    pub latency_us: (u64, u64),
}

impl Default for FaultProfile {
    /// A healthy network: no faults, 2–20 ms one-way latency.
    fn default() -> Self {
        Self {
            loss: 0.0,
            corrupt: 0.0,
            duplicate: 0.0,
            latency_us: (2_000, 20_000),
        }
    }
}

impl FaultProfile {
    /// A lossy profile in the spirit of smoltcp's example defaults
    /// (15% drop / corrupt chance).
    pub fn lossy() -> Self {
        Self {
            loss: 0.15,
            corrupt: 0.15,
            duplicate: 0.05,
            latency_us: (2_000, 50_000),
        }
    }

    /// A perfect, zero-latency network (useful for micro-benches).
    pub fn ideal() -> Self {
        Self {
            loss: 0.0,
            corrupt: 0.0,
            duplicate: 0.0,
            latency_us: (0, 0),
        }
    }
}

/// Aggregate counters across the whole network. Cheap atomics; read them
/// with [`NetworkStats::snapshot`].
#[derive(Debug, Default)]
pub struct NetworkStats {
    /// Datagrams handed to `send_to`.
    pub sent: AtomicU64,
    /// Datagrams dropped by fault injection (either leg).
    pub dropped: AtomicU64,
    /// Datagrams corrupted by fault injection (either leg).
    pub corrupted: AtomicU64,
    /// Extra copies delivered by duplication (either leg).
    pub duplicated: AtomicU64,
    /// Responses delivered into sockets' inboxes.
    pub delivered: AtomicU64,
    /// Requests that reached no registered service.
    pub unroutable: AtomicU64,
    /// Legs swallowed by a scripted chaos blackout (or flap down-phase).
    pub blackholed: AtomicU64,
}

/// A point-in-time copy of [`NetworkStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// See [`NetworkStats::sent`].
    pub sent: u64,
    /// See [`NetworkStats::dropped`].
    pub dropped: u64,
    /// See [`NetworkStats::corrupted`].
    pub corrupted: u64,
    /// See [`NetworkStats::duplicated`].
    pub duplicated: u64,
    /// See [`NetworkStats::delivered`].
    pub delivered: u64,
    /// See [`NetworkStats::unroutable`].
    pub unroutable: u64,
    /// See [`NetworkStats::blackholed`].
    pub blackholed: u64,
}

impl NetworkStats {
    /// Reads all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            sent: self.sent.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            corrupted: self.corrupted.load(Ordering::Relaxed),
            duplicated: self.duplicated.load(Ordering::Relaxed),
            delivered: self.delivered.load(Ordering::Relaxed),
            unroutable: self.unroutable.load(Ordering::Relaxed),
            blackholed: self.blackholed.load(Ordering::Relaxed),
        }
    }
}

/// Errors from [`Socket::recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// Nothing arrived before the virtual deadline.
    Timeout,
    /// An ICMP-style port-unreachable notice came back from this address:
    /// the request leg survived the wire but no service is bound there.
    Unreachable(IpAddr),
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Timeout => write!(f, "receive timed out"),
            Self::Unreachable(addr) => write!(f, "destination {addr} unreachable"),
        }
    }
}

impl std::error::Error for RecvError {}

/// Telemetry handles for the wire hot path, mirroring [`NetworkStats`]
/// into a shared `dps-telemetry` [`Registry`] plus a one-way latency
/// histogram and a chaos-degradation counter. `Default` handles are
/// detached (they count, but belong to no registry).
#[derive(Clone, Default)]
pub struct NetMetrics {
    sent: Counter,
    dropped: Counter,
    corrupted: Counter,
    duplicated: Counter,
    delivered: Counter,
    unroutable: Counter,
    blackholed: Counter,
    degraded: Counter,
    latency_us: Histogram,
}

impl NetMetrics {
    /// Instruments registered under the `net.*` names.
    pub fn new(registry: &Registry) -> Self {
        Self {
            sent: registry.counter("net.packets.sent"),
            dropped: registry.counter("net.packets.dropped"),
            corrupted: registry.counter("net.packets.corrupted"),
            duplicated: registry.counter("net.packets.duplicated"),
            delivered: registry.counter("net.packets.delivered"),
            unroutable: registry.counter("net.packets.unroutable"),
            blackholed: registry.counter("net.packets.blackholed"),
            degraded: registry.counter("net.chaos.degraded"),
            latency_us: registry.histogram("net.latency.us"),
        }
    }
}

/// The shared network fabric.
pub struct Network {
    services: RwLock<HashMap<IpAddr, Handler>>,
    faults: RwLock<FaultProfile>,
    chaos: RwLock<Option<Arc<ChaosSchedule>>>,
    stats: NetworkStats,
    metrics: NetMetrics,
    seed: u64,
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Network")
            .field("services", &self.services.read().len())
            .field("faults", &*self.faults.read())
            .finish()
    }
}

impl Network {
    /// Creates a network with the default (healthy) fault profile and
    /// detached telemetry.
    pub fn new(seed: u64) -> Arc<Self> {
        Self::with_telemetry(seed, &Registry::new())
    }

    /// Creates a network whose `net.*` instruments live in `registry`.
    pub fn with_telemetry(seed: u64, registry: &Registry) -> Arc<Self> {
        Arc::new(Self {
            services: RwLock::new(HashMap::new()),
            faults: RwLock::new(FaultProfile::default()),
            chaos: RwLock::new(None),
            stats: NetworkStats::default(),
            metrics: NetMetrics::new(registry),
            seed,
        })
    }

    /// Replaces the fault profile (affects subsequent sends).
    pub fn set_faults(&self, profile: FaultProfile) {
        *self.faults.write() = profile;
    }

    /// Current fault profile.
    pub fn faults(&self) -> FaultProfile {
        *self.faults.read()
    }

    /// Installs a scripted chaos schedule, layered on the base fault
    /// profile and evaluated against each sending socket's virtual clock.
    pub fn set_chaos(&self, schedule: ChaosSchedule) {
        *self.chaos.write() = Some(Arc::new(schedule));
    }

    /// Removes any installed chaos schedule.
    pub fn clear_chaos(&self) {
        *self.chaos.write() = None;
    }

    /// The installed chaos schedule, if any.
    pub fn chaos(&self) -> Option<Arc<ChaosSchedule>> {
        self.chaos.read().clone()
    }

    /// The seed this network (and its sockets' RNG streams) derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Registers a service at `addr`, replacing any previous one.
    pub fn bind_service(&self, addr: IpAddr, handler: Handler) {
        self.services.write().insert(addr, handler);
    }

    /// Removes the service at `addr`.
    pub fn unbind(&self, addr: IpAddr) {
        self.services.write().remove(&addr);
    }

    /// True if a service is bound at `addr`.
    pub fn is_bound(&self, addr: IpAddr) -> bool {
        self.services.read().contains_key(&addr)
    }

    /// Aggregate fault/delivery counters.
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    /// Opens a client socket with its own virtual clock and RNG stream.
    ///
    /// `stream` distinguishes sockets sharing a source address (e.g. one per
    /// measurement worker); sockets with equal `(seed, src, stream)` behave
    /// identically.
    pub fn socket(self: &Arc<Self>, src: IpAddr, stream: u64) -> Socket {
        let mut h = self.seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        if let IpAddr::V4(v4) = src {
            h ^= u64::from(u32::from(v4)) << 17;
        }
        Socket {
            net: Arc::clone(self),
            src,
            rng: SmallRng::seed_from_u64(h),
            inbox: BinaryHeap::new(),
            now_us: 0,
            seq: 0,
        }
    }
}

/// A pending delivery: ordered by virtual arrival time, then send order.
/// A `None` payload is an ICMP-style port-unreachable notice.
type Delivery = Reverse<(u64, u64, IpAddr, Option<Vec<u8>>)>;

/// A client UDP socket with a private virtual clock.
pub struct Socket {
    net: Arc<Network>,
    src: IpAddr,
    rng: SmallRng,
    inbox: BinaryHeap<Delivery>,
    now_us: u64,
    seq: u64,
}

impl Socket {
    /// The socket's source address.
    pub fn local_addr(&self) -> IpAddr {
        self.src
    }

    /// The socket's virtual clock, microseconds since creation.
    pub fn now_us(&self) -> u64 {
        self.now_us
    }

    fn leg_faults(&mut self, payload: &[u8], profile: &FaultProfile) -> Vec<(Vec<u8>, u64)> {
        // Returns 0..=2 (payload, one-way latency) copies for one leg.
        let stats = &self.net.stats;
        let metrics = &self.net.metrics;
        if self.rng.gen::<f64>() < profile.loss {
            stats.dropped.fetch_add(1, Ordering::Relaxed);
            metrics.dropped.inc();
            return Vec::new();
        }
        let mut data = payload.to_vec();
        if self.rng.gen::<f64>() < profile.corrupt && !data.is_empty() {
            let idx = self.rng.gen_range(0..data.len());
            let bit = 1u8 << self.rng.gen_range(0..8);
            if let Some(byte) = data.get_mut(idx) {
                *byte ^= bit;
            }
            stats.corrupted.fetch_add(1, Ordering::Relaxed);
            metrics.corrupted.inc();
        }
        let lat = |rng: &mut SmallRng| -> u64 {
            let (lo, hi) = profile.latency_us;
            if hi > lo {
                rng.gen_range(lo..=hi)
            } else {
                lo
            }
        };
        let first_lat = lat(&mut self.rng);
        metrics.latency_us.observe(first_lat);
        let mut out = vec![(data.clone(), first_lat)];
        if self.rng.gen::<f64>() < profile.duplicate {
            stats.duplicated.fetch_add(1, Ordering::Relaxed);
            metrics.duplicated.inc();
            let dup_lat = lat(&mut self.rng);
            metrics.latency_us.observe(dup_lat);
            out.push((data, dup_lat));
        }
        out
    }

    /// Sends `payload` to `dst`. Any responses are scheduled into this
    /// socket's inbox with simulated round-trip latency. An installed
    /// [`ChaosSchedule`] is consulted per leg — the request leg at the
    /// current clock, the response leg at its (virtual) server-arrival
    /// time — so scripted windows cut exchanges mid-flight.
    pub fn send_to(&mut self, dst: IpAddr, payload: &[u8]) {
        let base = self.net.faults();
        let chaos = self.net.chaos();
        self.net.stats.sent.fetch_add(1, Ordering::Relaxed);
        self.net.metrics.sent.inc();

        // A chaos window that alters (rather than swallows) a leg counts as
        // a degradation activation.
        let degraded = self.net.metrics.degraded.clone();
        let effective = move |at: u64| -> Option<FaultProfile> {
            match &chaos {
                Some(sched) => {
                    let profile = sched.effective(at, dst, base);
                    if profile.is_some_and(|p| p != base) {
                        degraded.inc();
                    }
                    profile
                }
                None => Some(base),
            }
        };
        let Some(req_profile) = effective(self.now_us) else {
            self.net.stats.blackholed.fetch_add(1, Ordering::Relaxed);
            self.net.metrics.blackholed.inc();
            return;
        };
        let requests = self.leg_faults(payload, &req_profile);
        if requests.is_empty() {
            return;
        }
        let handler = self.net.services.read().get(&dst).cloned();
        let Some(handler) = handler else {
            // No service bound: the host's stack answers with an ICMP
            // port-unreachable notice after a round trip (unless a chaos
            // window swallows the return path too).
            self.net.stats.unroutable.fetch_add(1, Ordering::Relaxed);
            self.net.metrics.unroutable.inc();
            for (_, req_lat) in requests {
                if effective(self.now_us + req_lat).is_none() {
                    self.net.stats.blackholed.fetch_add(1, Ordering::Relaxed);
                    self.net.metrics.blackholed.inc();
                    continue;
                }
                let arrive = self.now_us + req_lat * 2;
                self.seq += 1;
                self.inbox.push(Reverse((arrive, self.seq, dst, None)));
            }
            return;
        };
        for (req, req_lat) in requests {
            let Some(resp) = handler(self.src, &req) else {
                continue;
            };
            let Some(resp_profile) = effective(self.now_us + req_lat) else {
                self.net.stats.blackholed.fetch_add(1, Ordering::Relaxed);
                self.net.metrics.blackholed.inc();
                continue;
            };
            for (resp_data, resp_lat) in self.leg_faults(&resp, &resp_profile) {
                let arrive = self.now_us + req_lat + resp_lat;
                self.seq += 1;
                self.inbox
                    .push(Reverse((arrive, self.seq, dst, Some(resp_data))));
                self.net.stats.delivered.fetch_add(1, Ordering::Relaxed);
                self.net.metrics.delivered.inc();
            }
        }
    }

    /// Receives the next datagram, advancing the virtual clock to its
    /// arrival time, or to `now + timeout_us` on timeout. An unreachable
    /// notice surfaces as [`RecvError::Unreachable`] at its arrival time —
    /// earlier than the deadline, like a real ICMP fast-fail.
    pub fn recv(&mut self, timeout_us: u64) -> Result<(IpAddr, Vec<u8>), RecvError> {
        let deadline = self.now_us + timeout_us;
        if let Some(Reverse((arrive, _, _, _))) = self.inbox.peek() {
            if *arrive <= deadline {
                let Reverse((arrive, _, from, data)) = self.inbox.pop().expect("peeked");
                self.now_us = self.now_us.max(arrive);
                return match data {
                    Some(data) => Ok((from, data)),
                    None => Err(RecvError::Unreachable(from)),
                };
            }
        }
        self.now_us = deadline;
        Err(RecvError::Timeout)
    }

    /// Advances the virtual clock by `dt_us` without touching the wire
    /// (a backoff pause between retry attempts).
    pub fn sleep(&mut self, dt_us: u64) {
        self.now_us += dt_us;
    }

    /// Discards everything still in flight toward this socket (used between
    /// logically separate exchanges so late duplicates don't leak across).
    pub fn drain(&mut self) {
        self.inbox.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_network(seed: u64) -> Arc<Network> {
        let net = Network::new(seed);
        let addr: IpAddr = "192.0.2.1".parse().unwrap();
        net.bind_service(addr, Arc::new(|_src, payload| Some(payload.to_vec())));
        net
    }

    fn client(net: &Arc<Network>) -> Socket {
        net.socket("198.51.100.1".parse().unwrap(), 0)
    }

    #[test]
    fn echo_roundtrip_advances_virtual_time() {
        let net = echo_network(1);
        let mut sock = client(&net);
        sock.send_to("192.0.2.1".parse().unwrap(), b"ping");
        let (from, data) = sock.recv(1_000_000).unwrap();
        assert_eq!(from, "192.0.2.1".parse::<IpAddr>().unwrap());
        assert_eq!(data, b"ping");
        // Default profile has ≥ 2ms per leg.
        assert!(sock.now_us() >= 4_000, "now={}", sock.now_us());
    }

    #[test]
    fn unbound_destination_fast_fails_with_unreachable() {
        let net = echo_network(1);
        let mut sock = client(&net);
        let dst: IpAddr = "203.0.113.9".parse().unwrap();
        sock.send_to(dst, b"ping");
        assert_eq!(sock.recv(100_000), Err(RecvError::Unreachable(dst)));
        // The notice arrives after one round trip (≤ 2 × 20 ms), well
        // before the deadline — an ICMP-style fast failure.
        assert!(sock.now_us() < 100_000, "now={}", sock.now_us());
        assert_eq!(net.stats().snapshot().unroutable, 1);
    }

    #[test]
    fn blacked_out_unbound_destination_stays_silent() {
        use crate::chaos::ChaosSchedule;
        let net = echo_network(1);
        net.set_chaos(ChaosSchedule::new().blackout(None, 0, u64::MAX));
        let mut sock = client(&net);
        sock.send_to("203.0.113.9".parse().unwrap(), b"ping");
        // Blackout swallows the request before it can bounce.
        assert_eq!(sock.recv(50_000), Err(RecvError::Timeout));
        assert_eq!(sock.now_us(), 50_000);
        assert_eq!(net.stats().snapshot().blackholed, 1);
    }

    #[test]
    fn chaos_blackout_window_silences_and_releases() {
        use crate::chaos::ChaosSchedule;
        let net = echo_network(6);
        let dst: IpAddr = "192.0.2.1".parse().unwrap();
        net.set_chaos(ChaosSchedule::new().blackout(Some(dst), 0, 1_000_000));
        let mut sock = client(&net);
        sock.send_to(dst, b"ping");
        assert_eq!(sock.recv(2_000_000), Err(RecvError::Timeout));
        assert_eq!(net.stats().snapshot().blackholed, 1);
        // The clock advanced past the window; the server is back.
        assert!(sock.now_us() >= 1_000_000);
        sock.send_to(dst, b"ping");
        assert!(sock.recv(2_000_000).is_ok());
    }

    #[test]
    fn chaos_degrade_burst_applies_loss_inside_window_only() {
        use crate::chaos::{ChaosSchedule, FaultOverride};
        let net = echo_network(7);
        let dst: IpAddr = "192.0.2.1".parse().unwrap();
        net.set_chaos(ChaosSchedule::new().degrade(
            Some(dst),
            0,
            1_000_000,
            FaultOverride {
                loss: Some(1.0),
                ..FaultOverride::default()
            },
        ));
        let mut sock = client(&net);
        sock.send_to(dst, b"ping");
        assert_eq!(sock.recv(2_000_000), Err(RecvError::Timeout));
        assert!(net.stats().snapshot().dropped >= 1);
        sock.send_to(dst, b"ping");
        assert!(sock.recv(2_000_000).is_ok(), "burst should have ended");
    }

    #[test]
    fn chaos_runs_are_seed_reproducible() {
        use crate::chaos::{ChaosSchedule, FaultOverride};
        let run = |seed: u64| -> Vec<(bool, u64)> {
            let net = echo_network(seed);
            net.set_faults(FaultProfile::lossy());
            net.set_chaos(
                ChaosSchedule::new()
                    .blackout(None, 300_000, 600_000)
                    .degrade(
                        None,
                        600_000,
                        2_000_000,
                        FaultOverride {
                            loss: Some(0.5),
                            ..FaultOverride::default()
                        },
                    ),
            );
            let mut sock = client(&net);
            let mut trace = Vec::new();
            for _ in 0..40 {
                sock.send_to("192.0.2.1".parse().unwrap(), b"probe");
                let got = sock.recv(100_000).is_ok();
                trace.push((got, sock.now_us()));
                sock.drain();
            }
            trace
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(1042));
    }

    #[test]
    fn sleep_advances_the_clock_without_sending() {
        let net = echo_network(8);
        let mut sock = client(&net);
        sock.sleep(123_456);
        assert_eq!(sock.now_us(), 123_456);
        assert_eq!(net.stats().snapshot().sent, 0);
    }

    #[test]
    fn total_loss_drops_everything() {
        let net = echo_network(2);
        net.set_faults(FaultProfile {
            loss: 1.0,
            ..FaultProfile::default()
        });
        let mut sock = client(&net);
        sock.send_to("192.0.2.1".parse().unwrap(), b"ping");
        assert_eq!(sock.recv(10_000), Err(RecvError::Timeout));
        assert!(net.stats().snapshot().dropped >= 1);
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let net = echo_network(3);
        net.set_faults(FaultProfile {
            corrupt: 1.0,
            latency_us: (0, 0),
            ..FaultProfile::default()
        });
        let mut sock = client(&net);
        sock.send_to("192.0.2.1".parse().unwrap(), &[0u8; 8]);
        let (_, data) = sock.recv(1000).unwrap();
        // Two legs, each flipping one bit; they may coincide.
        let flipped: u32 = data.iter().map(|b| b.count_ones()).sum();
        assert!(
            flipped == 2 || flipped == 0,
            "flipped={flipped} data={data:?}"
        );
        assert_eq!(net.stats().snapshot().corrupted, 2);
    }

    #[test]
    fn duplication_delivers_extra_copies() {
        let net = echo_network(4);
        net.set_faults(FaultProfile {
            duplicate: 1.0,
            latency_us: (0, 0),
            ..FaultProfile::default()
        });
        let mut sock = client(&net);
        sock.send_to("192.0.2.1".parse().unwrap(), b"x");
        // Request duplicated -> handler runs twice; each response duplicated
        // -> 4 deliveries total.
        let mut n = 0;
        while sock.recv(1000).is_ok() {
            n += 1;
        }
        assert_eq!(n, 4);
    }

    #[test]
    fn same_seed_same_behaviour() {
        let run = |seed: u64| -> Vec<u64> {
            let net = echo_network(seed);
            net.set_faults(FaultProfile::lossy());
            let mut sock = client(&net);
            let mut arrivals = Vec::new();
            for _ in 0..50 {
                sock.send_to("192.0.2.1".parse().unwrap(), b"probe");
                if sock.recv(100_000).is_ok() {
                    arrivals.push(sock.now_us());
                }
                sock.drain();
            }
            arrivals
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn deliveries_arrive_in_time_order() {
        let net = echo_network(5);
        net.set_faults(FaultProfile {
            latency_us: (1000, 90_000),
            ..FaultProfile::default()
        });
        let mut sock = client(&net);
        for _ in 0..10 {
            sock.send_to("192.0.2.1".parse().unwrap(), b"m");
        }
        let mut last = 0;
        while sock.recv(1_000_000).is_ok() {
            assert!(sock.now_us() >= last);
            last = sock.now_us();
        }
    }

    #[test]
    fn telemetry_mirrors_stats_and_sees_chaos() {
        use crate::chaos::{ChaosSchedule, FaultOverride};
        let registry = Registry::new();
        let net = Network::with_telemetry(11, &registry);
        let addr: IpAddr = "192.0.2.1".parse().unwrap();
        net.bind_service(addr, Arc::new(|_src, payload| Some(payload.to_vec())));
        net.set_chaos(ChaosSchedule::new().degrade(
            None,
            0,
            u64::MAX,
            FaultOverride {
                loss: Some(1.0),
                ..FaultOverride::default()
            },
        ));
        let mut sock = net.socket("198.51.100.1".parse().unwrap(), 0);
        sock.send_to(addr, b"ping");
        let snap = registry.snapshot();
        assert_eq!(snap.counters.get("net.packets.sent"), Some(&1));
        assert_eq!(
            snap.counters.get("net.packets.sent").copied(),
            Some(net.stats().snapshot().sent)
        );
        assert_eq!(snap.counters.get("net.packets.dropped"), Some(&1));
        assert!(snap.counters.get("net.chaos.degraded").copied() >= Some(1));
        // The healthy constructor keeps working with detached instruments.
        net.clear_chaos();
        net.set_faults(FaultProfile::ideal());
        sock.send_to(addr, b"ping");
        assert!(sock.recv(1_000).is_ok());
        let snap = registry.snapshot();
        assert_eq!(snap.counters.get("net.packets.delivered"), Some(&1));
        let lat = snap.histograms.get("net.latency.us").expect("latency");
        assert_eq!(lat.count, 2, "one latency sample per surviving leg");
    }

    #[test]
    fn rebinding_replaces_service() {
        let net = Network::new(9);
        let addr: IpAddr = "192.0.2.1".parse().unwrap();
        net.bind_service(addr, Arc::new(|_, _| Some(b"one".to_vec())));
        net.bind_service(addr, Arc::new(|_, _| Some(b"two".to_vec())));
        let mut sock = client(&net);
        sock.send_to(addr, b"q");
        assert_eq!(sock.recv(1_000_000).unwrap().1, b"two");
        net.unbind(addr);
        assert!(!net.is_bound(addr));
    }
}
