//! Historical prefix-to-AS archives.
//!
//! The paper supplements addresses with "the origin AS of the most-specific
//! prefix in which an address was contained **at measurement time**"
//! (§3.2) — i.e. it joins against dated Routeviews `pfx2as` snapshots, not
//! a single current table. [`RibHistory`] is that archive: one snapshot per
//! measured day, with delta inspection so BGP diversion events (the ENOM ↔
//! Verisign flips) are visible as routing history.

use crate::asn::Asn;
use crate::bgp::Pfx2As;
use crate::clock::Day;
use crate::prefix::Prefix;
use std::collections::BTreeMap;
use std::net::IpAddr;

/// A dated archive of `pfx2as` snapshots.
#[derive(Debug, Clone, Default)]
pub struct RibHistory {
    snapshots: BTreeMap<u32, Pfx2As>,
}

/// One difference between two snapshots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OriginChange {
    /// The prefix is newly announced.
    Announced {
        /// The affected prefix.
        prefix: Prefix,
        /// Its origins now.
        origins: Vec<Asn>,
    },
    /// The prefix disappeared from the table.
    Withdrawn {
        /// The affected prefix.
        prefix: Prefix,
        /// Its origins before.
        origins: Vec<Asn>,
    },
    /// The origin set changed (e.g. a BGP diversion flip).
    OriginFlip {
        /// The affected prefix.
        prefix: Prefix,
        /// Origins before.
        from: Vec<Asn>,
        /// Origins after.
        to: Vec<Asn>,
    },
}

impl RibHistory {
    /// An empty archive.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the snapshot for `day` (replacing any previous one).
    pub fn record(&mut self, day: Day, snapshot: Pfx2As) {
        self.snapshots.insert(day.0, snapshot);
    }

    /// The snapshot recorded for exactly `day`.
    pub fn at(&self, day: Day) -> Option<&Pfx2As> {
        self.snapshots.get(&day.0)
    }

    /// The most recent snapshot at or before `day` (how an analysis joins
    /// a measurement against routing data when a day's table is missing).
    pub fn at_or_before(&self, day: Day) -> Option<&Pfx2As> {
        self.snapshots.range(..=day.0).next_back().map(|(_, s)| s)
    }

    /// Days with a recorded snapshot, ascending.
    pub fn days(&self) -> Vec<Day> {
        self.snapshots.keys().map(|&d| Day(d)).collect()
    }

    /// Number of recorded snapshots.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// True if nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// Origin history of `addr`: for every recorded day, the origin set of
    /// its most-specific covering prefix. Days where the address is
    /// unrouted yield an empty set.
    pub fn origin_timeline(&self, addr: IpAddr) -> Vec<(Day, Vec<Asn>)> {
        self.snapshots
            .iter()
            .map(|(&d, snap)| {
                let origins = snap
                    .origins(addr)
                    .map(|(o, _)| o.to_vec())
                    .unwrap_or_default();
                (Day(d), origins)
            })
            .collect()
    }

    /// The routing changes between two recorded days.
    pub fn diff(&self, from: Day, to: Day) -> Vec<OriginChange> {
        let (Some(a), Some(b)) = (self.at(from), self.at(to)) else {
            return Vec::new();
        };
        let index = |snap: &Pfx2As| -> BTreeMap<Prefix, Vec<Asn>> {
            snap.entries().map(|(p, o)| (p, o.to_vec())).collect()
        };
        let before = index(a);
        let after = index(b);
        let mut out = Vec::new();
        for (prefix, origins) in &before {
            match after.get(prefix) {
                None => out.push(OriginChange::Withdrawn {
                    prefix: *prefix,
                    origins: origins.clone(),
                }),
                Some(now) if now != origins => out.push(OriginChange::OriginFlip {
                    prefix: *prefix,
                    from: origins.clone(),
                    to: now.clone(),
                }),
                _ => {}
            }
        }
        for (prefix, origins) in &after {
            if !before.contains_key(prefix) {
                out.push(OriginChange::Announced {
                    prefix: *prefix,
                    origins: origins.clone(),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bgp::Rib;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn ip(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    fn history_with_flip() -> RibHistory {
        // Day 0-1: ENOM originates; day 2-3: Verisign (diversion); day 4: back.
        let mut h = RibHistory::new();
        for day in 0..5u32 {
            let mut rib = Rib::new();
            rib.announce(p("10.0.0.0/8"), Asn(64512));
            let origin = if (2..4).contains(&day) {
                Asn(26415)
            } else {
                Asn(21740)
            };
            rib.announce(p("31.2.0.0/16"), origin);
            h.record(Day(day), rib.snapshot());
        }
        h
    }

    #[test]
    fn at_and_at_or_before() {
        let h = history_with_flip();
        assert!(h.at(Day(3)).is_some());
        assert!(h.at(Day(9)).is_none());
        assert!(h.at_or_before(Day(9)).is_some());
        assert!(h.at_or_before(Day(0)).is_some());
        assert_eq!(h.len(), 5);
        assert_eq!(h.days().len(), 5);
    }

    #[test]
    fn origin_timeline_shows_the_flip() {
        let h = history_with_flip();
        let tl = h.origin_timeline(ip("31.2.0.99"));
        let origins: Vec<u32> = tl.iter().map(|(_, o)| o[0].0).collect();
        assert_eq!(origins, vec![21740, 21740, 26415, 26415, 21740]);
    }

    #[test]
    fn diff_reports_origin_flip_only() {
        let h = history_with_flip();
        let changes = h.diff(Day(1), Day(2));
        assert_eq!(changes.len(), 1);
        match &changes[0] {
            OriginChange::OriginFlip { prefix, from, to } => {
                assert_eq!(*prefix, p("31.2.0.0/16"));
                assert_eq!(from, &[Asn(21740)]);
                assert_eq!(to, &[Asn(26415)]);
            }
            other => panic!("{other:?}"),
        }
        assert!(h.diff(Day(2), Day(3)).is_empty());
    }

    #[test]
    fn diff_reports_announce_and_withdraw() {
        let mut h = RibHistory::new();
        let mut rib = Rib::new();
        rib.announce(p("10.0.0.0/8"), Asn(1));
        h.record(Day(0), rib.snapshot());
        rib.withdraw(p("10.0.0.0/8"), Asn(1));
        rib.announce(p("192.0.2.0/24"), Asn(2));
        h.record(Day(1), rib.snapshot());
        let changes = h.diff(Day(0), Day(1));
        assert_eq!(changes.len(), 2);
        assert!(changes
            .iter()
            .any(|c| matches!(c, OriginChange::Withdrawn { .. })));
        assert!(changes
            .iter()
            .any(|c| matches!(c, OriginChange::Announced { .. })));
    }

    #[test]
    fn unrouted_days_are_empty_sets() {
        let mut h = RibHistory::new();
        h.record(Day(0), Rib::new().snapshot());
        let tl = h.origin_timeline(ip("203.0.113.1"));
        assert_eq!(tl, vec![(Day(0), vec![])]);
    }
}
