//! Deterministic, time-scripted fault schedules layered on [`FaultProfile`].
//!
//! A [`ChaosSchedule`] is a list of [`ChaosWindow`]s, each describing one
//! fault event over a virtual-time interval: a server blackout, a flapping
//! link, or a loss/latency degradation burst. Windows may target a single
//! endpoint or the whole fabric. The schedule is evaluated per *leg* at the
//! sending socket's virtual clock, so two runs with the same seed and the
//! same schedule replay the exact same fault sequence — chaos engineering
//! without losing reproducibility.
//!
//! The schedule composes with the network's base [`FaultProfile`]: a
//! [`ChaosEvent::Degrade`] overrides only the fields it sets, a
//! [`ChaosEvent::Blackout`] (or the down phase of a [`ChaosEvent::Flap`])
//! silently swallows the leg, exactly like a switched-off server.

use crate::net::FaultProfile;
use std::fmt;
use std::net::IpAddr;

/// Partial override of a [`FaultProfile`]; `None` fields keep the base value.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultOverride {
    /// Replacement drop probability, per leg.
    pub loss: Option<f64>,
    /// Replacement corruption probability, per leg.
    pub corrupt: Option<f64>,
    /// Replacement duplication probability, per leg.
    pub duplicate: Option<f64>,
    /// Replacement one-way latency range in microseconds.
    pub latency_us: Option<(u64, u64)>,
}

impl FaultOverride {
    fn check(&self) -> Result<(), String> {
        let probs = [
            ("loss", self.loss),
            ("corrupt", self.corrupt),
            ("dup", self.duplicate),
        ];
        for (name, p) in probs {
            if let Some(p) = p {
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("{name} probability `{p}` outside 0..=1"));
                }
            }
        }
        if let Some((lo, hi)) = self.latency_us {
            if lo > hi {
                return Err(format!("inverted latency range {lo}..{hi} (lo > hi)"));
            }
        }
        Ok(())
    }

    /// Checks field sanity: probabilities in `[0, 1]`, latency `lo <= hi`.
    /// An invalid override would otherwise misbehave (or panic) only deep
    /// inside `net.rs` sampling, far from whoever built it.
    pub fn validate(&self) -> Result<(), ChaosParseError> {
        self.check().map_err(|m| err(&format!("{self:?}"), &m))
    }

    /// Applies the set fields onto `base`.
    pub fn apply(&self, mut base: FaultProfile) -> FaultProfile {
        if let Some(v) = self.loss {
            base.loss = v;
        }
        if let Some(v) = self.corrupt {
            base.corrupt = v;
        }
        if let Some(v) = self.duplicate {
            base.duplicate = v;
        }
        if let Some(v) = self.latency_us {
            base.latency_us = v;
        }
        base
    }
}

/// What happens inside a [`ChaosWindow`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChaosEvent {
    /// Every leg toward the target is silently dropped (a powered-off or
    /// DDoS-saturated server: no ICMP, no response — just silence).
    Blackout,
    /// The target's link degrades: fault probabilities and latency are
    /// overridden for the window's duration.
    Degrade(FaultOverride),
    /// The link flaps with a fixed period: up for `up_fraction` of each
    /// period (measured from the window start), blacked out for the rest.
    Flap {
        /// Full up+down cycle length in microseconds.
        period_us: u64,
        /// Fraction of each period the link is up, in `[0, 1]`.
        up_fraction: f64,
    },
}

/// One scripted fault event over a virtual-time interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosWindow {
    /// Window start (inclusive), microseconds of socket virtual time.
    pub start_us: u64,
    /// Window end (exclusive); `u64::MAX` means "until the end of time".
    pub end_us: u64,
    /// Affected endpoint; `None` applies to every destination.
    pub target: Option<IpAddr>,
    /// The fault behaviour inside the window.
    pub event: ChaosEvent,
}

impl ChaosWindow {
    fn check(&self) -> Result<(), String> {
        if self.end_us <= self.start_us {
            return Err("window end must be after its start".to_owned());
        }
        match self.event {
            ChaosEvent::Blackout => Ok(()),
            ChaosEvent::Degrade(over) => over.check(),
            ChaosEvent::Flap { up_fraction, .. } => {
                if (0.0..=1.0).contains(&up_fraction) {
                    Ok(())
                } else {
                    Err(format!("up fraction `{up_fraction}` outside 0..=1"))
                }
            }
        }
    }

    /// Checks interval and event sanity (`start < end`, probabilities and
    /// latency ranges well-formed). [`ChaosSchedule::parse`] applies this to
    /// every event; builder-constructed windows should be checked via
    /// [`ChaosSchedule::validate`] before being scheduled.
    pub fn validate(&self) -> Result<(), ChaosParseError> {
        self.check().map_err(|m| err(&format!("{self:?}"), &m))
    }

    fn covers(&self, now_us: u64, dst: IpAddr) -> bool {
        let on_target = match self.target {
            Some(t) => t == dst,
            None => true,
        };
        now_us >= self.start_us && now_us < self.end_us && on_target
    }
}

/// A deterministic script of fault events, evaluated against the virtual
/// clock of whichever socket is sending.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChaosSchedule {
    windows: Vec<ChaosWindow>,
}

impl ChaosSchedule {
    /// An empty schedule (no scripted faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// True if no windows are scripted.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// The scripted windows, in insertion order.
    pub fn windows(&self) -> &[ChaosWindow] {
        &self.windows
    }

    /// Validates every window — the same checks [`ChaosSchedule::parse`]
    /// applies, for schedules assembled through the infallible builders.
    pub fn validate(&self) -> Result<(), ChaosParseError> {
        self.windows.iter().try_for_each(ChaosWindow::validate)
    }

    /// Adds an arbitrary window (builder style).
    pub fn window(mut self, w: ChaosWindow) -> Self {
        self.windows.push(w);
        self
    }

    /// Scripts a blackout of `target` (or everything, if `None`) over
    /// `[start_us, end_us)`.
    pub fn blackout(self, target: Option<IpAddr>, start_us: u64, end_us: u64) -> Self {
        self.window(ChaosWindow {
            start_us,
            end_us,
            target,
            event: ChaosEvent::Blackout,
        })
    }

    /// Scripts a degradation burst over `[start_us, end_us)`.
    pub fn degrade(
        self,
        target: Option<IpAddr>,
        start_us: u64,
        end_us: u64,
        over: FaultOverride,
    ) -> Self {
        self.window(ChaosWindow {
            start_us,
            end_us,
            target,
            event: ChaosEvent::Degrade(over),
        })
    }

    /// Scripts a flapping link over `[start_us, end_us)`.
    pub fn flap(
        self,
        target: Option<IpAddr>,
        start_us: u64,
        end_us: u64,
        period_us: u64,
        up_fraction: f64,
    ) -> Self {
        self.window(ChaosWindow {
            start_us,
            end_us,
            target,
            event: ChaosEvent::Flap {
                period_us,
                up_fraction,
            },
        })
    }

    /// The effective profile for one leg toward `dst` at virtual time
    /// `now_us`, or `None` if a blackout (or a flap's down phase) swallows
    /// the leg. Later windows are applied after earlier ones, so a
    /// global degradation plus a targeted blackout compose naturally; any
    /// covering blackout wins regardless of order.
    pub fn effective(&self, now_us: u64, dst: IpAddr, base: FaultProfile) -> Option<FaultProfile> {
        let mut profile = base;
        for w in &self.windows {
            if !w.covers(now_us, dst) {
                continue;
            }
            match w.event {
                ChaosEvent::Blackout => return None,
                ChaosEvent::Degrade(over) => profile = over.apply(profile),
                ChaosEvent::Flap {
                    period_us,
                    up_fraction,
                } => {
                    if period_us == 0 {
                        return None;
                    }
                    let phase = (now_us - w.start_us) % period_us;
                    let up_for = (period_us as f64 * up_fraction.clamp(0.0, 1.0)) as u64;
                    if phase >= up_for {
                        return None;
                    }
                }
            }
        }
        Some(profile)
    }

    /// Parses a schedule spec of `;`-separated events:
    ///
    /// ```text
    /// event   := kind '@' time '..' time [ '@' ip ] [ '@' params ]
    /// kind    := 'blackout' | 'degrade' | 'flap'
    /// time    := integer [ 'us' | 'ms' | 's' ] | 'inf'
    /// params  := key '=' value { ',' key '=' value }
    /// ```
    ///
    /// `degrade` accepts `loss=`, `corrupt=`, `dup=` (probabilities) and
    /// `lat=LO-HI` (milliseconds); `flap` accepts `period=` (a time) and
    /// `up=` (a fraction). Examples:
    ///
    /// ```text
    /// blackout@5s..20s@10.255.1.1
    /// degrade@0..inf@loss=0.15
    /// flap@10s..60s@10.255.2.1@period=2s,up=0.5
    /// ```
    pub fn parse(spec: &str) -> Result<Self, ChaosParseError> {
        let mut schedule = Self::new();
        for raw in spec.split(';') {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            let mut parts = raw.split('@');
            let kind = parts.next().unwrap_or_default().trim();
            let span = parts
                .next()
                .ok_or_else(|| err(raw, "missing time range"))?
                .trim();
            let (start_s, end_s) = span
                .split_once("..")
                .ok_or_else(|| err(raw, "time range must be start..end"))?;
            let start_us = parse_time(start_s).map_err(|m| err(raw, &m))?;
            let end_us = parse_time(end_s).map_err(|m| err(raw, &m))?;
            let mut target = None;
            let mut params = Vec::new();
            for extra in parts {
                let extra = extra.trim();
                if extra.contains('=') {
                    for kv in extra.split(',') {
                        let (k, v) = kv
                            .split_once('=')
                            .ok_or_else(|| err(raw, "parameters must be key=value"))?;
                        params.push((k.trim().to_owned(), v.trim().to_owned()));
                    }
                } else {
                    target = Some(
                        extra
                            .parse::<IpAddr>()
                            .map_err(|_| err(raw, "bad target address"))?,
                    );
                }
            }
            let event = match kind {
                "blackout" => ChaosEvent::Blackout,
                "degrade" => {
                    let mut over = FaultOverride::default();
                    for (k, v) in &params {
                        match k.as_str() {
                            "loss" => over.loss = Some(parse_prob(v).map_err(|m| err(raw, &m))?),
                            "corrupt" => {
                                over.corrupt = Some(parse_prob(v).map_err(|m| err(raw, &m))?)
                            }
                            "dup" => {
                                over.duplicate = Some(parse_prob(v).map_err(|m| err(raw, &m))?)
                            }
                            "lat" => {
                                let (lo, hi) = v
                                    .split_once('-')
                                    .ok_or_else(|| err(raw, "lat must be LO-HI (ms)"))?;
                                let lo: u64 =
                                    lo.parse().map_err(|_| err(raw, "bad lat low bound"))?;
                                let hi: u64 =
                                    hi.parse().map_err(|_| err(raw, "bad lat high bound"))?;
                                over.latency_us = Some((lo * 1000, hi * 1000));
                            }
                            other => return Err(err(raw, &format!("unknown key `{other}`"))),
                        }
                    }
                    ChaosEvent::Degrade(over)
                }
                "flap" => {
                    let mut period_us = 1_000_000;
                    let mut up_fraction = 0.5;
                    for (k, v) in &params {
                        match k.as_str() {
                            "period" => period_us = parse_time(v).map_err(|m| err(raw, &m))?,
                            "up" => up_fraction = parse_prob(v).map_err(|m| err(raw, &m))?,
                            other => return Err(err(raw, &format!("unknown key `{other}`"))),
                        }
                    }
                    ChaosEvent::Flap {
                        period_us,
                        up_fraction,
                    }
                }
                other => return Err(err(raw, &format!("unknown event kind `{other}`"))),
            };
            let window = ChaosWindow {
                start_us,
                end_us,
                target,
                event,
            };
            window.check().map_err(|m| err(raw, &m))?;
            schedule.windows.push(window);
        }
        Ok(schedule)
    }
}

/// A malformed chaos spec, with the offending event text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosParseError {
    /// The event text that failed to parse.
    pub event: String,
    /// What was wrong with it.
    pub message: String,
}

impl fmt::Display for ChaosParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad chaos event `{}`: {}", self.event, self.message)
    }
}

impl std::error::Error for ChaosParseError {}

fn err(event: &str, message: &str) -> ChaosParseError {
    ChaosParseError {
        event: event.to_owned(),
        message: message.to_owned(),
    }
}

fn parse_time(s: &str) -> Result<u64, String> {
    let s = s.trim();
    if s == "inf" {
        return Ok(u64::MAX);
    }
    let (digits, scale) = if let Some(d) = s.strip_suffix("us") {
        (d, 1)
    } else if let Some(d) = s.strip_suffix("ms") {
        (d, 1_000)
    } else if let Some(d) = s.strip_suffix('s') {
        (d, 1_000_000)
    } else {
        (s, 1)
    };
    digits
        .parse::<u64>()
        .map(|v| v.saturating_mul(scale))
        .map_err(|_| format!("bad time `{s}`"))
}

fn parse_prob(s: &str) -> Result<f64, String> {
    s.parse::<f64>()
        .ok()
        .filter(|p| (0.0..=1.0).contains(p))
        .ok_or_else(|| format!("bad probability `{s}` (want 0..=1)"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    #[test]
    fn blackout_swallows_only_its_window_and_target() {
        let sched = ChaosSchedule::new().blackout(Some(ip("10.0.0.1")), 1_000, 2_000);
        let base = FaultProfile::default();
        assert!(sched.effective(500, ip("10.0.0.1"), base).is_some());
        assert!(sched.effective(1_000, ip("10.0.0.1"), base).is_none());
        assert!(sched.effective(1_999, ip("10.0.0.1"), base).is_none());
        assert!(sched.effective(2_000, ip("10.0.0.1"), base).is_some());
        // Other destinations are unaffected.
        assert!(sched.effective(1_500, ip("10.0.0.2"), base).is_some());
    }

    #[test]
    fn global_blackout_hits_everyone() {
        let sched = ChaosSchedule::new().blackout(None, 0, u64::MAX);
        assert!(sched
            .effective(123, ip("192.0.2.7"), FaultProfile::default())
            .is_none());
    }

    #[test]
    fn degrade_overrides_only_set_fields() {
        let over = FaultOverride {
            loss: Some(0.5),
            ..FaultOverride::default()
        };
        let sched = ChaosSchedule::new().degrade(None, 0, 10, over);
        let base = FaultProfile {
            corrupt: 0.25,
            ..FaultProfile::default()
        };
        let eff = sched.effective(5, ip("10.0.0.1"), base).unwrap();
        assert_eq!(eff.loss, 0.5);
        assert_eq!(eff.corrupt, 0.25);
        assert_eq!(eff.latency_us, base.latency_us);
    }

    #[test]
    fn flap_alternates_up_and_down() {
        let sched = ChaosSchedule::new().flap(None, 0, u64::MAX, 1_000, 0.5);
        let base = FaultProfile::default();
        let dst = ip("10.0.0.1");
        assert!(sched.effective(0, dst, base).is_some()); // up phase
        assert!(sched.effective(499, dst, base).is_some());
        assert!(sched.effective(500, dst, base).is_none()); // down phase
        assert!(sched.effective(999, dst, base).is_none());
        assert!(sched.effective(1_000, dst, base).is_some()); // next period
    }

    #[test]
    fn blackout_wins_over_degrade_regardless_of_order() {
        let over = FaultOverride {
            loss: Some(0.1),
            ..FaultOverride::default()
        };
        let dst = ip("10.0.0.1");
        let a = ChaosSchedule::new()
            .blackout(Some(dst), 0, 10)
            .degrade(None, 0, 10, over);
        let b = ChaosSchedule::new()
            .degrade(None, 0, 10, over)
            .blackout(Some(dst), 0, 10);
        assert!(a.effective(5, dst, FaultProfile::default()).is_none());
        assert!(b.effective(5, dst, FaultProfile::default()).is_none());
    }

    #[test]
    fn parse_round_trips_the_documented_examples() {
        let sched = ChaosSchedule::parse(
            "blackout@5s..20s@10.255.1.1; degrade@0..inf@loss=0.15; \
             flap@10s..60s@10.255.2.1@period=2s,up=0.5",
        )
        .unwrap();
        assert_eq!(sched.windows().len(), 3);
        assert_eq!(
            sched.windows()[0],
            ChaosWindow {
                start_us: 5_000_000,
                end_us: 20_000_000,
                target: Some(ip("10.255.1.1")),
                event: ChaosEvent::Blackout,
            }
        );
        assert_eq!(
            sched.windows()[1].event,
            ChaosEvent::Degrade(FaultOverride {
                loss: Some(0.15),
                ..FaultOverride::default()
            })
        );
        assert_eq!(
            sched.windows()[2].event,
            ChaosEvent::Flap {
                period_us: 2_000_000,
                up_fraction: 0.5,
            }
        );
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "blackout",                 // no range
            "blackout@5s",              // no ..
            "blackout@20s..5s",         // inverted
            "meteor@0..1s",             // unknown kind
            "degrade@0..1s@loss=1.5",   // probability out of range
            "degrade@0..1s@dup=-0.1",   // negative probability
            "degrade@0..1s@lat=50-5",   // inverted latency range
            "degrade@0..0",             // empty window
            "flap@0..1s@up=1.5",        // up fraction out of range
            "degrade@0..1s@power=9000", // unknown key
            "blackout@0..1s@not-an-ip", // bad target
        ] {
            assert!(ChaosSchedule::parse(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn validate_rejects_builder_constructed_nonsense() {
        // The infallible builders accept anything; validate() applies the
        // same checks parse() does.
        let inverted_lat = FaultOverride {
            latency_us: Some((50_000, 5_000)),
            ..FaultOverride::default()
        };
        assert!(inverted_lat.validate().is_err());
        let sched = ChaosSchedule::new().degrade(None, 0, 10, inverted_lat);
        assert!(sched.validate().is_err());

        let empty_window = ChaosSchedule::new().blackout(None, 2_000, 1_000);
        assert!(empty_window.validate().is_err());

        let bad_prob = ChaosSchedule::new().degrade(
            None,
            0,
            10,
            FaultOverride {
                loss: Some(1.5),
                ..FaultOverride::default()
            },
        );
        assert!(bad_prob.validate().is_err());

        let bad_flap = ChaosSchedule::new().flap(None, 0, 10, 1_000, -0.5);
        assert!(bad_flap.validate().is_err());

        let fine = ChaosSchedule::new()
            .blackout(None, 0, 1_000)
            .flap(None, 0, 10, 1_000, 0.5);
        assert!(fine.validate().is_ok());
    }

    #[test]
    fn degrade_latency_parses_in_milliseconds() {
        let sched = ChaosSchedule::parse("degrade@0..1s@lat=5-50").unwrap();
        match sched.windows()[0].event {
            ChaosEvent::Degrade(over) => {
                assert_eq!(over.latency_us, Some((5_000, 50_000)));
            }
            ref other => panic!("unexpected event {other:?}"),
        }
    }
}
