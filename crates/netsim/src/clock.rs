//! Virtual time: study days and calendar dates.
//!
//! The study is organised around *daily* snapshots. [`Day`] is an offset
//! from the epoch of the simulated world (day 0 = 2015-03-01, the start of
//! the gTLD measurements in the paper); [`Date`] converts it to a Gregorian
//! calendar date for axis labels such as `Mar '15`.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Sub};

/// A study day (day 0 = 2015-03-01).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct Day(pub u32);

/// The calendar date of day 0.
pub const EPOCH: Date = Date {
    year: 2015,
    month: 3,
    day: 1,
};

impl Day {
    /// The calendar date of this study day.
    pub fn date(self) -> Date {
        EPOCH.plus_days(self.0)
    }

    /// Day index from a calendar date (dates before the epoch clamp to 0).
    pub fn from_date(d: Date) -> Self {
        Day(d
            .days_since_epoch_year()
            .saturating_sub(EPOCH.days_since_epoch_year()))
    }
}

impl Add<u32> for Day {
    type Output = Day;
    fn add(self, rhs: u32) -> Day {
        Day(self.0 + rhs)
    }
}

impl Sub<Day> for Day {
    type Output = i64;
    fn sub(self, rhs: Day) -> i64 {
        i64::from(self.0) - i64::from(rhs.0)
    }
}

impl fmt::Display for Day {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.date())
    }
}

/// A Gregorian calendar date.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Date {
    /// Full year, e.g. 2015.
    pub year: u16,
    /// Month 1–12.
    pub month: u8,
    /// Day of month 1–31.
    pub day: u8,
}

const MONTH_NAMES: [&str; 12] = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];

impl Date {
    fn is_leap(year: u16) -> bool {
        (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
    }

    fn month_len(year: u16, month: u8) -> u8 {
        match month {
            1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
            4 | 6 | 9 | 11 => 30,
            2 => {
                if Self::is_leap(year) {
                    29
                } else {
                    28
                }
            }
            _ => unreachable!("month out of range"),
        }
    }

    /// Days since 2000-01-01 (internal linearisation; enough span for the
    /// study and cheap to compute).
    fn days_since_epoch_year(self) -> u32 {
        let mut days = 0u32;
        for y in 2000..self.year {
            days += if Self::is_leap(y) { 366 } else { 365 };
        }
        for m in 1..self.month {
            days += u32::from(Self::month_len(self.year, m));
        }
        days + u32::from(self.day) - 1
    }

    /// The date `n` days after `self`.
    pub fn plus_days(self, n: u32) -> Date {
        let mut year = self.year;
        let mut month = self.month;
        let mut day = u32::from(self.day) + n;
        loop {
            let ml = u32::from(Self::month_len(year, month));
            if day <= ml {
                return Date {
                    year,
                    month,
                    day: day as u8,
                };
            }
            day -= ml;
            month += 1;
            if month > 12 {
                month = 1;
                year += 1;
            }
        }
    }

    /// Short axis label in the paper's style: `Mar '15`.
    pub fn axis_label(self) -> String {
        format!(
            "{} '{:02}",
            MONTH_NAMES[usize::from(self.month) - 1],
            self.year % 100
        )
    }

    /// True if this is the first day of a month (used to place axis ticks).
    pub fn is_month_start(self) -> bool {
        self.day == 1
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_paper_start() {
        assert_eq!(Day(0).date().to_string(), "2015-03-01");
    }

    #[test]
    fn leap_year_2016_handled() {
        // 2015-03-01 + 366 days straddles Feb 29 2016.
        let d = Day(365).date();
        assert_eq!(d.to_string(), "2016-02-29");
        assert_eq!(Day(366).date().to_string(), "2016-03-01");
    }

    #[test]
    fn study_end_is_mid_2016() {
        // 550 days of gTLD measurements.
        assert_eq!(Day(549).date().to_string(), "2016-08-31");
    }

    #[test]
    fn axis_label_matches_paper_style() {
        assert_eq!(Day(0).date().axis_label(), "Mar '15");
        assert_eq!(Day(306).date().axis_label(), "Jan '16");
    }

    #[test]
    fn from_date_inverts_date() {
        for n in [0u32, 1, 59, 365, 366, 549] {
            assert_eq!(Day::from_date(Day(n).date()), Day(n));
        }
    }

    #[test]
    fn month_starts_detected() {
        assert!(Date {
            year: 2015,
            month: 4,
            day: 1
        }
        .is_month_start());
        assert!(!Date {
            year: 2015,
            month: 4,
            day: 2
        }
        .is_month_start());
    }

    #[test]
    fn day_arithmetic() {
        assert_eq!(Day(5) + 3, Day(8));
        assert_eq!(Day(8) - Day(5), 3);
        assert_eq!(Day(2) - Day(5), -3);
    }
}
