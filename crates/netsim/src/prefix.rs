//! CIDR prefixes over IPv4 and IPv6.

use std::fmt;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};
use std::str::FromStr;

/// Error parsing a prefix from presentation format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrefixParseError {
    /// Missing `/len` part or unparsable address.
    Malformed(String),
    /// Prefix length beyond 32 (IPv4) or 128 (IPv6).
    LengthOutOfRange(u8),
}

impl fmt::Display for PrefixParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Malformed(s) => write!(f, "malformed prefix {s:?}"),
            Self::LengthOutOfRange(l) => write!(f, "prefix length {l} out of range"),
        }
    }
}

impl std::error::Error for PrefixParseError {}

/// A CIDR prefix. The network address is canonicalised (host bits zeroed)
/// at construction, so `10.0.0.7/24` and `10.0.0.0/24` compare equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Prefix {
    /// Address bits, left-aligned into 128 bits for both families.
    bits: u128,
    /// Prefix length in bits.
    len: u8,
    /// True for IPv4.
    v4: bool,
}

impl Prefix {
    /// Builds a prefix from an address and length, zeroing host bits.
    pub fn new(addr: IpAddr, len: u8) -> Result<Self, PrefixParseError> {
        let (bits, v4, max) = match addr {
            IpAddr::V4(a) => ((u32::from(a) as u128) << 96, true, 32),
            IpAddr::V6(a) => (u128::from(a), false, 128),
        };
        if len > max {
            return Err(PrefixParseError::LengthOutOfRange(len));
        }
        Ok(Self {
            bits: mask(bits, len),
            len,
            v4,
        })
    }

    /// Convenience: an IPv4 prefix (panics on length > 32; use in literals).
    pub fn v4(a: u8, b: u8, c: u8, d: u8, len: u8) -> Self {
        Self::new(IpAddr::V4(Ipv4Addr::new(a, b, c, d)), len).expect("static prefix length")
    }

    /// Prefix length in bits.
    pub fn len(&self) -> u8 {
        self.len
    }

    /// True if the prefix has zero length (the default route).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True for IPv4 prefixes.
    pub fn is_v4(&self) -> bool {
        self.v4
    }

    /// The canonical network address.
    pub fn network(&self) -> IpAddr {
        if self.v4 {
            IpAddr::V4(Ipv4Addr::from((self.bits >> 96) as u32))
        } else {
            IpAddr::V6(Ipv6Addr::from(self.bits))
        }
    }

    /// Left-aligned address bits (used by the LPM trie).
    pub fn bits(&self) -> u128 {
        self.bits
    }

    /// Left-aligns an arbitrary address into the 128-bit key space used by
    /// [`bits`](Self::bits). IPv4 and IPv6 live in separate tables, so the
    /// overlap of the two alignments is harmless.
    pub fn align(addr: IpAddr) -> u128 {
        match addr {
            IpAddr::V4(a) => (u32::from(a) as u128) << 96,
            IpAddr::V6(a) => u128::from(a),
        }
    }

    /// True if `addr` falls inside this prefix (family must match).
    pub fn contains(&self, addr: IpAddr) -> bool {
        if addr.is_ipv4() != self.v4 {
            return false;
        }
        mask(Self::align(addr), self.len) == self.bits
    }

    /// True if `other` is fully contained in `self`.
    pub fn covers(&self, other: &Prefix) -> bool {
        self.v4 == other.v4 && self.len <= other.len && mask(other.bits, self.len) == self.bits
    }

    /// The `i`-th address inside the prefix (IPv4 only), for carving hosts
    /// out of provider blocks in the simulator.
    pub fn nth_v4(&self, i: u32) -> Option<Ipv4Addr> {
        if !self.v4 {
            return None;
        }
        let size = 1u64 << (32 - self.len as u64);
        if u64::from(i) >= size {
            return None;
        }
        let base = (self.bits >> 96) as u32;
        Some(Ipv4Addr::from(base + i))
    }

    /// Number of addresses in an IPv4 prefix.
    pub fn size_v4(&self) -> Option<u64> {
        self.v4.then(|| 1u64 << (32 - self.len as u64))
    }
}

fn mask(bits: u128, len: u8) -> u128 {
    if len == 0 {
        0
    } else {
        bits & (u128::MAX << (128 - len))
    }
}

impl FromStr for Prefix {
    type Err = PrefixParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| PrefixParseError::Malformed(s.into()))?;
        let addr: IpAddr = addr
            .parse()
            .map_err(|_| PrefixParseError::Malformed(s.into()))?;
        let len: u8 = len
            .parse()
            .map_err(|_| PrefixParseError::Malformed(s.into()))?;
        Self::new(addr, len)
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn parse_display_roundtrip() {
        assert_eq!(p("10.0.0.0/24").to_string(), "10.0.0.0/24");
        assert_eq!(p("2001:db8::/32").to_string(), "2001:db8::/32");
        assert_eq!(p("0.0.0.0/0").to_string(), "0.0.0.0/0");
    }

    #[test]
    fn host_bits_are_canonicalised() {
        assert_eq!(p("10.0.0.7/24"), p("10.0.0.0/24"));
        assert_eq!(
            p("10.0.0.7/24").network(),
            "10.0.0.0".parse::<IpAddr>().unwrap()
        );
    }

    #[test]
    fn length_bounds_enforced() {
        assert_eq!(
            "10.0.0.0/33".parse::<Prefix>(),
            Err(PrefixParseError::LengthOutOfRange(33))
        );
        assert!("::/128".parse::<Prefix>().is_ok());
        assert_eq!(
            "::/129".parse::<Prefix>(),
            Err(PrefixParseError::LengthOutOfRange(129))
        );
    }

    #[test]
    fn malformed_rejected() {
        assert!(matches!(
            "10.0.0.0".parse::<Prefix>(),
            Err(PrefixParseError::Malformed(_))
        ));
        assert!(matches!(
            "banana/8".parse::<Prefix>(),
            Err(PrefixParseError::Malformed(_))
        ));
    }

    #[test]
    fn containment() {
        let pfx = p("192.0.2.0/24");
        assert!(pfx.contains("192.0.2.55".parse().unwrap()));
        assert!(!pfx.contains("192.0.3.1".parse().unwrap()));
        assert!(!pfx.contains("2001:db8::1".parse().unwrap())); // family mismatch
        assert!(p("0.0.0.0/0").contains("8.8.8.8".parse().unwrap()));
    }

    #[test]
    fn covers_is_reflexive_and_hierarchical() {
        assert!(p("10.0.0.0/8").covers(&p("10.1.0.0/16")));
        assert!(p("10.0.0.0/8").covers(&p("10.0.0.0/8")));
        assert!(!p("10.1.0.0/16").covers(&p("10.0.0.0/8")));
        assert!(!p("10.0.0.0/8").covers(&p("11.0.0.0/16")));
    }

    #[test]
    fn nth_v4_enumerates_hosts() {
        let pfx = p("198.51.100.0/30");
        assert_eq!(pfx.nth_v4(0), Some("198.51.100.0".parse().unwrap()));
        assert_eq!(pfx.nth_v4(3), Some("198.51.100.3".parse().unwrap()));
        assert_eq!(pfx.nth_v4(4), None);
        assert_eq!(pfx.size_v4(), Some(4));
    }

    #[test]
    fn v6_not_enumerable() {
        assert_eq!(p("2001:db8::/64").nth_v4(0), None);
    }
}
