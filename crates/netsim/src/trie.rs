//! A binary (Patricia-style, one bit per level) trie for longest-prefix
//! matching over the 128-bit aligned key space of [`Prefix`].
//!
//! The measurement pipeline performs one LPM lookup per measured address per
//! day (hundreds of millions over a study), so this is on the hot path; the
//! `lpm` Criterion bench tracks it, and a property test pins its semantics
//! to a naive linear scan.

// dps: allow-file(taint-panic, reason = "every node index is an arena handle returned by push() in this module and bounds-checked against NIL before use; untrusted bytes can choose which prefixes are inserted but cannot forge a handle, and get()-based access in the per-address hot loop costs measurable lookup throughput")

use crate::prefix::Prefix;

/// A node index; `u32::MAX` marks "absent".
const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Node<V> {
    children: [u32; 2],
    /// Value if a prefix terminates exactly at this node.
    value: Option<V>,
}

/// Longest-prefix-match trie from [`Prefix`] to `V`.
///
/// IPv4 and IPv6 prefixes share the structure but never collide: callers
/// (see [`crate::bgp::Pfx2As`]) keep one trie per family, mirroring how
/// Routeviews publishes separate v4/v6 `pfx2as` files.
#[derive(Debug, Clone)]
pub struct LpmTrie<V> {
    nodes: Vec<Node<V>>,
    len: usize,
}

impl<V> Default for LpmTrie<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> LpmTrie<V> {
    /// An empty trie (with a root node).
    pub fn new() -> Self {
        Self {
            nodes: vec![Node {
                children: [NIL, NIL],
                value: None,
            }],
            len: 0,
        }
    }

    /// Number of stored prefixes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no prefix is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn bit(key: u128, depth: u8) -> usize {
        ((key >> (127 - depth)) & 1) as usize
    }

    /// Inserts `value` at `prefix`, returning the previous value if any.
    pub fn insert(&mut self, prefix: &Prefix, value: V) -> Option<V> {
        let key = prefix.bits();
        let mut node = 0usize;
        for depth in 0..prefix.len() {
            let b = Self::bit(key, depth);
            let next = self.nodes[node].children[b];
            node = if next == NIL {
                let idx = self.nodes.len() as u32;
                self.nodes.push(Node {
                    children: [NIL, NIL],
                    value: None,
                });
                self.nodes[node].children[b] = idx;
                idx as usize
            } else {
                next as usize
            };
        }
        let old = self.nodes[node].value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Removes the value at exactly `prefix` (node is left in place; the
    /// RIB churns prefixes daily and re-insertion is the common case).
    pub fn remove(&mut self, prefix: &Prefix) -> Option<V> {
        let key = prefix.bits();
        let mut node = 0usize;
        for depth in 0..prefix.len() {
            let next = self.nodes[node].children[Self::bit(key, depth)];
            if next == NIL {
                return None;
            }
            node = next as usize;
        }
        let old = self.nodes[node].value.take();
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// Exact-match lookup.
    pub fn get(&self, prefix: &Prefix) -> Option<&V> {
        let key = prefix.bits();
        let mut node = 0usize;
        for depth in 0..prefix.len() {
            let next = self.nodes[node].children[Self::bit(key, depth)];
            if next == NIL {
                return None;
            }
            node = next as usize;
        }
        self.nodes[node].value.as_ref()
    }

    /// Longest-prefix match for an aligned key (see [`Prefix::align`]).
    /// Returns the value and the matched prefix length.
    pub fn lookup(&self, key: u128, max_len: u8) -> Option<(&V, u8)> {
        let mut node = 0usize;
        let mut best: Option<(&V, u8)> = self.nodes[0].value.as_ref().map(|v| (v, 0));
        for depth in 0..max_len {
            let next = self.nodes[node].children[Self::bit(key, depth)];
            if next == NIL {
                break;
            }
            node = next as usize;
            if let Some(v) = self.nodes[node].value.as_ref() {
                best = Some((v, depth + 1));
            }
        }
        best
    }

    /// Iterates over all stored `(prefix-bits, len, value)` triples in
    /// depth-first order. Family information is up to the caller.
    pub fn iter(&self) -> impl Iterator<Item = (u128, u8, &V)> {
        let mut out = Vec::with_capacity(self.len);
        let mut stack = vec![(0u32, 0u128, 0u8)];
        while let Some((idx, bits, depth)) = stack.pop() {
            let node = &self.nodes[idx as usize];
            if let Some(v) = node.value.as_ref() {
                out.push((bits, depth, v));
            }
            for (b, &child) in node.children.iter().enumerate() {
                if child != NIL {
                    let bit = (b as u128) << (127 - depth);
                    stack.push((child, bits | bit, depth + 1));
                }
            }
        }
        out.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::IpAddr;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn ip(s: &str) -> u128 {
        Prefix::align(s.parse::<IpAddr>().unwrap())
    }

    #[test]
    fn insert_get_remove() {
        let mut t = LpmTrie::new();
        assert_eq!(t.insert(&p("10.0.0.0/8"), "a"), None);
        assert_eq!(t.insert(&p("10.0.0.0/8"), "b"), Some("a"));
        assert_eq!(t.get(&p("10.0.0.0/8")), Some(&"b"));
        assert_eq!(t.len(), 1);
        assert_eq!(t.remove(&p("10.0.0.0/8")), Some("b"));
        assert_eq!(t.remove(&p("10.0.0.0/8")), None);
        assert!(t.is_empty());
    }

    #[test]
    fn longest_match_wins() {
        let mut t = LpmTrie::new();
        t.insert(&p("10.0.0.0/8"), 8);
        t.insert(&p("10.1.0.0/16"), 16);
        t.insert(&p("10.1.2.0/24"), 24);
        assert_eq!(t.lookup(ip("10.1.2.3"), 32), Some((&24, 24)));
        assert_eq!(t.lookup(ip("10.1.9.9"), 32), Some((&16, 16)));
        assert_eq!(t.lookup(ip("10.9.9.9"), 32), Some((&8, 8)));
        assert_eq!(t.lookup(ip("11.0.0.1"), 32), None);
    }

    #[test]
    fn default_route_matches_everything() {
        let mut t = LpmTrie::new();
        t.insert(&p("0.0.0.0/0"), 0);
        assert_eq!(t.lookup(ip("203.0.113.99"), 32), Some((&0, 0)));
    }

    #[test]
    fn removing_specific_falls_back_to_covering() {
        let mut t = LpmTrie::new();
        t.insert(&p("10.0.0.0/8"), 8);
        t.insert(&p("10.1.0.0/16"), 16);
        t.remove(&p("10.1.0.0/16"));
        assert_eq!(t.lookup(ip("10.1.2.3"), 32), Some((&8, 8)));
    }

    #[test]
    fn iter_returns_all_entries() {
        let mut t = LpmTrie::new();
        let prefixes = ["10.0.0.0/8", "10.1.0.0/16", "192.0.2.0/24", "0.0.0.0/0"];
        for (i, s) in prefixes.iter().enumerate() {
            t.insert(&p(s), i);
        }
        let mut got: Vec<(u128, u8)> = t.iter().map(|(b, l, _)| (b, l)).collect();
        got.sort_unstable();
        let mut want: Vec<(u128, u8)> =
            prefixes.iter().map(|s| (p(s).bits(), p(s).len())).collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn v6_depths_work() {
        let mut t = LpmTrie::new();
        t.insert(&p("2001:db8::/32"), "doc");
        t.insert(&p("2001:db8:1::/48"), "sub");
        assert_eq!(t.lookup(ip("2001:db8:1::5"), 128), Some((&"sub", 48)));
        assert_eq!(t.lookup(ip("2001:db8:2::5"), 128), Some((&"doc", 32)));
    }
}
