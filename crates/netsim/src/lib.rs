//! # dps-netsim — the simulated Internet substrate
//!
//! Everything the measurement study needs from "the Internet" that is not
//! DNS itself lives here:
//!
//! * [`prefix`] — IPv4/IPv6 CIDR prefixes with containment and parsing,
//! * [`trie`] — a binary trie providing longest-prefix matching,
//! * [`asn`] — autonomous-system numbers and the AS-to-name registry,
//! * [`bgp`] — a BGP-like RIB with announce/withdraw and multi-origin
//!   support, exporting Routeviews-style `pfx2as` snapshots,
//! * [`history`] — dated archives of those snapshots with origin-flip
//!   diffing (the measurement joins against routing data *at measurement
//!   time*, paper §3.2),
//! * [`clock`] — virtual days and calendar dates for the 1.5-year study,
//! * [`net`] — a deterministic, virtual-time UDP network with fault
//!   injection (loss, corruption, duplication, latency), in the spirit of
//!   smoltcp's fault-injecting examples.
//!
//! The network is request/response oriented: services register a handler at
//! an IP address; client sockets keep their own virtual clock so parallel
//! measurement workers stay deterministic.

pub mod asn;
pub mod bgp;
pub mod chaos;
pub mod clock;
pub mod history;
pub mod net;
pub mod prefix;
pub mod trie;

pub use asn::{AsRegistry, Asn};
pub use bgp::{Pfx2As, Rib};
pub use chaos::{ChaosEvent, ChaosParseError, ChaosSchedule, ChaosWindow, FaultOverride};
pub use clock::{Date, Day};
pub use history::{OriginChange, RibHistory};
pub use net::{FaultProfile, NetMetrics, Network, NetworkStats, RecvError, Socket};
pub use prefix::{Prefix, PrefixParseError};
pub use trie::LpmTrie;
