//! Property tests: every encoding round-trips, the adaptive choice never
//! loses data, and the decoder survives garbage.

use dps_columnar::{decode_u32s, encode_u32s, Schema, StringDict, Table, TableBuilder};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn u32_roundtrip_random(values in proptest::collection::vec(any::<u32>(), 0..2000)) {
        let enc = encode_u32s(&values);
        prop_assert_eq!(decode_u32s(&enc).unwrap(), values);
    }

    #[test]
    fn u32_roundtrip_runny(
        runs in proptest::collection::vec((any::<u32>(), 1usize..50), 0..50)
    ) {
        let values: Vec<u32> = runs.iter().flat_map(|&(v, n)| std::iter::repeat(v).take(n)).collect();
        let enc = encode_u32s(&values);
        prop_assert_eq!(decode_u32s(&enc).unwrap(), values);
    }

    #[test]
    fn u32_roundtrip_monotone(
        start in 0u32..1_000_000,
        steps in proptest::collection::vec(0u32..5, 0..2000)
    ) {
        let mut v = start;
        let mut values = Vec::with_capacity(steps.len());
        for s in steps {
            v = v.saturating_add(s);
            values.push(v);
        }
        let enc = encode_u32s(&values);
        prop_assert_eq!(decode_u32s(&enc).unwrap(), values);
    }

    #[test]
    fn decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_u32s(&bytes);
        let _ = Table::from_bytes(&bytes);
        let _ = StringDict::from_bytes(&bytes);
    }

    #[test]
    fn table_roundtrip(
        rows in proptest::collection::vec((any::<u32>(), any::<u32>(), 0u32..9), 0..500)
    ) {
        let mut b = TableBuilder::new(Schema::new(&["a", "b", "c"]));
        for (a, bb, c) in &rows {
            b.push_row(&[*a, *bb, *c]);
        }
        let t = b.finish();
        let back = Table::from_bytes(&t.to_bytes()).unwrap();
        prop_assert_eq!(back.rows(), rows.len());
        for (i, (a, bb, c)) in rows.iter().enumerate() {
            prop_assert_eq!(back.column(0)[i], *a);
            prop_assert_eq!(back.column(1)[i], *bb);
            prop_assert_eq!(back.column(2)[i], *c);
        }
    }

    #[test]
    fn dict_roundtrip(strings in proptest::collection::vec("[a-z0-9.-]{0,30}", 0..100)) {
        let mut d = StringDict::new();
        let ids: Vec<u32> = strings.iter().map(|s| d.intern(s)).collect();
        let back = StringDict::from_bytes(&d.to_bytes()).unwrap();
        for (s, id) in strings.iter().zip(ids) {
            prop_assert_eq!(back.resolve(id), Some(s.as_str()));
        }
    }
}
