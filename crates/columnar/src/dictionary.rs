//! Dictionary encoding for string columns (SLD names, provider names).

use std::collections::BTreeMap;

/// Id 0 is reserved for "absent" in measurement tables.
pub const NULL_ID: u32 = 0;

/// An append-only string interner with serialisation.
///
/// The reverse index is a `BTreeMap` so nothing on the persistence path
/// can observe hash order; serialisation itself follows insertion order
/// via `strings`.
#[derive(Debug, Default, Clone)]
pub struct StringDict {
    by_string: BTreeMap<String, u32>,
    strings: Vec<String>,
}

impl StringDict {
    /// An empty dictionary; id 0 maps to the empty string ("absent").
    pub fn new() -> Self {
        let mut d = Self::default();
        d.intern("");
        d
    }

    /// Returns the id for `s`, interning it if new.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.by_string.get(s) {
            return id;
        }
        let id = self.strings.len() as u32;
        self.strings.push(s.to_owned());
        self.by_string.insert(s.to_owned(), id);
        id
    }

    /// The id of `s`, if already interned.
    pub fn get(&self, s: &str) -> Option<u32> {
        self.by_string.get(s).copied()
    }

    /// The string for `id`.
    pub fn resolve(&self, id: u32) -> Option<&str> {
        self.strings.get(id as usize).map(String::as_str)
    }

    /// Number of interned strings (including the reserved empty string).
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True if only the reserved entry exists.
    pub fn is_empty(&self) -> bool {
        self.strings.len() <= 1
    }

    /// Serialises as `[varint n][varint len string]…`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        crate::varint::put_u64(&mut out, self.strings.len() as u64);
        for s in &self.strings {
            crate::varint::put_u64(&mut out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
        out
    }

    /// Parses the serialisation produced by [`to_bytes`](Self::to_bytes).
    /// Declared lengths are untrusted: each is `try_from`-checked against
    /// `usize` and each end offset is computed with `checked_add`, so a
    /// corrupt count near `u64::MAX` is a clean `None`, not a truncated
    /// cast or wrapped slice bound.
    pub fn from_bytes(buf: &[u8]) -> Option<Self> {
        let mut pos = 0;
        let n = usize::try_from(crate::varint::get_u64(buf, &mut pos)?).ok()?;
        if n > buf.len().checked_add(1)? {
            return None;
        }
        let mut d = Self::default();
        for _ in 0..n {
            let len = usize::try_from(crate::varint::get_u64(buf, &mut pos)?).ok()?;
            let end = pos.checked_add(len)?;
            let bytes = buf.get(pos..end)?;
            pos = end;
            let s = std::str::from_utf8(bytes).ok()?;
            d.intern(s);
        }
        Some(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = StringDict::new();
        let a = d.intern("cloudflare.com");
        let b = d.intern("cloudflare.com");
        assert_eq!(a, b);
        assert_eq!(d.resolve(a), Some("cloudflare.com"));
        assert_eq!(d.get("cloudflare.com"), Some(a));
        assert_eq!(d.get("nope"), None);
    }

    #[test]
    fn null_id_is_empty_string() {
        let d = StringDict::new();
        assert_eq!(d.resolve(NULL_ID), Some(""));
    }

    #[test]
    fn serialisation_roundtrip() {
        let mut d = StringDict::new();
        for s in ["a", "incapdns.net", "üni-code", ""] {
            d.intern(s);
        }
        let bytes = d.to_bytes();
        let back = StringDict::from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), d.len());
        for id in 0..d.len() as u32 {
            assert_eq!(back.resolve(id), d.resolve(id));
        }
    }

    #[test]
    fn corrupt_input_rejected() {
        assert!(StringDict::from_bytes(&[0xFF; 2]).is_none());
        let mut d = StringDict::new();
        d.intern("hello");
        let mut bytes = d.to_bytes();
        bytes.truncate(bytes.len() - 2);
        assert!(StringDict::from_bytes(&bytes).is_none());
    }

    /// Declared counts and string lengths around u32::MAX (and beyond, up
    /// to what a corrupt varint can say) must be clean `None`s — never a
    /// truncated cast or a wrapped `pos + len` bound.
    #[test]
    fn u32_max_adjacent_lengths_rejected() {
        for n in [
            u64::from(u32::MAX),
            u64::from(u32::MAX) + 1,
            u64::MAX - 1,
            u64::MAX,
        ] {
            // Huge entry count.
            let mut buf = Vec::new();
            crate::varint::put_u64(&mut buf, n);
            assert!(StringDict::from_bytes(&buf).is_none(), "count={n}");

            // Sane count, huge string length.
            let mut buf = Vec::new();
            crate::varint::put_u64(&mut buf, 1);
            crate::varint::put_u64(&mut buf, n);
            buf.push(b'a');
            assert!(StringDict::from_bytes(&buf).is_none(), "len={n}");
        }
    }
}
