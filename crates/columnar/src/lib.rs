//! # dps-columnar — columnar snapshot storage and parallel analysis
//!
//! The paper stores daily measurement tables in Parquet and analyses them
//! with Hadoop. This crate is the laptop-scale substitute: columnar tables
//! with adaptive light-weight encodings (plain / delta-varint / RLE plus
//! dictionary encoding for strings) and a MapReduce-style parallel engine
//! on crossbeam scoped threads.
//!
//! ```
//! use dps_columnar::{Schema, TableBuilder, Table, mapreduce};
//!
//! let schema = Schema::new(&["day", "domain", "asn"]);
//! let mut b = TableBuilder::new(schema.clone());
//! for i in 0..1000u32 {
//!     b.push_row(&[42, i, 13335]);
//! }
//! let bytes = b.finish().to_bytes();
//! let table = Table::from_bytes(&bytes).unwrap();
//! assert_eq!(table.rows(), 1000);
//! assert_eq!(table.column_by_name("asn").unwrap()[999], 13335);
//!
//! // Parallel fold over many tables.
//! let tables = vec![Table::from_bytes(&bytes).unwrap()];
//! let total: u64 = mapreduce::par_map_reduce(
//!     &tables,
//!     |t| t.rows() as u64,
//!     || 0,
//!     |a, b| a + b,
//! );
//! assert_eq!(total, 1000);
//! ```

pub mod dictionary;
pub mod encoding;
pub mod mapreduce;
pub mod table;
pub mod varint;

pub use dictionary::StringDict;
pub use encoding::{decode_u32s, decode_u32s_into, encode_u32s, Encoding};
pub use table::{Schema, Table, TableBuilder};
