//! Columnar tables: a schema of named u32 columns, built row-wise, stored
//! column-wise with adaptive encodings.

use crate::encoding::{decode_u32s, encode_u32s, DecodeError};
use crate::varint;
use std::sync::Arc;

/// Magic bytes of the serialised table format.
const MAGIC: &[u8; 4] = b"DPC1";

/// Named columns, all u32 (ids, dictionary codes, packed IPv4 addresses,
/// day numbers — everything the measurement stores fits u32).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    names: Arc<Vec<String>>,
}

impl Schema {
    /// Builds a schema from column names.
    pub fn new(names: &[&str]) -> Self {
        Self {
            names: Arc::new(names.iter().map(|s| s.to_string()).collect()),
        }
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.names.len()
    }

    /// Column index by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Column names in order.
    pub fn names(&self) -> &[String] {
        &self.names
    }
}

/// Row-wise builder for a [`Table`].
#[derive(Debug, Clone)]
pub struct TableBuilder {
    schema: Schema,
    columns: Vec<Vec<u32>>,
}

impl TableBuilder {
    /// An empty builder for `schema`.
    pub fn new(schema: Schema) -> Self {
        let columns = (0..schema.width()).map(|_| Vec::new()).collect();
        Self { schema, columns }
    }

    /// Appends one row; `values.len()` must equal the schema width.
    pub fn push_row(&mut self, values: &[u32]) {
        assert_eq!(values.len(), self.schema.width(), "row width mismatch");
        for (col, &v) in self.columns.iter_mut().zip(values) {
            col.push(v);
        }
    }

    /// Rows so far.
    pub fn rows(&self) -> usize {
        self.columns.first().map_or(0, Vec::len)
    }

    /// Finishes into an immutable table.
    pub fn finish(self) -> Table {
        Table {
            schema: self.schema,
            columns: self.columns,
        }
    }
}

/// An immutable, decodable columnar table.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Schema,
    columns: Vec<Vec<u32>>,
}

impl Table {
    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.columns.first().map_or(0, Vec::len)
    }

    /// Column by index; a missing column reads as empty.
    pub fn column(&self, i: usize) -> &[u32] {
        self.columns.get(i).map_or(&[], Vec::as_slice)
    }

    /// Column by name.
    pub fn column_by_name(&self, name: &str) -> Option<&[u32]> {
        self.schema.index_of(name).map(|i| self.column(i))
    }

    /// Serialises: magic, column count, per column name + encoded data.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        varint::put_u64(&mut out, self.schema.width() as u64);
        for (name, col) in self.schema.names().iter().zip(&self.columns) {
            varint::put_u64(&mut out, name.len() as u64);
            out.extend_from_slice(name.as_bytes());
            let enc = encode_u32s(col);
            varint::put_u64(&mut out, enc.len() as u64);
            out.extend_from_slice(&enc);
        }
        out
    }

    /// Parses the serialisation produced by [`to_bytes`](Self::to_bytes).
    pub fn from_bytes(buf: &[u8]) -> Result<Self, TableError> {
        Self::decode(buf, None)
    }

    /// Parses only the columns named in `projection` (in the order given),
    /// skipping the payload bytes of every other column. This is what makes
    /// narrow scans over wide archives cheap: the cost is proportional to
    /// the projected columns, not the table width.
    pub fn from_bytes_projected(buf: &[u8], projection: &[&str]) -> Result<Self, TableError> {
        Self::decode(buf, Some(projection))
    }

    fn decode(buf: &[u8], projection: Option<&[&str]>) -> Result<Self, TableError> {
        if buf.get(..4) != Some(MAGIC.as_slice()) {
            return Err(TableError::BadMagic);
        }
        let mut pos = 4usize;
        // Every declared length in the header is untrusted: check it fits
        // `usize` and that the resulting end offset doesn't wrap before
        // slicing. `as usize` would silently truncate a corrupt 64-bit
        // length on 32-bit targets and wrap offsets near the address-space
        // limit everywhere.
        let width = varint::get_u64(buf, &mut pos)
            .and_then(|w| usize::try_from(w).ok())
            .ok_or(TableError::Truncated)?;
        if width > 1024 {
            return Err(TableError::Truncated);
        }
        // Header walk: record every column's name and payload range without
        // decoding anything yet.
        let mut names: Vec<&str> = Vec::with_capacity(width);
        let mut payloads: Vec<(usize, usize)> = Vec::with_capacity(width);
        for _ in 0..width {
            let nlen = varint::get_u64(buf, &mut pos)
                .and_then(|l| usize::try_from(l).ok())
                .ok_or(TableError::Truncated)?;
            let nend = pos.checked_add(nlen).ok_or(TableError::Truncated)?;
            let nbytes = buf.get(pos..nend).ok_or(TableError::Truncated)?;
            pos = nend;
            let name = std::str::from_utf8(nbytes).map_err(|_| TableError::BadName)?;
            names.push(name);
            let clen = varint::get_u64(buf, &mut pos)
                .and_then(|l| usize::try_from(l).ok())
                .ok_or(TableError::Truncated)?;
            let cend = pos.checked_add(clen).ok_or(TableError::Truncated)?;
            buf.get(pos..cend).ok_or(TableError::Truncated)?;
            payloads.push((pos, clen));
            pos = cend;
        }
        // Which columns to materialise, in output order.
        let selected: Vec<usize> = match projection {
            None => (0..width).collect(),
            Some(cols) => cols
                .iter()
                .map(|want| {
                    names
                        .iter()
                        .position(|n| n == want)
                        .ok_or(TableError::UnknownColumn)
                })
                .collect::<Result<_, _>>()?,
        };
        let mut out_names = Vec::with_capacity(selected.len());
        let mut columns = Vec::with_capacity(selected.len());
        let mut rows: Option<usize> = None;
        for &i in &selected {
            let (Some(&(start, len)), Some(&name)) = (payloads.get(i), names.get(i)) else {
                return Err(TableError::Truncated);
            };
            let end = start.checked_add(len).ok_or(TableError::Truncated)?;
            let bytes = buf.get(start..end).ok_or(TableError::Truncated)?;
            let col = decode_u32s(bytes).map_err(TableError::Column)?;
            match rows {
                None => rows = Some(col.len()),
                Some(r) if r != col.len() => return Err(TableError::RaggedColumns),
                _ => {}
            }
            out_names.push(name);
            columns.push(col);
        }
        Ok(Self {
            schema: Schema::new(&out_names),
            columns,
        })
    }

    /// A copy of rows `start..end` (clamped to the table). Row-range
    /// sharding uses this to split one logical page into per-shard
    /// sub-pages with the exact cluster-lease arithmetic.
    pub fn slice_rows(&self, start: usize, end: usize) -> Table {
        let rows = self.rows();
        let start = start.min(rows);
        let end = end.clamp(start, rows);
        Table {
            schema: self.schema.clone(),
            columns: self
                .columns
                .iter()
                .map(|col| col.get(start..end).unwrap_or(&[]).to_vec())
                .collect(),
        }
    }

    /// Vertically stacks `parts` (same schema required) into one table,
    /// preserving row order: part 0's rows first, then part 1's, and so
    /// on. `None` if the schemas disagree or `parts` is empty. This is
    /// the read-side inverse of [`slice_rows`](Self::slice_rows): a page
    /// split into shard sub-pages reassembles byte-for-byte.
    pub fn vstack(parts: &[&Table]) -> Option<Table> {
        let first = parts.first()?;
        let mut columns: Vec<Vec<u32>> = first.columns.clone();
        for part in parts.get(1..)? {
            if part.schema.names() != first.schema.names() {
                return None;
            }
            for (col, more) in columns.iter_mut().zip(&part.columns) {
                col.extend_from_slice(more);
            }
        }
        Some(Table {
            schema: first.schema.clone(),
            columns,
        })
    }

    /// Serialised size in bytes (what "stored size" means in Table 1).
    pub fn encoded_len(&self) -> usize {
        self.to_bytes().len()
    }

    /// Uncompressed size: 4 bytes per cell.
    pub fn raw_len(&self) -> usize {
        4 * self.rows() * self.schema.width()
    }
}

/// Table decode failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableError {
    /// Wrong magic bytes.
    BadMagic,
    /// The buffer ended early.
    Truncated,
    /// A column name was not UTF-8.
    BadName,
    /// Column lengths disagree.
    RaggedColumns,
    /// A projected column name does not exist in the table.
    UnknownColumn,
    /// A column payload failed to decode.
    Column(DecodeError),
}

impl std::fmt::Display for TableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadMagic => write!(f, "not a DPC1 table"),
            Self::Truncated => write!(f, "table truncated"),
            Self::BadName => write!(f, "non-UTF-8 column name"),
            Self::RaggedColumns => write!(f, "column lengths disagree"),
            Self::UnknownColumn => write!(f, "projected column not in table"),
            Self::Column(e) => write!(f, "column decode: {e}"),
        }
    }
}

impl std::error::Error for TableError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut b = TableBuilder::new(Schema::new(&["day", "id", "ip"]));
        for i in 0..500u32 {
            b.push_row(&[17, i, 0x0A00_0000 + i % 7]);
        }
        b.finish()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let t = sample();
        let bytes = t.to_bytes();
        let back = Table::from_bytes(&bytes).unwrap();
        assert_eq!(back.rows(), 500);
        assert_eq!(back.schema().names(), t.schema().names());
        for i in 0..3 {
            assert_eq!(back.column(i), t.column(i));
        }
    }

    #[test]
    fn compresses_well() {
        let t = sample();
        // day column constant, id consecutive, ip 7 distinct values.
        assert!(
            t.encoded_len() < t.raw_len() / 3,
            "encoded {} raw {}",
            t.encoded_len(),
            t.raw_len()
        );
    }

    #[test]
    fn column_by_name() {
        let t = sample();
        assert_eq!(t.column_by_name("day").unwrap()[0], 17);
        assert!(t.column_by_name("nope").is_none());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_panics() {
        let mut b = TableBuilder::new(Schema::new(&["a", "b"]));
        b.push_row(&[1]);
    }

    #[test]
    fn corrupt_bytes_rejected() {
        assert!(matches!(
            Table::from_bytes(b"nope"),
            Err(TableError::BadMagic)
        ));
        let t = sample();
        let mut bytes = t.to_bytes();
        bytes.truncate(bytes.len() / 2);
        assert!(Table::from_bytes(&bytes).is_err());
    }

    #[test]
    fn projected_decode_materialises_requested_columns_only() {
        let t = sample();
        let bytes = t.to_bytes();
        let p = Table::from_bytes_projected(&bytes, &["ip", "day"]).unwrap();
        assert_eq!(p.schema().names(), &["ip".to_string(), "day".to_string()]);
        assert_eq!(p.rows(), 500);
        assert_eq!(
            p.column_by_name("ip").unwrap(),
            t.column_by_name("ip").unwrap()
        );
        assert_eq!(p.column_by_name("day").unwrap()[0], 17);
        assert!(p.column_by_name("id").is_none());
        assert!(matches!(
            Table::from_bytes_projected(&bytes, &["nope"]),
            Err(TableError::UnknownColumn)
        ));
    }

    #[test]
    fn projected_decode_skips_corrupt_unselected_payloads() {
        // Corrupt the *last* column's payload; projecting only the first
        // must still succeed (its bytes are skipped, not decoded), while a
        // full decode fails.
        let t = sample();
        let mut bytes = t.to_bytes();
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF;
        let p = Table::from_bytes_projected(&bytes, &["day"]).unwrap();
        assert_eq!(p.column(0), t.column_by_name("day").unwrap());
    }

    #[test]
    fn empty_table_roundtrips() {
        let t = TableBuilder::new(Schema::new(&["x"])).finish();
        let back = Table::from_bytes(&t.to_bytes()).unwrap();
        assert_eq!(back.rows(), 0);
    }

    /// Corrupt name/payload lengths around u32::MAX (and the u64 range a
    /// hostile varint can declare) must fail cleanly: no truncating casts,
    /// no wrapped `pos + len` slice bounds.
    #[test]
    fn u32_max_adjacent_header_lengths_rejected() {
        let lens = [
            u64::from(u32::MAX) - 1,
            u64::from(u32::MAX),
            u64::from(u32::MAX) + 1,
            u64::MAX - 4,
            u64::MAX,
        ];
        for n in lens {
            // Huge declared name length.
            let mut buf = MAGIC.to_vec();
            varint::put_u64(&mut buf, 1); // width
            varint::put_u64(&mut buf, n); // name length
            buf.push(b'x');
            assert!(Table::from_bytes(&buf).is_err(), "nlen={n}");

            // Huge declared column-payload length.
            let mut buf = MAGIC.to_vec();
            varint::put_u64(&mut buf, 1);
            varint::put_u64(&mut buf, 1);
            buf.push(b'x');
            varint::put_u64(&mut buf, n); // payload length
            assert!(Table::from_bytes(&buf).is_err(), "clen={n}");

            // Huge declared width.
            let mut buf = MAGIC.to_vec();
            varint::put_u64(&mut buf, n);
            assert!(Table::from_bytes(&buf).is_err(), "width={n}");
        }
    }
}
