//! LEB128 variable-length integers and ZigZag signed mapping.

/// Appends `v` as LEB128.
pub fn put_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a LEB128 integer, advancing `pos`. `None` on truncation or
/// overlong encodings (> 10 bytes).
pub fn get_u64(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return None; // would overflow
        }
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// Maps a signed value to unsigned so small magnitudes stay small.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrip_boundaries() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &values {
            put_u64(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(get_u64(&buf, &mut pos), Some(v));
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn truncated_input_returns_none() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 300);
        let mut pos = 0;
        assert_eq!(get_u64(&buf[..1], &mut pos), None);
    }

    #[test]
    fn overlong_encoding_rejected() {
        let buf = [0xFFu8; 11];
        let mut pos = 0;
        assert_eq!(get_u64(&buf, &mut pos), None);
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, -1, 1, -2, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Small magnitudes map to small codes.
        assert!(zigzag(-1) <= 2);
        assert!(zigzag(1) <= 2);
    }
}
