//! Adaptive light-weight column encodings: plain, delta-varint, RLE.
//!
//! The encoder tries each strategy and keeps the smallest — the same
//! pragmatic trick Parquet pulls with its encoding fallbacks. Measurement
//! columns are extremely compressible: day numbers are constant (RLE),
//! domain ids are nearly consecutive (delta), ASN/address columns repeat
//! heavily (RLE after sorting by domain).

use crate::varint;

/// Encoding tag stored in the first byte of an encoded column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Encoding {
    /// 4-byte little-endian values.
    Plain,
    /// ZigZag(delta) varints.
    Delta,
    /// (varint value, varint run-length) pairs.
    Rle,
}

impl Encoding {
    fn tag(self) -> u8 {
        match self {
            Self::Plain => 0,
            Self::Delta => 1,
            Self::Rle => 2,
        }
    }

    fn from_tag(t: u8) -> Option<Self> {
        match t {
            0 => Some(Self::Plain),
            1 => Some(Self::Delta),
            2 => Some(Self::Rle),
            _ => None,
        }
    }
}

/// Encodes a u32 column, picking the smallest representation.
/// Layout: `[tag][varint n][payload…]`.
pub fn encode_u32s(values: &[u32]) -> Vec<u8> {
    let delta = encode_delta(values);
    let rle = encode_rle(values);
    let plain_len = 4 * values.len();

    let (enc, payload) = if rle.len() <= delta.len() && rle.len() <= plain_len {
        (Encoding::Rle, rle)
    } else if delta.len() <= plain_len {
        (Encoding::Delta, delta)
    } else {
        let mut p = Vec::with_capacity(plain_len);
        for v in values {
            p.extend_from_slice(&v.to_le_bytes());
        }
        (Encoding::Plain, p)
    };

    let mut out = Vec::with_capacity(payload.len() + 6);
    out.push(enc.tag());
    varint::put_u64(&mut out, values.len() as u64);
    out.extend_from_slice(&payload);
    out
}

fn encode_delta(values: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len());
    let mut prev = 0i64;
    for &v in values {
        varint::put_u64(&mut out, varint::zigzag(i64::from(v) - prev));
        prev = i64::from(v);
    }
    out
}

fn encode_rle(values: &[u32]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut i = 0;
    while let Some(&v) = values.get(i) {
        let mut run = 1usize;
        while values.get(i + run) == Some(&v) {
            run += 1;
        }
        varint::put_u64(&mut out, u64::from(v));
        varint::put_u64(&mut out, run as u64);
        i += run;
    }
    out
}

/// Decodes a column produced by [`encode_u32s`].
pub fn decode_u32s(buf: &[u8]) -> Result<Vec<u32>, DecodeError> {
    let mut out = Vec::new();
    decode_u32s_into(buf, &mut out)?;
    Ok(out)
}

/// Decodes a column produced by [`encode_u32s`] into `out`, clearing it
/// first. This is the batch path for hot scan loops: the caller keeps one
/// scratch `Vec` per thread and each page decode reuses its allocation
/// instead of growing a fresh one. The whole payload is walked in a
/// single pass per encoding.
///
/// Every declared length is range-checked with `try_from` before any
/// allocation or arithmetic — a corrupt page that claims u32::MAX values
/// (or a length that would truncate on a 32-bit `usize`) is a clean
/// [`DecodeError`], never a huge allocation, wrap-around, or panic.
pub fn decode_u32s_into(buf: &[u8], out: &mut Vec<u32>) -> Result<(), DecodeError> {
    out.clear();
    let mut pos = 0usize;
    let tag = *buf.first().ok_or(DecodeError::Truncated)?;
    pos += 1;
    let enc = Encoding::from_tag(tag).ok_or(DecodeError::BadTag(tag))?;
    let declared = varint::get_u64(buf, &mut pos).ok_or(DecodeError::Truncated)?;
    let n = usize::try_from(declared).map_err(|_| DecodeError::LengthOverflow)?;
    // Guard against absurd declared lengths before allocating: plain and
    // delta need at least one payload byte per value; RLE can legitimately
    // expand massively, so it only gets a global sanity cap.
    let payload = buf.len().saturating_sub(pos);
    match enc {
        Encoding::Plain | Encoding::Delta if n > payload.saturating_add(1).saturating_mul(4) => {
            return Err(DecodeError::Truncated)
        }
        _ if n > (1 << 28) => return Err(DecodeError::Truncated),
        _ => {}
    }
    out.reserve(n);
    match enc {
        Encoding::Plain => {
            let end = pos
                .checked_add(n.checked_mul(4).ok_or(DecodeError::LengthOverflow)?)
                .ok_or(DecodeError::LengthOverflow)?;
            let words = buf.get(pos..end).ok_or(DecodeError::Truncated)?;
            for w in words.chunks_exact(4) {
                let word: [u8; 4] = w.try_into().map_err(|_| DecodeError::Truncated)?;
                out.push(u32::from_le_bytes(word));
            }
        }
        Encoding::Delta => {
            let mut prev = 0i64;
            for _ in 0..n {
                let d = varint::get_u64(buf, &mut pos).ok_or(DecodeError::Truncated)?;
                prev += varint::unzigzag(d);
                let v = u32::try_from(prev).map_err(|_| DecodeError::ValueOutOfRange)?;
                out.push(v);
            }
        }
        Encoding::Rle => {
            let mut filled = 0usize;
            while filled < n {
                let v = varint::get_u64(buf, &mut pos).ok_or(DecodeError::Truncated)?;
                let run_declared = varint::get_u64(buf, &mut pos).ok_or(DecodeError::Truncated)?;
                let run = usize::try_from(run_declared).map_err(|_| DecodeError::BadRun)?;
                let end = filled.checked_add(run).ok_or(DecodeError::BadRun)?;
                if run == 0 || end > n {
                    return Err(DecodeError::BadRun);
                }
                let v = u32::try_from(v).map_err(|_| DecodeError::ValueOutOfRange)?;
                out.extend(std::iter::repeat(v).take(run));
                filled = end;
            }
        }
    }
    Ok(())
}

/// Column decode failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended early.
    Truncated,
    /// Unknown encoding tag.
    BadTag(u8),
    /// An RLE run overran the declared length.
    BadRun,
    /// A decoded value did not fit u32.
    ValueOutOfRange,
    /// A declared length does not fit this platform's `usize` (or its
    /// byte size overflows address arithmetic).
    LengthOverflow,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated => write!(f, "column truncated"),
            Self::BadTag(t) => write!(f, "unknown encoding tag {t}"),
            Self::BadRun => write!(f, "invalid RLE run"),
            Self::ValueOutOfRange => write!(f, "value exceeds u32"),
            Self::LengthOverflow => write!(f, "declared length exceeds platform limits"),
        }
    }
}

impl std::error::Error for DecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_column_uses_rle() {
        let values = vec![42u32; 10_000];
        let enc = encode_u32s(&values);
        assert_eq!(Encoding::from_tag(enc[0]), Some(Encoding::Rle));
        assert!(enc.len() < 16, "len={}", enc.len());
        assert_eq!(decode_u32s(&enc).unwrap(), values);
    }

    #[test]
    fn consecutive_column_uses_delta() {
        let values: Vec<u32> = (0..10_000).collect();
        let enc = encode_u32s(&values);
        assert_eq!(Encoding::from_tag(enc[0]), Some(Encoding::Delta));
        assert!(enc.len() < values.len() * 2, "len={}", enc.len());
        assert_eq!(decode_u32s(&enc).unwrap(), values);
    }

    #[test]
    fn random_column_roundtrips() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(9);
        let values: Vec<u32> = (0..5000).map(|_| rng.gen()).collect();
        let enc = encode_u32s(&values);
        assert_eq!(decode_u32s(&enc).unwrap(), values);
    }

    #[test]
    fn empty_column() {
        let enc = encode_u32s(&[]);
        assert_eq!(decode_u32s(&enc).unwrap(), Vec::<u32>::new());
    }

    #[test]
    fn garbage_rejected_without_panic() {
        assert!(decode_u32s(&[]).is_err());
        assert!(decode_u32s(&[9, 1, 0]).is_err());
        // Declared huge length with tiny buffer.
        let mut buf = vec![0u8];
        crate::varint::put_u64(&mut buf, u64::MAX);
        assert!(decode_u32s(&buf).is_err());
    }

    #[test]
    fn rle_run_overrun_rejected() {
        // tag=RLE, n=2, then value 5 run 3.
        let mut buf = vec![2u8];
        crate::varint::put_u64(&mut buf, 2);
        crate::varint::put_u64(&mut buf, 5);
        crate::varint::put_u64(&mut buf, 3);
        assert_eq!(decode_u32s(&buf), Err(DecodeError::BadRun));
    }

    #[test]
    fn decode_into_reuses_the_buffer() {
        let a = encode_u32s(&[1, 2, 3, 4, 5]);
        let b = encode_u32s(&[7u32; 3]);
        let mut out = Vec::new();
        decode_u32s_into(&a, &mut out).unwrap();
        assert_eq!(out, [1, 2, 3, 4, 5]);
        let cap = out.capacity();
        let ptr = out.as_ptr();
        decode_u32s_into(&b, &mut out).unwrap();
        assert_eq!(out, [7, 7, 7]);
        assert_eq!(out.capacity(), cap, "no reallocation on a smaller page");
        assert_eq!(out.as_ptr(), ptr, "same backing allocation reused");
    }

    /// Declared lengths right around u32::MAX (and past it, into the
    /// 64-bit range a corrupt varint can express) must be clean errors on
    /// every platform — never an `as usize` truncation that makes a huge
    /// length look small, and never a multi-gigabyte allocation.
    #[test]
    fn u32_max_adjacent_declared_lengths_rejected() {
        for n in [
            u64::from(u32::MAX) - 1,
            u64::from(u32::MAX),
            u64::from(u32::MAX) + 1,
            u64::from(u32::MAX) + 2,
            u64::MAX,
        ] {
            for tag in [0u8, 1, 2] {
                let mut buf = vec![tag];
                crate::varint::put_u64(&mut buf, n);
                crate::varint::put_u64(&mut buf, 0); // a little payload
                assert!(
                    decode_u32s(&buf).is_err(),
                    "tag {tag} declared n={n} must be rejected"
                );
            }
        }
    }

    /// An RLE run length near/past u32::MAX cannot wrap the fill cursor.
    #[test]
    fn u32_max_adjacent_rle_runs_rejected() {
        for run in [u64::from(u32::MAX), u64::from(u32::MAX) + 1, u64::MAX] {
            let mut buf = vec![2u8];
            crate::varint::put_u64(&mut buf, 4); // n = 4
            crate::varint::put_u64(&mut buf, 9); // value
            crate::varint::put_u64(&mut buf, run);
            assert_eq!(decode_u32s(&buf), Err(DecodeError::BadRun), "run={run}");
        }
    }
}
