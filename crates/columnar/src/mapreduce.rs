//! A MapReduce-style parallel engine on crossbeam scoped threads — the
//! Hadoop stand-in for analysing hundreds of daily snapshot tables.
//!
//! Work is split into contiguous chunks, one worker per core; each worker
//! folds its chunk locally and the partial results are combined at the
//! barrier. Determinism: `combine` is applied in chunk order, so any
//! associative `combine` yields stable results.

use crossbeam::thread;

/// Number of workers to use (the machine's parallelism, min 1).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Parallel map + fold over `items`.
///
/// * `map` turns one item into an accumulator contribution,
/// * `init` produces the identity accumulator,
/// * `combine` merges two accumulators (must be associative).
pub fn par_map_reduce<T, A, M, I, C>(items: &[T], map: M, init: I, combine: C) -> A
where
    T: Sync,
    A: Send,
    M: Fn(&T) -> A + Sync,
    I: Fn() -> A + Sync,
    C: Fn(A, A) -> A + Sync,
{
    let workers = default_workers().min(items.len().max(1));
    if workers <= 1 || items.len() < 2 {
        return items.iter().map(&map).fold(init(), &combine);
    }
    let chunk = items.len().div_ceil(workers);
    let partials: Vec<A> = thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|slice| s.spawn(|_| slice.iter().map(&map).fold(init(), &combine)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
    .expect("scope");
    partials.into_iter().fold(init(), combine)
}

/// Parallel for-each with an index (used by the measurement worker cloud).
pub fn par_for_each_indexed<T, F>(items: &[T], f: F)
where
    T: Sync,
    F: Fn(usize, &T) + Sync,
{
    let workers = default_workers().min(items.len().max(1));
    if workers <= 1 {
        for (i, t) in items.iter().enumerate() {
            f(i, t);
        }
        return;
    }
    let chunk = items.len().div_ceil(workers);
    thread::scope(|s| {
        for (c, slice) in items.chunks(chunk).enumerate() {
            let f = &f;
            s.spawn(move |_| {
                for (i, t) in slice.iter().enumerate() {
                    f(c * chunk + i, t);
                }
            });
        }
    })
    .expect("scope");
}

/// Parallel map preserving order.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let workers = default_workers().min(items.len().max(1));
    if workers <= 1 {
        return items.iter().map(&f).collect();
    }
    let chunk = items.len().div_ceil(workers);
    let chunks: Vec<Vec<U>> = thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|slice| s.spawn(|_| slice.iter().map(&f).collect::<Vec<U>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
    .expect("scope");
    chunks.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn map_reduce_sums() {
        let items: Vec<u64> = (0..10_000).collect();
        let total = par_map_reduce(&items, |&x| x, || 0u64, |a, b| a + b);
        assert_eq!(total, 10_000 * 9_999 / 2);
    }

    #[test]
    fn map_reduce_empty_and_single() {
        let empty: Vec<u64> = vec![];
        assert_eq!(par_map_reduce(&empty, |&x| x, || 7u64, |a, b| a + b), 7);
        assert_eq!(par_map_reduce(&[5u64], |&x| x, || 0u64, |a, b| a + b), 5);
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u32> = (0..1000).collect();
        let mapped = par_map(&items, |&x| x * 2);
        assert_eq!(mapped, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_visits_every_index_once() {
        let items: Vec<u32> = (0..503).collect();
        let sum = AtomicU64::new(0);
        par_for_each_indexed(&items, |i, &v| {
            assert_eq!(i as u32, v);
            sum.fetch_add(u64::from(v) + 1, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), (1..=503).sum::<u64>());
    }

    #[test]
    fn reduce_with_vec_accumulators() {
        // Non-numeric accumulator: collect histogram.
        let items: Vec<u32> = (0..999).map(|i| i % 10).collect();
        let hist = par_map_reduce(
            &items,
            |&x| {
                let mut h = vec![0u32; 10];
                h[x as usize] += 1;
                h
            },
            || vec![0u32; 10],
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
                a
            },
        );
        assert_eq!(hist.iter().sum::<u32>(), 999);
        assert_eq!(hist[0], 100);
        assert_eq!(hist[9], 99);
    }
}
