//! Real sockets around the [`Frontend`]: UDP datagram loop, length-framed
//! TCP with slowloris deadlines and a connection cap, and a zone-directory
//! watcher for hot reload.
//!
//! Unlike every other crate in the workspace this module touches the
//! actual network stack and the wall clock — it is the one deliberate
//! boundary between the deterministic simulation world and the operating
//! system. Everything decision-shaped stays in [`Frontend`]; this module
//! only moves bytes and time.
//!
//! Zone hot-reload is file-watch based (mtime/length polling): the
//! workspace denies `unsafe`, which rules out installing a SIGHUP handler,
//! and polling behaves identically on every platform. Editing or adding a
//! `*.zone` file in the served directory swaps the zone in place within
//! one poll interval; a file that stops parsing keeps the previous zone
//! and bumps `serve_zone_reload_errors`.

#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use crate::frontend::{Decision, Frontend, FrontendConfig, Transport};
use dps_authdns::server::AuthServer;
use dps_authdns::zonefile;
use dps_dns::Name;
use dps_telemetry::Registry;
use std::collections::HashMap;
use std::io::{self, Read as _, Write as _};
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream, UdpSocket};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime};

/// Largest DNS-over-TCP frame (the 2-byte length prefix's ceiling).
const MAX_TCP_FRAME: usize = u16::MAX as usize;

/// How often blocking socket calls wake up to check the stop flag.
const POLL_TICK: Duration = Duration::from_millis(50);

/// Everything `Server::start` needs.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// UDP listen address (port 0 picks an ephemeral port).
    pub udp_addr: SocketAddr,
    /// TCP listen address.
    pub tcp_addr: SocketAddr,
    /// Directory of `*.zone` master files; the file stem is the default
    /// origin when the file has no `$ORIGIN` directive.
    pub zone_dir: PathBuf,
    /// Decision-pipeline tunables.
    pub frontend: FrontendConfig,
    /// Concurrent TCP connections beyond which new ones are closed.
    pub max_tcp_conns: usize,
    /// A TCP connection idle longer than this is closed (slowloris cap).
    pub tcp_read_deadline: Duration,
    /// Zone-directory poll interval for hot reload.
    pub reload_poll: Duration,
}

impl ServeOptions {
    /// Loopback defaults with ephemeral ports, serving `zone_dir`.
    pub fn new(zone_dir: PathBuf) -> Self {
        let loopback: IpAddr = std::net::Ipv4Addr::LOCALHOST.into();
        Self {
            udp_addr: SocketAddr::new(loopback, 0),
            tcp_addr: SocketAddr::new(loopback, 0),
            zone_dir,
            frontend: FrontendConfig::default(),
            max_tcp_conns: 32,
            tcp_read_deadline: Duration::from_secs(5),
            reload_poll: Duration::from_millis(250),
        }
    }
}

/// Per-file state the reload watcher tracks.
struct FileStamp {
    mtime: SystemTime,
    len: u64,
    origin: Name,
}

/// A running server: three background threads (UDP, TCP accept, reload
/// watcher) plus one detached thread per live TCP connection.
pub struct Server {
    frontend: Arc<Frontend>,
    udp_addr: SocketAddr,
    tcp_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    tcp_live: Arc<AtomicUsize>,
}

impl Server {
    /// Loads the zone directory, binds both sockets, and spawns the loops.
    pub fn start(opts: ServeOptions, registry: &Registry) -> io::Result<Self> {
        let auth = AuthServer::new();
        let stamps = load_zone_dir(&opts.zone_dir, &auth)?;
        registry
            .gauge("serve_zones")
            .set(i64::try_from(auth.zone_count()).unwrap_or(i64::MAX));

        let frontend = Arc::new(Frontend::new(Arc::clone(&auth), opts.frontend, registry));
        let udp = UdpSocket::bind(opts.udp_addr)?;
        udp.set_read_timeout(Some(POLL_TICK))?;
        let tcp = TcpListener::bind(opts.tcp_addr)?;
        tcp.set_nonblocking(true)?;
        let udp_addr = udp.local_addr()?;
        let tcp_addr = tcp.local_addr()?;

        let stop = Arc::new(AtomicBool::new(false));
        let epoch = Instant::now();
        let tcp_live = Arc::new(AtomicUsize::new(0));
        let mut threads = Vec::new();

        {
            let frontend = Arc::clone(&frontend);
            let stop = Arc::clone(&stop);
            threads.push(std::thread::spawn(move || {
                udp_loop(&udp, &frontend, &stop, epoch);
            }));
        }
        {
            let frontend = Arc::clone(&frontend);
            let stop = Arc::clone(&stop);
            let live = Arc::clone(&tcp_live);
            let registry = registry.clone();
            let deadline = opts.tcp_read_deadline;
            let max_conns = opts.max_tcp_conns.max(1);
            threads.push(std::thread::spawn(move || {
                tcp_loop(
                    &tcp, &frontend, &stop, epoch, &live, &registry, deadline, max_conns,
                );
            }));
        }
        {
            let stop = Arc::clone(&stop);
            let registry = registry.clone();
            let dir = opts.zone_dir.clone();
            let poll = opts.reload_poll.max(Duration::from_millis(20));
            threads.push(std::thread::spawn(move || {
                reload_loop(&dir, &auth, stamps, &stop, &registry, poll);
            }));
        }

        Ok(Self {
            frontend,
            udp_addr,
            tcp_addr,
            stop,
            threads,
            tcp_live,
        })
    }

    /// Bound UDP address (with the real port when 0 was requested).
    pub fn udp_addr(&self) -> SocketAddr {
        self.udp_addr
    }

    /// Bound TCP address.
    pub fn tcp_addr(&self) -> SocketAddr {
        self.tcp_addr
    }

    /// The decision pipeline (for tests and in-process callers).
    pub fn frontend(&self) -> &Arc<Frontend> {
        &self.frontend
    }

    /// Live TCP connections right now.
    pub fn tcp_connections(&self) -> usize {
        self.tcp_live.load(Ordering::SeqCst)
    }

    /// Signals every loop to stop and joins the listener threads.
    /// Connection threads notice the flag within one poll tick.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Monotonic nanoseconds since the server started (RRL timebase).
fn now_ns(epoch: Instant) -> u64 {
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Loads every `*.zone` file in `dir` into `auth`. The file stem is the
/// default origin (`examp.le.zone` ⇒ `examp.le`); a `$ORIGIN` directive
/// inside the file wins. Returns the per-file stamps the watcher starts
/// from.
fn load_zone_dir(dir: &Path, auth: &Arc<AuthServer>) -> io::Result<HashMap<PathBuf, FileStamp>> {
    let mut stamps = HashMap::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.extension().and_then(|e| e.to_str()) != Some("zone") {
            continue;
        }
        let meta = std::fs::metadata(&path)?;
        let origin = load_zone_file(&path, auth)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        stamps.insert(
            path,
            FileStamp {
                mtime: meta.modified().unwrap_or(SystemTime::UNIX_EPOCH),
                len: meta.len(),
                origin,
            },
        );
    }
    Ok(stamps)
}

/// Parses one zone file and serves it; returns the zone's origin.
fn load_zone_file(path: &Path, auth: &Arc<AuthServer>) -> Result<Name, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let default_origin: Name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("")
        .parse()
        .map_err(|e| format!("{}: bad origin in file name: {e}", path.display()))?;
    let zone = zonefile::parse_zone(&default_origin, &text)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    let origin = zone.origin().clone();
    auth.serve_zone(Arc::new(parking_lot::RwLock::new(zone)));
    Ok(origin)
}

fn udp_loop(udp: &UdpSocket, frontend: &Frontend, stop: &AtomicBool, epoch: Instant) {
    let mut buf = [0u8; MAX_TCP_FRAME];
    while !stop.load(Ordering::SeqCst) {
        // An Err is a timeout tick (re-check the stop flag) or a transient
        // datagram error (e.g. ICMP unreachable bleed-through) — loop on.
        if let Ok((n, peer)) = udp.recv_from(&mut buf) {
            let payload = buf.get(..n).unwrap_or(&[]);
            if let Decision::Respond(bytes) =
                frontend.handle(Transport::Udp, peer.ip(), now_ns(epoch), payload)
            {
                let _ = udp.send_to(&bytes, peer);
            }
        }
    }
}

// Reason: the accept loop threads every shared handle by reference; a
// one-use config struct would only add indirection.
#[allow(clippy::too_many_arguments)]
fn tcp_loop(
    listener: &TcpListener,
    frontend: &Arc<Frontend>,
    stop: &Arc<AtomicBool>,
    epoch: Instant,
    live: &Arc<AtomicUsize>,
    registry: &Registry,
    deadline: Duration,
    max_conns: usize,
) {
    let conns_refused = registry.counter("serve_tcp_conn_refused");
    let conns_total = registry.counter("serve_tcp_conns");
    let slowloris = registry.counter("serve_tcp_slowloris");
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, peer)) => {
                if live.load(Ordering::SeqCst) >= max_conns {
                    // Over the cap: close immediately, count it.
                    conns_refused.inc();
                    drop(stream);
                    continue;
                }
                conns_total.inc();
                live.fetch_add(1, Ordering::SeqCst);
                let frontend = Arc::clone(frontend);
                let stop = Arc::clone(stop);
                let live = Arc::clone(live);
                let slowloris = slowloris.clone();
                std::thread::spawn(move || {
                    let timed_out =
                        serve_conn(stream, peer.ip(), &frontend, &stop, epoch, deadline);
                    if timed_out {
                        slowloris.inc();
                    }
                    live.fetch_sub(1, Ordering::SeqCst);
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_TICK.min(Duration::from_millis(10)));
            }
            Err(_) => std::thread::sleep(POLL_TICK),
        }
    }
}

/// Serves length-framed queries on one TCP connection until EOF, error,
/// server stop, or the idle deadline (slowloris). Returns whether the
/// deadline fired.
fn serve_conn(
    mut stream: TcpStream,
    peer: IpAddr,
    frontend: &Frontend,
    stop: &AtomicBool,
    epoch: Instant,
    deadline: Duration,
) -> bool {
    // Short socket timeout so the loop stays responsive to `stop`; the
    // slowloris deadline is enforced by accumulated idle time.
    if stream.set_read_timeout(Some(POLL_TICK)).is_err() {
        return false;
    }
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut idle = Duration::ZERO;
    loop {
        if stop.load(Ordering::SeqCst) {
            return false;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return false, // clean EOF
            Ok(n) => {
                idle = Duration::ZERO;
                buf.extend_from_slice(chunk.get(..n).unwrap_or(&[]));
                if buf.len() > MAX_TCP_FRAME + 2 {
                    // A frame can never legitimately grow this large
                    // before completing; treat as hostile and hang up.
                    return false;
                }
                while let Some((frame, rest)) = split_frame(&buf) {
                    let decision = frontend.handle(Transport::Tcp, peer, now_ns(epoch), &frame);
                    buf = rest;
                    if let Decision::Respond(bytes) = decision {
                        if write_frame(&mut stream, &bytes).is_err() {
                            return false;
                        }
                    }
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                idle += POLL_TICK;
                if idle >= deadline {
                    return true; // slowloris: too slow, hang up
                }
            }
            Err(_) => return false,
        }
    }
}

/// Splits one complete `[len u16][payload]` frame off the front of `buf`.
fn split_frame(buf: &[u8]) -> Option<(Vec<u8>, Vec<u8>)> {
    let len = usize::from(u16::from_be_bytes([*buf.first()?, *buf.get(1)?]));
    let frame = buf.get(2..2 + len)?.to_vec();
    let rest = buf.get(2 + len..).unwrap_or(&[]).to_vec();
    Some((frame, rest))
}

/// Writes one length-prefixed frame.
fn write_frame(stream: &mut TcpStream, payload: &[u8]) -> io::Result<()> {
    let len = u16::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    stream.write_all(&len.to_be_bytes())?;
    stream.write_all(payload)?;
    stream.flush()
}

/// Polls the zone directory, reloading changed files, serving new ones,
/// and dropping zones whose files disappeared.
fn reload_loop(
    dir: &Path,
    auth: &Arc<AuthServer>,
    mut stamps: HashMap<PathBuf, FileStamp>,
    stop: &AtomicBool,
    registry: &Registry,
    poll: Duration,
) {
    let reloads = registry.counter("serve_zone_reloads");
    let reload_errors = registry.counter("serve_zone_reload_errors");
    let zones = registry.gauge("serve_zones");
    while !stop.load(Ordering::SeqCst) {
        std::thread::sleep(poll);
        let Ok(entries) = std::fs::read_dir(dir) else {
            continue;
        };
        let mut seen: Vec<PathBuf> = Vec::new();
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("zone") {
                continue;
            }
            let Ok(meta) = std::fs::metadata(&path) else {
                continue;
            };
            let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
            let len = meta.len();
            seen.push(path.clone());
            let changed = match stamps.get(&path) {
                Some(s) => s.mtime != mtime || s.len != len,
                None => true,
            };
            if !changed {
                continue;
            }
            match load_zone_file(&path, auth) {
                Ok(origin) => {
                    reloads.inc();
                    stamps.insert(path, FileStamp { mtime, len, origin });
                }
                Err(_) => {
                    // Keep serving the previous zone contents.
                    reload_errors.inc();
                    if let Some(s) = stamps.get_mut(&path) {
                        s.mtime = mtime;
                        s.len = len;
                    }
                }
            }
        }
        // Files that vanished take their zones with them.
        let gone: Vec<PathBuf> = stamps
            .keys()
            .filter(|p| !seen.contains(p))
            .cloned()
            .collect();
        for path in gone {
            if let Some(s) = stamps.remove(&path) {
                auth.drop_zone(&s.origin);
                reloads.inc();
            }
        }
        zones.set(i64::try_from(auth.zone_count()).unwrap_or(i64::MAX));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dps_dns::{Message, Question, Rcode, RrType};

    fn write_zone(dir: &Path, stem: &str, body: &str) {
        std::fs::write(dir.join(format!("{stem}.zone")), body).unwrap();
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dps-serve-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn start(dir: PathBuf) -> (Server, Registry) {
        let registry = Registry::new();
        let mut opts = ServeOptions::new(dir);
        opts.reload_poll = Duration::from_millis(30);
        let server = Server::start(opts, &registry).unwrap();
        (server, registry)
    }

    fn udp_ask(addr: SocketAddr, msg: &Message) -> Message {
        let sock = UdpSocket::bind("127.0.0.1:0").unwrap();
        sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        sock.send_to(&msg.to_bytes().unwrap(), addr).unwrap();
        let mut buf = [0u8; 65535];
        let (n, _) = sock.recv_from(&mut buf).unwrap();
        Message::parse(&buf[..n]).unwrap()
    }

    fn q(name: &str, qtype: RrType) -> Message {
        Message::query(7, Question::new(name.parse().unwrap(), qtype))
    }

    #[test]
    fn serves_zone_dir_over_udp() {
        let dir = temp_dir("udp");
        write_zone(&dir, "examp.le", "@ IN A 10.1.2.3\n");
        let (server, _reg) = start(dir.clone());
        let r = udp_ask(server.udp_addr(), &q("examp.le", RrType::A));
        assert_eq!(r.header.rcode, Rcode::NoError);
        assert_eq!(r.answers.len(), 1);
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serves_over_tcp_with_framing() {
        let dir = temp_dir("tcp");
        write_zone(&dir, "examp.le", "@ IN A 10.1.2.3\n");
        let (server, _reg) = start(dir.clone());
        let mut stream = TcpStream::connect(server.tcp_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let query = q("examp.le", RrType::A).to_bytes().unwrap();
        write_frame(&mut stream, &query).unwrap();
        let mut len = [0u8; 2];
        stream.read_exact(&mut len).unwrap();
        let mut body = vec![0u8; usize::from(u16::from_be_bytes(len))];
        stream.read_exact(&mut body).unwrap();
        let r = Message::parse(&body).unwrap();
        assert_eq!(r.answers.len(), 1);
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hot_reload_swaps_zone_contents() {
        let dir = temp_dir("reload");
        write_zone(&dir, "examp.le", "@ IN A 10.1.2.3\n");
        let (server, reg) = start(dir.clone());
        let r = udp_ask(server.udp_addr(), &q("www.examp.le", RrType::A));
        assert_eq!(r.header.rcode, Rcode::NxDomain);
        // Rewrite the file; the watcher should pick it up.
        std::thread::sleep(Duration::from_millis(50));
        write_zone(&dir, "examp.le", "@ IN A 10.1.2.3\nwww IN A 10.1.2.4\n");
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let r = udp_ask(server.udp_addr(), &q("www.examp.le", RrType::A));
            if r.header.rcode == Rcode::NoError && !r.answers.is_empty() {
                break;
            }
            assert!(Instant::now() < deadline, "reload never happened");
            std::thread::sleep(Duration::from_millis(30));
        }
        assert!(reg.snapshot().to_text().contains("serve_zone_reloads"));
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn broken_reload_keeps_previous_zone() {
        let dir = temp_dir("badreload");
        write_zone(&dir, "examp.le", "@ IN A 10.1.2.3\n");
        let (server, reg) = start(dir.clone());
        std::thread::sleep(Duration::from_millis(50));
        write_zone(&dir, "examp.le", "@ IN A not-an-ip\n");
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let snap = reg.snapshot().to_text();
            if snap.contains("serve_zone_reload_errors 1") {
                break;
            }
            assert!(Instant::now() < deadline, "error never counted: {snap}");
            std::thread::sleep(Duration::from_millis(30));
        }
        // Old contents still served.
        let r = udp_ask(server.udp_addr(), &q("examp.le", RrType::A));
        assert_eq!(r.answers.len(), 1);
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn slowloris_connection_is_closed() {
        let dir = temp_dir("slowloris");
        write_zone(&dir, "examp.le", "@ IN A 10.1.2.3\n");
        let registry = Registry::new();
        let mut opts = ServeOptions::new(dir.clone());
        opts.tcp_read_deadline = Duration::from_millis(120);
        let server = Server::start(opts, &registry).unwrap();
        let mut stream = TcpStream::connect(server.tcp_addr()).unwrap();
        // Send half a length prefix, then stall.
        stream.write_all(&[0x00]).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut buf = [0u8; 16];
        // The server must hang up (read returns Ok(0)) rather than wait
        // forever for the rest of the frame.
        let n = stream.read(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "connection should be closed");
        let snap = registry.snapshot().to_text();
        assert!(snap.contains("serve_tcp_slowloris 1"), "{snap}");
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn connection_cap_refuses_extras() {
        let dir = temp_dir("conncap");
        write_zone(&dir, "examp.le", "@ IN A 10.1.2.3\n");
        let registry = Registry::new();
        let mut opts = ServeOptions::new(dir.clone());
        opts.max_tcp_conns = 1;
        opts.tcp_read_deadline = Duration::from_secs(5);
        let server = Server::start(opts, &registry).unwrap();
        let _first = TcpStream::connect(server.tcp_addr()).unwrap();
        // Give the accept loop time to register the first connection.
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.tcp_connections() < 1 {
            assert!(Instant::now() < deadline, "first connection not accepted");
            std::thread::sleep(Duration::from_millis(10));
        }
        let mut second = TcpStream::connect(server.tcp_addr()).unwrap();
        second
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut buf = [0u8; 16];
        let n = second.read(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "over-cap connection should be closed immediately");
        let snap = registry.snapshot().to_text();
        assert!(snap.contains("serve_tcp_conn_refused 1"), "{snap}");
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pipelined_tcp_queries_in_one_write() {
        let dir = temp_dir("pipeline");
        write_zone(&dir, "examp.le", "@ IN A 10.1.2.3\n");
        let (server, _reg) = start(dir.clone());
        let mut stream = TcpStream::connect(server.tcp_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let query = q("examp.le", RrType::A).to_bytes().unwrap();
        // Two frames in a single write.
        let mut batch = Vec::new();
        let len = u16::try_from(query.len()).unwrap().to_be_bytes();
        batch.extend_from_slice(&len);
        batch.extend_from_slice(&query);
        batch.extend_from_slice(&len);
        batch.extend_from_slice(&query);
        stream.write_all(&batch).unwrap();
        for _ in 0..2 {
            let mut lb = [0u8; 2];
            stream.read_exact(&mut lb).unwrap();
            let mut body = vec![0u8; usize::from(u16::from_be_bytes(lb))];
            stream.read_exact(&mut body).unwrap();
            assert_eq!(Message::parse(&body).unwrap().answers.len(), 1);
        }
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
