//! The hostile-input decision pipeline: raw payload in, verdict out.
//!
//! Everything between the socket and [`AuthServer::answer`] lives here as
//! a pure function of `(transport, client, now_ns, payload)` — no clocks,
//! no I/O — so every degradation behaviour is unit-testable without a
//! socket. The pipeline, in order:
//!
//! 1. raw QR bit set ⇒ drop (response-to-response loop prevention)
//! 2. over the in-flight budget ⇒ minimal REFUSED (load shedding)
//! 3. unparseable ⇒ FORMERR echoing the transaction id
//! 4. EDNS malformed ⇒ FORMERR; unsupported version ⇒ BADVERS
//! 5. non-Query opcode ⇒ NOTIMP; QDCOUNT ≠ 1 ⇒ FORMERR
//! 6. `AuthServer::answer` produces the real response
//! 7. UDP only: RRL verdict (send / drop / slip-TC)
//! 8. encode, truncating with TC at the negotiated payload size
//!
//! A query is *never* answered with a panic: this module is in
//! dps-analyzer's panic-safety scope and the lints below deny the escape
//! hatches.

#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use crate::edns::{self, Edns, CLASSIC_UDP_SIZE};
use crate::rrl::{RrlConfig, RrlDecision, RrlTable};
use dps_authdns::server::AuthServer;
use dps_dns::{Header, Message, Opcode, Rcode, Record};
use dps_telemetry::{Counter, Registry};
use parking_lot::Mutex;
use std::net::IpAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Which transport a payload arrived on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// Datagram: responses capped at the negotiated EDNS size, RRL applies.
    Udp,
    /// Stream: handshake-verified source, 64 KiB frames, no RRL.
    Tcp,
}

/// The pipeline's verdict for one payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decision {
    /// Send these bytes back to the client.
    Respond(Vec<u8>),
    /// Send nothing.
    Drop(DropReason),
}

/// Why a payload produced no response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// The QR bit was set: answering a response invites forwarding loops.
    QrSet,
    /// The client is over its RRL budget and this was not a slip slot.
    RateLimited,
    /// Even the fallback response failed to encode.
    Internal,
}

/// Tunables for the pipeline.
#[derive(Debug, Clone, Copy)]
pub struct FrontendConfig {
    /// Response-rate-limiter settings (UDP only).
    pub rrl: RrlConfig,
    /// Largest UDP payload this server sends or advertises, whatever the
    /// client offers (RFC 6891 server-side cap).
    pub max_udp_size: u16,
    /// Concurrent queries beyond which new ones get minimal REFUSED.
    pub max_inflight: usize,
}

impl Default for FrontendConfig {
    fn default() -> Self {
        Self {
            rrl: RrlConfig::default(),
            max_udp_size: 4096,
            max_inflight: 64,
        }
    }
}

/// Telemetry counters, one per observable behaviour.
struct Counters {
    queries_udp: Counter,
    queries_tcp: Counter,
    responses: Counter,
    formerr: Counter,
    notimp: Counter,
    badvers: Counter,
    shed_refused: Counter,
    rrl_dropped: Counter,
    rrl_slipped: Counter,
    truncated: Counter,
    dropped_qr: Counter,
    servfail: Counter,
}

impl Counters {
    fn new(reg: &Registry) -> Self {
        Self {
            queries_udp: reg.counter("serve_queries_udp"),
            queries_tcp: reg.counter("serve_queries_tcp"),
            responses: reg.counter("serve_responses"),
            formerr: reg.counter("serve_formerr"),
            notimp: reg.counter("serve_notimp"),
            badvers: reg.counter("serve_badvers"),
            shed_refused: reg.counter("serve_shed_refused"),
            rrl_dropped: reg.counter("serve_rrl_dropped"),
            rrl_slipped: reg.counter("serve_rrl_slipped"),
            truncated: reg.counter("serve_truncated"),
            dropped_qr: reg.counter("serve_dropped_qr"),
            servfail: reg.counter("serve_servfail"),
        }
    }
}

/// Holds one unit of the in-flight budget; released on drop.
pub struct InflightSlot<'a> {
    gauge: &'a AtomicUsize,
}

impl<'a> InflightSlot<'a> {
    fn acquire(gauge: &'a AtomicUsize, max: usize) -> Option<Self> {
        let prev = gauge.fetch_add(1, Ordering::SeqCst);
        if prev >= max {
            gauge.fetch_sub(1, Ordering::SeqCst);
            return None;
        }
        Some(Self { gauge })
    }
}

impl Drop for InflightSlot<'_> {
    fn drop(&mut self) {
        self.gauge.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The socket-independent server front-end.
pub struct Frontend {
    server: Arc<AuthServer>,
    config: FrontendConfig,
    rrl: Mutex<RrlTable>,
    inflight: AtomicUsize,
    counters: Counters,
}

impl Frontend {
    /// A front-end answering from `server`, counting into `registry`.
    pub fn new(server: Arc<AuthServer>, config: FrontendConfig, registry: &Registry) -> Self {
        Self {
            server,
            config,
            rrl: Mutex::new(RrlTable::new(config.rrl)),
            inflight: AtomicUsize::new(0),
            counters: Counters::new(registry),
        }
    }

    /// The authoritative core this front-end answers from.
    pub fn server(&self) -> &Arc<AuthServer> {
        &self.server
    }

    /// Takes one unit of the in-flight budget, or `None` when the server
    /// is saturated. Exposed so socket loops (and tests) can hold slots
    /// across longer units of work than a single [`Self::handle`] call.
    pub fn acquire_slot(&self) -> Option<InflightSlot<'_>> {
        InflightSlot::acquire(&self.inflight, self.config.max_inflight.max(1))
    }

    /// Runs one payload through the full pipeline.
    pub fn handle(
        &self,
        transport: Transport,
        client: IpAddr,
        now_ns: u64,
        payload: &[u8],
    ) -> Decision {
        match transport {
            Transport::Udp => self.counters.queries_udp.inc(),
            Transport::Tcp => self.counters.queries_tcp.inc(),
        }
        // Loop prevention before any work: never answer a response.
        if payload.get(2).is_some_and(|b| b & 0x80 != 0) {
            self.counters.dropped_qr.inc();
            return Decision::Drop(DropReason::QrSet);
        }
        let id = u16::from_be_bytes([
            payload.first().copied().unwrap_or(0),
            payload.get(1).copied().unwrap_or(0),
        ]);
        // Load shedding happens before parsing: the point is to stay cheap
        // when saturated, so the REFUSED is built from the raw id alone.
        let Some(_slot) = self.acquire_slot() else {
            self.counters.shed_refused.inc();
            return self.finish(
                transport,
                client,
                now_ns,
                bare_response(id, Rcode::Refused),
                None,
                0,
            );
        };
        let msg = match Message::parse(payload) {
            Ok(m) => m,
            Err(_) => {
                self.counters.formerr.inc();
                return self.finish(
                    transport,
                    client,
                    now_ns,
                    bare_response(id, Rcode::FormErr),
                    None,
                    0,
                );
            }
        };
        if msg.header.qr {
            self.counters.dropped_qr.inc();
            return Decision::Drop(DropReason::QrSet);
        }
        let edns = match edns::extract(&msg) {
            Ok(e) => e,
            Err(_) => {
                self.counters.formerr.inc();
                let mut resp = msg.answer_template();
                resp.header.rcode = Rcode::FormErr;
                // No OPT on the way out: we could not trust the one given.
                return self.finish(transport, client, now_ns, resp, None, 0);
            }
        };
        if let Some(e) = edns {
            if e.version > edns::SUPPORTED_VERSION {
                self.counters.badvers.inc();
                // BADVERS = extended rcode 16: header rcode 0, ext octet 1.
                return self.finish(
                    transport,
                    client,
                    now_ns,
                    msg.answer_template(),
                    edns,
                    edns::BADVERS_EXT,
                );
            }
        }
        if msg.header.opcode != Opcode::Query {
            self.counters.notimp.inc();
            let mut resp = msg.answer_template();
            resp.header.rcode = Rcode::NotImp;
            return self.finish(transport, client, now_ns, resp, edns, 0);
        }
        if msg.questions.len() != 1 {
            self.counters.formerr.inc();
            let mut resp = msg.answer_template();
            resp.header.rcode = Rcode::FormErr;
            return self.finish(transport, client, now_ns, resp, edns, 0);
        }
        match self.server.answer(&msg) {
            Some(resp) => self.finish(transport, client, now_ns, resp, edns, 0),
            // answer() only declines qr/multi-question messages, both
            // already excluded; treat a decline as an internal drop.
            None => Decision::Drop(DropReason::Internal),
        }
    }

    /// Applies RRL, appends the response OPT, encodes within the
    /// transport's payload limit (setting TC when the full response does
    /// not fit), and falls back to SERVFAIL if encoding fails.
    fn finish(
        &self,
        transport: Transport,
        client: IpAddr,
        now_ns: u64,
        resp: Message,
        edns: Option<Edns>,
        ext_rcode: u8,
    ) -> Decision {
        let limit = match transport {
            Transport::Tcp => usize::from(u16::MAX),
            Transport::Udp => usize::from(edns.map_or(CLASSIC_UDP_SIZE, |e| {
                e.udp_size.min(self.config.max_udp_size)
            })),
        };
        let mut force_tc = false;
        if transport == Transport::Udp {
            match self.rrl.lock().check(client, now_ns) {
                RrlDecision::Send => {}
                RrlDecision::Drop => {
                    self.counters.rrl_dropped.inc();
                    return Decision::Drop(DropReason::RateLimited);
                }
                RrlDecision::SlipTc => {
                    self.counters.rrl_slipped.inc();
                    force_tc = true;
                }
            }
        }
        let opt = edns.map(|_| edns::opt_record(self.config.max_udp_size, ext_rcode));
        match encode_with_limit(&resp, opt.as_ref(), limit, force_tc) {
            Ok((bytes, tc)) => {
                if tc && !force_tc {
                    self.counters.truncated.inc();
                }
                self.counters.responses.inc();
                Decision::Respond(bytes)
            }
            Err(_) => {
                self.counters.servfail.inc();
                let fallback = bare_response(resp.header.id, Rcode::ServFail);
                match fallback.to_bytes() {
                    Ok(bytes) => Decision::Respond(bytes),
                    Err(_) => Decision::Drop(DropReason::Internal),
                }
            }
        }
    }
}

/// A header-only response: echoed id, QR set, no question (used when the
/// query was not parsed, or when shedding before parsing).
fn bare_response(id: u16, rcode: Rcode) -> Message {
    let mut header = Header::query(id);
    header.qr = true;
    header.rcode = rcode;
    Message {
        header,
        questions: Vec::new(),
        answers: Vec::new(),
        authorities: Vec::new(),
        additionals: Vec::new(),
    }
}

/// Encodes `resp` (plus the server's OPT, if any) within `limit` bytes.
/// When the full encoding does not fit — or `force_tc` asks for the
/// minimal form outright — re-encodes as question + OPT with TC set.
/// Returns the bytes and whether TC ended up set.
fn encode_with_limit(
    resp: &Message,
    opt: Option<&Record>,
    limit: usize,
    force_tc: bool,
) -> Result<(Vec<u8>, bool), dps_dns::WireError> {
    if !force_tc {
        let mut full = resp.clone();
        if let Some(o) = opt {
            full.additionals.push(o.clone());
        }
        let bytes = full.to_bytes()?;
        if bytes.len() <= limit {
            return Ok((bytes, full.header.tc));
        }
    }
    let mut header = resp.header.clone();
    header.tc = true;
    let truncated = Message {
        header,
        questions: resp.questions.clone(),
        answers: Vec::new(),
        authorities: Vec::new(),
        additionals: opt.cloned().into_iter().collect(),
    };
    Ok((truncated.to_bytes()?, true))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dps_authdns::catalog::ZoneHandle;
    use dps_authdns::zone::Zone;
    use dps_dns::{Name, Question, RData, RrType};
    use parking_lot::RwLock;
    use std::net::Ipv4Addr;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn client() -> IpAddr {
        "198.51.100.9".parse().unwrap()
    }

    fn handle(z: Zone) -> ZoneHandle {
        Arc::new(RwLock::new(z))
    }

    /// A server for examp.le with one A record and one fat TXT set.
    fn test_server() -> Arc<AuthServer> {
        let srv = AuthServer::new();
        let mut z = Zone::new(n("examp.le"));
        z.add(n("examp.le"), RData::A(Ipv4Addr::new(10, 0, 0, 1)));
        for i in 0..40 {
            z.add(
                n("big.examp.le"),
                RData::Txt(vec![format!("padding-{i}-{}", "x".repeat(40)).into_bytes()]),
            );
        }
        srv.serve_zone(handle(z));
        srv
    }

    fn frontend_with(config: FrontendConfig) -> Frontend {
        Frontend::new(test_server(), config, &Registry::new())
    }

    fn frontend() -> Frontend {
        frontend_with(FrontendConfig {
            rrl: RrlConfig {
                rate: 1000,
                burst: 1000,
                slip: 2,
                max_clients: 64,
            },
            ..FrontendConfig::default()
        })
    }

    fn respond(f: &Frontend, transport: Transport, payload: &[u8]) -> Message {
        match f.handle(transport, client(), 0, payload) {
            Decision::Respond(bytes) => Message::parse(&bytes).expect("parseable response"),
            Decision::Drop(r) => panic!("expected response, got drop: {r:?}"),
        }
    }

    fn query(qname: &str, qtype: RrType) -> Message {
        Message::query(0x4242, Question::new(n(qname), qtype))
    }

    fn with_opt(mut q: Message, udp_size: u16) -> Message {
        q.additionals.push(edns::opt_record(udp_size, 0));
        q
    }

    #[test]
    fn normal_answer_roundtrips() {
        let f = frontend();
        let q = query("examp.le", RrType::A);
        let r = respond(&f, Transport::Udp, &q.to_bytes().unwrap());
        assert_eq!(r.header.id, 0x4242);
        assert!(r.header.qr && r.header.aa);
        assert_eq!(r.header.rcode, Rcode::NoError);
        assert_eq!(r.answers.len(), 1);
        // No EDNS in ⇒ no OPT out.
        assert!(r.additionals.is_empty());
    }

    #[test]
    fn garbage_gets_formerr_with_echoed_id() {
        let f = frontend();
        let r = respond(&f, Transport::Udp, &[0xDE, 0xAD, 0x00]);
        assert_eq!(r.header.id, 0xDEAD);
        assert!(r.header.qr);
        assert_eq!(r.header.rcode, Rcode::FormErr);
        // Even a single byte is answered, id floor 0.
        let r = respond(&f, Transport::Udp, &[0x7F]);
        assert_eq!(r.header.id, 0x7F00);
        assert_eq!(r.header.rcode, Rcode::FormErr);
    }

    #[test]
    fn empty_payload_gets_formerr_id_zero() {
        let f = frontend();
        let r = respond(&f, Transport::Udp, &[]);
        assert_eq!(r.header.id, 0);
        assert_eq!(r.header.rcode, Rcode::FormErr);
    }

    #[test]
    fn responses_are_dropped_not_answered() {
        let f = frontend();
        let mut q = query("examp.le", RrType::A);
        q.header.qr = true;
        let d = f.handle(Transport::Udp, client(), 0, &q.to_bytes().unwrap());
        assert_eq!(d, Decision::Drop(DropReason::QrSet));
    }

    #[test]
    fn non_query_opcode_gets_notimp() {
        let f = frontend();
        let mut q = query("examp.le", RrType::A);
        q.header.opcode = Opcode::Other(5); // UPDATE
        let r = respond(&f, Transport::Udp, &q.to_bytes().unwrap());
        assert_eq!(r.header.rcode, Rcode::NotImp);
    }

    #[test]
    fn zero_questions_gets_formerr() {
        let f = frontend();
        let mut q = query("examp.le", RrType::A);
        q.questions.clear();
        let r = respond(&f, Transport::Udp, &q.to_bytes().unwrap());
        assert_eq!(r.header.rcode, Rcode::FormErr);
    }

    #[test]
    fn two_questions_gets_formerr() {
        let f = frontend();
        let mut q = query("examp.le", RrType::A);
        q.questions.push(Question::new(n("examp.le"), RrType::Aaaa));
        let r = respond(&f, Transport::Udp, &q.to_bytes().unwrap());
        assert_eq!(r.header.rcode, Rcode::FormErr);
    }

    #[test]
    fn edns_echoed_with_server_size() {
        let f = frontend();
        let q = with_opt(query("examp.le", RrType::A), 1232);
        let r = respond(&f, Transport::Udp, &q.to_bytes().unwrap());
        let opt: Vec<_> = r
            .additionals
            .iter()
            .filter(|rec| rec.rtype() == RrType::Opt)
            .collect();
        assert_eq!(opt.len(), 1);
        assert_eq!(opt[0].class.code(), 4096, "server advertises its own cap");
    }

    #[test]
    fn malformed_opt_gets_formerr() {
        let f = frontend();
        let mut q = query("examp.le", RrType::A);
        let mut opt = edns::opt_record(1232, 0);
        opt.rdata = RData::Raw {
            rtype: RrType::Opt.code(),
            data: vec![0, 3, 0, 10, 0xAA], // declared 10, present 1
        };
        q.additionals.push(opt);
        let r = respond(&f, Transport::Udp, &q.to_bytes().unwrap());
        assert_eq!(r.header.rcode, Rcode::FormErr);
        assert!(r.additionals.is_empty(), "no OPT echoed on malformed OPT");
    }

    #[test]
    fn duplicate_opt_gets_formerr() {
        let f = frontend();
        let mut q = query("examp.le", RrType::A);
        q.additionals.push(edns::opt_record(1232, 0));
        q.additionals.push(edns::opt_record(1232, 0));
        let r = respond(&f, Transport::Udp, &q.to_bytes().unwrap());
        assert_eq!(r.header.rcode, Rcode::FormErr);
    }

    #[test]
    fn unsupported_edns_version_gets_badvers() {
        let f = frontend();
        let mut q = query("examp.le", RrType::A);
        let mut opt = edns::opt_record(1232, 0);
        opt.ttl = 1 << 16; // version 1
        q.additionals.push(opt);
        let r = respond(&f, Transport::Udp, &q.to_bytes().unwrap());
        assert_eq!(r.header.rcode, Rcode::NoError, "low rcode bits are zero");
        assert!(r.answers.is_empty());
        let opt = r
            .additionals
            .iter()
            .find(|rec| rec.rtype() == RrType::Opt)
            .expect("OPT present");
        assert_eq!(opt.ttl >> 24, u32::from(edns::BADVERS_EXT));
    }

    #[test]
    fn oversized_answer_truncates_at_advertised_size() {
        let f = frontend();
        // ~40 TXT records ≫ 512 bytes.
        for (advertised, expect_tc) in [(512u16, true), (1232, true), (4096, false)] {
            let q = with_opt(query("big.examp.le", RrType::Txt), advertised);
            let d = f.handle(Transport::Udp, client(), 0, &q.to_bytes().unwrap());
            let Decision::Respond(bytes) = d else {
                panic!("expected response at size {advertised}");
            };
            assert!(
                bytes.len() <= usize::from(advertised),
                "size {advertised}: len {}",
                bytes.len()
            );
            let r = Message::parse(&bytes).unwrap();
            assert_eq!(r.header.tc, expect_tc, "advertised {advertised}");
            if expect_tc {
                assert!(r.answers.is_empty(), "TC strips the record sections");
                assert_eq!(r.questions.len(), 1, "TC keeps the question");
            } else {
                assert_eq!(r.answers.len(), 40);
            }
        }
    }

    #[test]
    fn no_edns_truncates_at_512() {
        let f = frontend();
        let q = query("big.examp.le", RrType::Txt);
        let Decision::Respond(bytes) =
            f.handle(Transport::Udp, client(), 0, &q.to_bytes().unwrap())
        else {
            panic!("expected response");
        };
        assert!(bytes.len() <= 512);
        assert!(Message::parse(&bytes).unwrap().header.tc);
    }

    #[test]
    fn tcp_carries_the_oversized_answer_whole() {
        let f = frontend();
        let q = query("big.examp.le", RrType::Txt);
        let r = respond(&f, Transport::Tcp, &q.to_bytes().unwrap());
        assert!(!r.header.tc);
        assert_eq!(r.answers.len(), 40);
    }

    #[test]
    fn rrl_drops_then_slips_minimal_tc() {
        let f = frontend_with(FrontendConfig {
            rrl: RrlConfig {
                rate: 1,
                burst: 1,
                slip: 2,
                max_clients: 8,
            },
            ..FrontendConfig::default()
        });
        let q = query("examp.le", RrType::A).to_bytes().unwrap();
        // Burst of 1: first response goes out whole.
        let r = respond(&f, Transport::Udp, &q);
        assert_eq!(r.answers.len(), 1);
        // Limited: first drop, then slip as minimal TC.
        let d = f.handle(Transport::Udp, client(), 0, &q);
        assert_eq!(d, Decision::Drop(DropReason::RateLimited));
        let r = respond(&f, Transport::Udp, &q);
        assert!(r.header.tc, "slip response is truncated");
        assert!(r.answers.is_empty(), "slip response carries no records");
        // TCP is exempt from RRL.
        let r = respond(&f, Transport::Tcp, &q);
        assert_eq!(r.answers.len(), 1);
    }

    #[test]
    fn saturated_server_sheds_with_refused() {
        let f = frontend_with(FrontendConfig {
            max_inflight: 2,
            ..FrontendConfig::default()
        });
        let _a = f.acquire_slot().expect("slot 1");
        let _b = f.acquire_slot().expect("slot 2");
        assert!(f.acquire_slot().is_none(), "budget exhausted");
        let q = query("examp.le", RrType::A).to_bytes().unwrap();
        let r = respond(&f, Transport::Udp, &q);
        assert_eq!(r.header.rcode, Rcode::Refused);
        assert!(r.questions.is_empty(), "shed response skips parsing");
        drop(_a);
        let r = respond(&f, Transport::Udp, &q);
        assert_eq!(r.header.rcode, Rcode::NoError);
    }

    #[test]
    fn unserved_zone_refused_passes_through() {
        let f = frontend();
        let q = query("www.unknown.tld", RrType::A);
        let r = respond(&f, Transport::Udp, &q.to_bytes().unwrap());
        assert_eq!(r.header.rcode, Rcode::Refused);
    }

    #[test]
    fn behaviours_are_counted() {
        let reg = Registry::new();
        let f = Frontend::new(test_server(), FrontendConfig::default(), &reg);
        let q = query("examp.le", RrType::A).to_bytes().unwrap();
        let _ = f.handle(Transport::Udp, client(), 0, &q);
        let _ = f.handle(Transport::Udp, client(), 0, &[0xFF, 0xFF, 0x00]);
        let snap = reg.snapshot();
        let text = snap.to_text();
        assert!(text.contains("serve_queries_udp 2"), "{text}");
        assert!(text.contains("serve_formerr 1"), "{text}");
        assert!(text.contains("serve_responses 2"), "{text}");
    }
}
