//! EDNS(0) OPT pseudo-record handling (RFC 6891).
//!
//! The wire decoder surfaces OPT records as [`RData::Raw`] with type code
//! 41; this module interprets the pieces the server cares about — the
//! advertised UDP payload size (the record's CLASS field), the version
//! (second TTL octet) — and validates the parts that make an OPT
//! *malformed* in the RFC's sense: a non-root owner name, more than one
//! OPT per message, or an option area whose TLV structure does not add up.
//! Malformed OPT ⇒ FORMERR; an unsupported version ⇒ BADVERS.

// Untrusted-input module: OPT records arrive from arbitrary clients over
// real sockets; every check returns a typed verdict, never panics
// (enforced by dps-analyzer's panic-safety family and these lints).
#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use dps_dns::{Class, Message, RData, Record, RrType};

/// The minimum UDP payload size a requestor may advertise (RFC 6891 §6.2.3:
/// values below 512 are treated as 512).
pub const MIN_UDP_SIZE: u16 = 512;

/// Classic DNS maximum UDP payload without EDNS.
pub const CLASSIC_UDP_SIZE: u16 = 512;

/// The EDNS version this server implements.
pub const SUPPORTED_VERSION: u8 = 0;

/// Extended RCODE for "I do not speak your EDNS version" (RFC 6891 §9).
/// The low four bits live in the header RCODE (zero here), the high eight
/// in the OPT TTL's first octet.
pub const BADVERS_EXT: u8 = 1;

/// What a well-formed OPT record told us.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edns {
    /// Requestor's advertised UDP payload size, already floored at 512.
    pub udp_size: u16,
    /// Requestor's EDNS version.
    pub version: u8,
}

/// Why a message's OPT usage is malformed (all ⇒ FORMERR).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdnsError {
    /// More than one OPT record in the message.
    MultipleOpt,
    /// OPT owner name is not the root.
    NonRootOwner,
    /// The option area's TLV lengths do not add up.
    BadOptionArea,
    /// An OPT record outside the additional section.
    WrongSection,
}

/// Scans a parsed query for EDNS. `Ok(None)` when there is no OPT,
/// `Ok(Some(_))` for exactly one well-formed OPT in the additional
/// section, `Err(_)` when the message's OPT usage is malformed.
pub fn extract(msg: &Message) -> Result<Option<Edns>, EdnsError> {
    // OPT anywhere outside the additional section is malformed.
    if msg
        .answers
        .iter()
        .chain(&msg.authorities)
        .any(|r| r.rtype() == RrType::Opt)
    {
        return Err(EdnsError::WrongSection);
    }
    let mut found: Option<&Record> = None;
    for rec in &msg.additionals {
        if rec.rtype() != RrType::Opt {
            continue;
        }
        if found.is_some() {
            return Err(EdnsError::MultipleOpt);
        }
        found = Some(rec);
    }
    let Some(rec) = found else {
        return Ok(None);
    };
    if !rec.name.is_root() {
        return Err(EdnsError::NonRootOwner);
    }
    if let RData::Raw { data, .. } = &rec.rdata {
        if !options_well_formed(data) {
            return Err(EdnsError::BadOptionArea);
        }
    }
    // CLASS carries the requestor's UDP payload size.
    let udp_size = rec.class.code().max(MIN_UDP_SIZE);
    // TTL packs [ext-rcode 8][version 8][DO 1][z 15].
    let version = ((rec.ttl >> 16) & 0xFF) as u8;
    Ok(Some(Edns { udp_size, version }))
}

/// Validates the RDATA option area: a sequence of
/// `[code u16][length u16][data …]` TLVs that exactly consumes the bytes.
fn options_well_formed(mut data: &[u8]) -> bool {
    while !data.is_empty() {
        let Some(header) = data.get(..4) else {
            return false;
        };
        let len = usize::from(u16::from_be_bytes([
            header.get(2).copied().unwrap_or(0),
            header.get(3).copied().unwrap_or(0),
        ]));
        let Some(rest) = data.get(4 + len..) else {
            return false;
        };
        data = rest;
    }
    true
}

/// Builds the OPT record this server attaches to EDNS responses:
/// advertising `udp_size`, version 0, with `ext_rcode` in the TTL's first
/// octet (zero except for BADVERS) and an empty option area.
pub fn opt_record(udp_size: u16, ext_rcode: u8) -> Record {
    Record::new(
        dps_dns::Name::root(),
        Class::from_code(udp_size),
        u32::from(ext_rcode) << 24,
        RData::Raw {
            rtype: RrType::Opt.code(),
            data: Vec::new(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dps_dns::{Name, Question};

    fn base_query() -> Message {
        Message::query(1, Question::new("www.examp.le".parse().unwrap(), RrType::A))
    }

    #[test]
    fn no_opt_is_none() {
        assert_eq!(extract(&base_query()), Ok(None));
    }

    #[test]
    fn well_formed_opt_extracts_size_and_version() {
        let mut q = base_query();
        q.additionals.push(opt_record(4096, 0));
        assert_eq!(
            extract(&q),
            Ok(Some(Edns {
                udp_size: 4096,
                version: 0
            }))
        );
    }

    #[test]
    fn tiny_advertised_size_floors_at_512() {
        let mut q = base_query();
        q.additionals.push(opt_record(100, 0));
        assert_eq!(extract(&q).map(|e| e.map(|e| e.udp_size)), Ok(Some(512)));
    }

    #[test]
    fn version_decodes_from_ttl() {
        let mut q = base_query();
        let mut opt = opt_record(1232, 0);
        opt.ttl = 3 << 16; // version 3
        q.additionals.push(opt);
        assert_eq!(extract(&q).map(|e| e.map(|e| e.version)), Ok(Some(3)));
    }

    #[test]
    fn duplicate_opt_is_malformed() {
        let mut q = base_query();
        q.additionals.push(opt_record(1232, 0));
        q.additionals.push(opt_record(1232, 0));
        assert_eq!(extract(&q), Err(EdnsError::MultipleOpt));
    }

    #[test]
    fn non_root_owner_is_malformed() {
        let mut q = base_query();
        let mut opt = opt_record(1232, 0);
        opt.name = "examp.le".parse::<Name>().unwrap();
        q.additionals.push(opt);
        assert_eq!(extract(&q), Err(EdnsError::NonRootOwner));
    }

    #[test]
    fn opt_in_answer_section_is_malformed() {
        let mut q = base_query();
        q.answers.push(opt_record(1232, 0));
        assert_eq!(extract(&q), Err(EdnsError::WrongSection));
    }

    #[test]
    fn torn_option_tlv_is_malformed() {
        let mut q = base_query();
        let mut opt = opt_record(1232, 0);
        // Option code 3, declared length 10, only 2 bytes present.
        opt.rdata = RData::Raw {
            rtype: RrType::Opt.code(),
            data: vec![0, 3, 0, 10, 0xAA, 0xBB],
        };
        q.additionals.push(opt);
        assert_eq!(extract(&q), Err(EdnsError::BadOptionArea));

        // A complete TLV is fine.
        let mut q = base_query();
        let mut opt = opt_record(1232, 0);
        opt.rdata = RData::Raw {
            rtype: RrType::Opt.code(),
            data: vec![0, 3, 0, 2, 0xAA, 0xBB],
        };
        q.additionals.push(opt);
        assert!(extract(&q).is_ok());
    }
}
