//! # dps-serve — authoritative DNS on real sockets
//!
//! Everything else in the workspace speaks DNS over the simulated
//! `netsim` wire. This crate puts the same `authdns` zones behind actual
//! UDP and TCP sockets — the configuration the paper measures in the
//! wild — and hardens the path between socket and zone against hostile
//! input:
//!
//! - **Never panic, never go silent on malformed input.** Unparseable
//!   payloads get FORMERR with the transaction id echoed; malformed
//!   EDNS gets FORMERR; unsupported EDNS versions get BADVERS.
//! - **EDNS0 and truncation** (RFC 6891): responses are capped at the
//!   client's advertised UDP payload size (floored at 512), TC is set
//!   when the answer does not fit, and the full answer is available over
//!   length-framed TCP.
//! - **Response-rate limiting** with slip/TC fallback bounds UDP
//!   amplification per client.
//! - **Slowloris deadlines, connection caps and load shedding** keep the
//!   server responsive under connection floods; shedding answers with a
//!   minimal REFUSED built without parsing the query.
//! - **Zone hot reload** by file watching: edit a `*.zone` file in the
//!   served directory and the new contents are live within one poll
//!   interval (the workspace denies `unsafe`, so no SIGHUP handler).
//!
//! Each degradation behaviour increments a `dps-telemetry` counter, so
//! what the server did under attack is observable after the fact.
//!
//! The decision pipeline ([`frontend`]) is a pure function of
//! `(transport, client, time, payload)`; only [`sockets`] touches the
//! operating system.

pub mod edns;
pub mod frontend;
pub mod rrl;
pub mod sockets;

pub use frontend::{Decision, DropReason, Frontend, FrontendConfig, Transport};
pub use rrl::{RrlConfig, RrlDecision, RrlTable};
pub use sockets::{ServeOptions, Server};
