//! Response-rate limiting: per-client token buckets with slip/TC fallback.
//!
//! Classic DNS RRL: when a client exceeds its response budget, most of its
//! responses are silently dropped, but every `slip`-th one is answered
//! with a minimal truncated (TC) reply instead. A spoofed victim never
//! sees amplification (dropped or tiny), while a legitimate client behind
//! the same address learns to retry over TCP.
//!
//! Buckets are integer arithmetic throughout — `rate` tokens per second
//! accounted in nanoseconds — so behaviour is a pure function of the
//! query arrival times the caller passes in, which is what the unit tests
//! exploit.

// Untrusted-input adjacent: bucket arithmetic runs once per hostile query
// and must never panic (enforced by dps-analyzer's panic-safety family
// and these lints).
#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::collections::HashMap;
use std::net::IpAddr;

const NANOS_PER_SEC: u64 = 1_000_000_000;

/// Rate-limiter configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RrlConfig {
    /// Sustained responses per second per client; 0 disables RRL.
    pub rate: u32,
    /// Bucket depth: how many responses may burst above the rate.
    pub burst: u32,
    /// Every `slip`-th limited response is sent as a minimal TC reply
    /// instead of being dropped; 0 never slips (always drop).
    pub slip: u32,
    /// Maximum tracked clients; the stalest bucket is evicted beyond this.
    pub max_clients: usize,
}

impl Default for RrlConfig {
    fn default() -> Self {
        Self {
            rate: 200,
            burst: 50,
            slip: 2,
            max_clients: 4096,
        }
    }
}

/// The limiter's verdict for one response about to be sent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RrlDecision {
    /// Send the full response.
    Send,
    /// Drop the response on the floor.
    Drop,
    /// Send a minimal truncated response (TC set, no records).
    SlipTc,
}

struct Bucket {
    /// Token balance in nanoseconds of credit (one token = 1 s / rate).
    credit_ns: u64,
    /// Last refill instant.
    updated_ns: u64,
    /// Limited responses since the last slip.
    since_slip: u32,
}

/// Per-client token-bucket table.
pub struct RrlTable {
    config: RrlConfig,
    buckets: HashMap<IpAddr, Bucket>,
}

impl RrlTable {
    /// An empty table.
    pub fn new(config: RrlConfig) -> Self {
        Self {
            config,
            buckets: HashMap::new(),
        }
    }

    /// Nanoseconds of credit one response costs.
    fn cost_ns(&self) -> u64 {
        NANOS_PER_SEC / u64::from(self.config.rate.max(1))
    }

    /// Decides the fate of one response to `client` at `now_ns`.
    pub fn check(&mut self, client: IpAddr, now_ns: u64) -> RrlDecision {
        if self.config.rate == 0 {
            return RrlDecision::Send;
        }
        let cost = self.cost_ns();
        let cap = cost.saturating_mul(u64::from(self.config.burst.max(1)));
        if !self.buckets.contains_key(&client) {
            self.evict_if_full();
            self.buckets.insert(
                client,
                Bucket {
                    credit_ns: cap,
                    updated_ns: now_ns,
                    since_slip: 0,
                },
            );
        }
        let slip = self.config.slip;
        let Some(bucket) = self.buckets.get_mut(&client) else {
            // Unreachable (just inserted), but degrade to sending.
            return RrlDecision::Send;
        };
        let elapsed = now_ns.saturating_sub(bucket.updated_ns);
        bucket.credit_ns = bucket.credit_ns.saturating_add(elapsed).min(cap);
        bucket.updated_ns = now_ns;
        if bucket.credit_ns >= cost {
            bucket.credit_ns -= cost;
            return RrlDecision::Send;
        }
        // Limited: slip every `slip`-th, drop the rest.
        bucket.since_slip = bucket.since_slip.saturating_add(1);
        if slip > 0 && bucket.since_slip >= slip {
            bucket.since_slip = 0;
            RrlDecision::SlipTc
        } else {
            RrlDecision::Drop
        }
    }

    /// Evicts the stalest bucket when the table is at capacity, so a
    /// spoofed flood of distinct source addresses cannot grow memory
    /// without bound.
    fn evict_if_full(&mut self) {
        if self.buckets.len() < self.config.max_clients.max(1) {
            return;
        }
        if let Some(stalest) = self
            .buckets
            .iter()
            .min_by_key(|(ip, b)| (b.updated_ns, **ip))
            .map(|(ip, _)| *ip)
        {
            self.buckets.remove(&stalest);
        }
    }

    /// Number of tracked clients.
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// True when no clients are tracked.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    fn table(rate: u32, burst: u32, slip: u32) -> RrlTable {
        RrlTable::new(RrlConfig {
            rate,
            burst,
            slip,
            max_clients: 4,
        })
    }

    #[test]
    fn burst_then_limited_with_slip() {
        let mut t = table(1, 2, 2);
        let c = ip("198.51.100.7");
        assert_eq!(t.check(c, 0), RrlDecision::Send);
        assert_eq!(t.check(c, 0), RrlDecision::Send);
        // Bucket empty: first limited response drops, second slips TC.
        assert_eq!(t.check(c, 0), RrlDecision::Drop);
        assert_eq!(t.check(c, 0), RrlDecision::SlipTc);
        assert_eq!(t.check(c, 0), RrlDecision::Drop);
        assert_eq!(t.check(c, 0), RrlDecision::SlipTc);
    }

    #[test]
    fn tokens_refill_with_time() {
        let mut t = table(1, 2, 2);
        let c = ip("198.51.100.7");
        assert_eq!(t.check(c, 0), RrlDecision::Send);
        assert_eq!(t.check(c, 0), RrlDecision::Send);
        assert_eq!(t.check(c, 0), RrlDecision::Drop);
        // One second later one token has refilled; the next limited
        // response slips (the slip counter persists across sends).
        assert_eq!(t.check(c, NANOS_PER_SEC), RrlDecision::Send);
        assert_eq!(t.check(c, NANOS_PER_SEC), RrlDecision::SlipTc);
    }

    #[test]
    fn clients_are_isolated() {
        let mut t = table(1, 1, 1);
        assert_eq!(t.check(ip("10.0.0.1"), 0), RrlDecision::Send);
        assert_eq!(t.check(ip("10.0.0.1"), 0), RrlDecision::SlipTc);
        // A different client still has its own burst.
        assert_eq!(t.check(ip("10.0.0.2"), 0), RrlDecision::Send);
    }

    #[test]
    fn slip_zero_always_drops() {
        let mut t = table(1, 1, 0);
        let c = ip("10.0.0.1");
        assert_eq!(t.check(c, 0), RrlDecision::Send);
        for _ in 0..10 {
            assert_eq!(t.check(c, 0), RrlDecision::Drop);
        }
    }

    #[test]
    fn rate_zero_disables() {
        let mut t = table(0, 1, 1);
        let c = ip("10.0.0.1");
        for _ in 0..100 {
            assert_eq!(t.check(c, 0), RrlDecision::Send);
        }
        assert!(t.is_empty());
    }

    #[test]
    fn table_is_bounded_by_eviction() {
        let mut t = table(1, 1, 1);
        for i in 0..20u8 {
            let addr = ip(&format!("10.0.1.{i}"));
            t.check(addr, u64::from(i));
        }
        assert!(t.len() <= 4, "len={}", t.len());
        // The freshest client survived.
        assert!(t.buckets.contains_key(&ip("10.0.1.19")));
    }
}
