//! Frame transports: TCP, Unix domain sockets, and an in-process
//! loopback.
//!
//! A transport moves whole frames (see [`crate::wire::frame`]); protocol
//! and scheduling logic above this layer never sees partial reads. The
//! receiving half is timeout-driven: `Ok(None)` means "nothing arrived
//! within the read timeout", which the manager turns into liveness ticks
//! for the worker health model — no wall-clock reads anywhere above the
//! socket layer.

use crate::wire::{frame, FrameBuf, FrameError};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Sending half of a transport. Thread-safe: the worker's heartbeat
/// thread and its lease loop share one sender.
pub trait FrameTx: Send + Sync {
    /// Sends one frame payload (the transport adds the length prefix).
    fn send(&self, payload: &[u8]) -> io::Result<()>;

    /// Sends an owned frame payload. Transports that queue whole
    /// payloads (the loopback) take it as-is and skip a copy; byte
    /// streams fall back to [`send`](FrameTx::send).
    fn send_vec(&self, payload: Vec<u8>) -> io::Result<()> {
        self.send(&payload)
    }
}

/// Receiving half of a transport.
pub trait FrameRx: Send {
    /// Waits up to the transport's read timeout for a complete frame.
    /// `Ok(Some(payload))` on a frame, `Ok(None)` on a quiet interval,
    /// `Err` once the peer is gone or the stream is poisoned.
    fn recv(&mut self) -> io::Result<Option<Vec<u8>>>;
}

/// One admitted connection, as handed to the manager.
pub struct Conn {
    /// Frame sender towards the peer.
    pub tx: Arc<dyn FrameTx>,
    /// Frame receiver from the peer.
    pub rx: Box<dyn FrameRx>,
}

/// [`FrameTx`] over any byte sink.
struct StreamTx<W: Write + Send> {
    inner: Mutex<W>,
}

impl<W: Write + Send> FrameTx for StreamTx<W> {
    fn send(&self, payload: &[u8]) -> io::Result<()> {
        let framed = frame(payload);
        let mut w = self
            .inner
            .lock()
            .map_err(|_| io::Error::other("tx poisoned"))?;
        w.write_all(&framed)?;
        w.flush()
    }
}

/// [`FrameRx`] over any byte source with a read timeout. Partial frames
/// accumulate across quiet intervals — a timeout never loses bytes.
struct StreamRx<R: Read + Send> {
    inner: R,
    fb: FrameBuf,
}

impl<R: Read + Send> FrameRx for StreamRx<R> {
    fn recv(&mut self) -> io::Result<Option<Vec<u8>>> {
        loop {
            match self.fb.next_frame() {
                Ok(Some(p)) => return Ok(Some(p)),
                Err(FrameError::Oversize(len)) => {
                    return Err(io::Error::other(format!("oversize frame ({len} bytes)")));
                }
                Ok(None) => {}
            }
            let mut chunk = [0u8; 8192];
            match self.inner.read(&mut chunk) {
                Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
                Ok(n) => self.fb.extend(chunk.get(..n).unwrap_or(&[])),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(None);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

/// Splits a TCP stream into transport halves with the given read timeout.
pub fn tcp_conn(stream: TcpStream, read_timeout: Duration) -> io::Result<Conn> {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(read_timeout))?;
    let write_half = stream.try_clone()?;
    Ok(Conn {
        tx: Arc::new(StreamTx {
            inner: Mutex::new(write_half),
        }),
        rx: Box::new(StreamRx {
            inner: stream,
            fb: FrameBuf::new(),
        }),
    })
}

/// Splits a Unix-domain stream into transport halves.
pub fn uds_conn(stream: UnixStream, read_timeout: Duration) -> io::Result<Conn> {
    stream.set_read_timeout(Some(read_timeout))?;
    let write_half = stream.try_clone()?;
    Ok(Conn {
        tx: Arc::new(StreamTx {
            inner: Mutex::new(write_half),
        }),
        rx: Box::new(StreamRx {
            inner: stream,
            fb: FrameBuf::new(),
        }),
    })
}

/// One direction of the loopback transport.
struct LoopChan {
    state: Mutex<LoopState>,
    wake: Condvar,
}

struct LoopState {
    queue: VecDeque<Vec<u8>>,
    closed: bool,
}

impl LoopChan {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(LoopState {
                queue: VecDeque::new(),
                closed: false,
            }),
            wake: Condvar::new(),
        })
    }

    fn close(&self) {
        if let Ok(mut st) = self.state.lock() {
            st.closed = true;
        }
        self.wake.notify_all();
    }
}

struct LoopTx {
    chan: Arc<LoopChan>,
    /// The opposite direction, closed alongside ours so a dropped
    /// endpoint looks like a vanished peer from both sides.
    reverse: Arc<LoopChan>,
}

impl FrameTx for LoopTx {
    fn send(&self, payload: &[u8]) -> io::Result<()> {
        self.send_vec(payload.to_vec())
    }

    fn send_vec(&self, payload: Vec<u8>) -> io::Result<()> {
        let mut st = self
            .chan
            .state
            .lock()
            .map_err(|_| io::Error::other("loopback poisoned"))?;
        if st.closed {
            return Err(io::ErrorKind::BrokenPipe.into());
        }
        st.queue.push_back(payload);
        drop(st);
        self.chan.wake.notify_all();
        Ok(())
    }
}

impl Drop for LoopTx {
    fn drop(&mut self) {
        self.chan.close();
        self.reverse.close();
    }
}

struct LoopRx {
    chan: Arc<LoopChan>,
    timeout: Duration,
}

impl FrameRx for LoopRx {
    fn recv(&mut self) -> io::Result<Option<Vec<u8>>> {
        let mut st = self
            .chan
            .state
            .lock()
            .map_err(|_| io::Error::other("loopback poisoned"))?;
        loop {
            if let Some(p) = st.queue.pop_front() {
                return Ok(Some(p));
            }
            if st.closed {
                return Err(io::ErrorKind::UnexpectedEof.into());
            }
            let (next, wait) = self
                .chan
                .wake
                .wait_timeout(st, self.timeout)
                .map_err(|_| io::Error::other("loopback poisoned"))?;
            st = next;
            if wait.timed_out() {
                return match st.queue.pop_front() {
                    Some(p) => Ok(Some(p)),
                    None if st.closed => Err(io::ErrorKind::UnexpectedEof.into()),
                    None => Ok(None),
                };
            }
        }
    }
}

/// An in-process duplex transport: two [`Conn`] endpoints joined by
/// queues. Dropping either endpoint's sender closes both directions, so
/// peer-crash handling is exercisable without sockets.
pub fn loopback_conn(read_timeout: Duration) -> (Conn, Conn) {
    let a2b = LoopChan::new();
    let b2a = LoopChan::new();
    let a = Conn {
        tx: Arc::new(LoopTx {
            chan: Arc::clone(&a2b),
            reverse: Arc::clone(&b2a),
        }),
        rx: Box::new(LoopRx {
            chan: Arc::clone(&b2a),
            timeout: read_timeout,
        }),
    };
    let b = Conn {
        tx: Arc::new(LoopTx {
            chan: b2a,
            reverse: Arc::clone(&a2b),
        }),
        rx: Box::new(LoopRx {
            chan: a2b,
            timeout: read_timeout,
        }),
    };
    (a, b)
}

/// Accept loop over a TCP listener: admitted connections are sent down
/// `conns` until `stop` is raised or the receiver hangs up.
pub fn tcp_accept_loop(
    listener: TcpListener,
    read_timeout: Duration,
    conns: &mpsc::Sender<Conn>,
    stop: &AtomicBool,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false)?;
                let conn = tcp_conn(stream, read_timeout)?;
                if conns.send(conn).is_err() {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Accept loop over a Unix-domain listener; see [`tcp_accept_loop`].
pub fn uds_accept_loop(
    listener: UnixListener,
    read_timeout: Duration,
    conns: &mpsc::Sender<Conn>,
    stop: &AtomicBool,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false)?;
                let conn = uds_conn(stream, read_timeout)?;
                if conns.send(conn).is_err() {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_delivers_frames_both_ways() {
        let (a, mut b) = loopback_conn(Duration::from_millis(20));
        a.tx.send(b"ping").unwrap();
        assert_eq!(b.rx.recv().unwrap(), Some(b"ping".to_vec()));
        b.tx.send(b"pong").unwrap();
        let mut a_rx = a.rx;
        assert_eq!(a_rx.recv().unwrap(), Some(b"pong".to_vec()));
        assert_eq!(a_rx.recv().unwrap(), None, "quiet interval ticks");
    }

    #[test]
    fn dropping_an_endpoint_closes_both_directions() {
        let (a, b) = loopback_conn(Duration::from_millis(20));
        let Conn {
            tx: b_tx,
            rx: mut b_rx,
        } = b;
        drop(a);
        assert!(b_rx.recv().is_err(), "peer gone surfaces as Err");
        assert!(b_tx.send(b"x").is_err());
    }

    #[test]
    fn tcp_roundtrip_with_timeout_ticks() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (ctx, crx) = mpsc::channel();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let t = std::thread::spawn(move || {
            tcp_accept_loop(listener, Duration::from_millis(20), &ctx, &stop2)
        });
        let client =
            tcp_conn(TcpStream::connect(addr).unwrap(), Duration::from_millis(20)).unwrap();
        let mut server = crx.recv().unwrap();
        client.tx.send(b"hello").unwrap();
        loop {
            match server.rx.recv().unwrap() {
                Some(p) => {
                    assert_eq!(p, b"hello");
                    break;
                }
                None => continue,
            }
        }
        assert_eq!(server.rx.recv().unwrap(), None, "timeout tick");
        stop.store(true, Ordering::Relaxed);
        t.join().unwrap().unwrap();
    }
}
