//! # dps-cluster — the multi-process measurement cluster
//!
//! The paper's Stage I is a cluster manager driving a worker cloud that
//! performs the daily sweeps. This crate supplies that split for the
//! reproduction: one **manager** process owns `archive.dps` and the
//! measurement calendar; N **worker agents** (threads, local processes,
//! or remote machines) rebuild the same-seed world and sweep leased
//! entry ranges.
//!
//! * [`wire`] — the compact, versioned, length-framed binary protocol
//!   (hello/welcome handshake, work leases, results, heartbeats,
//!   drain/bye). Decoding is checked throughout: socket bytes are
//!   untrusted input.
//! * [`transport`] — frame movement over TCP, Unix domain sockets, or an
//!   in-process loopback pair (protocol and scheduling logic stay
//!   unit-testable without real sockets).
//! * [`scheduler`] — epoch-stamped lease assignment with dead-letter
//!   reassignment, heartbeat-fed circuit breakers, and stale-result
//!   rejection for zombie workers.
//! * [`manager`] / [`worker`] — the two process roles.
//! * [`provenance`] — the per-worker attribution sidecar (the archive
//!   itself stays byte-identical to a single-process run).
//!
//! The load-bearing invariant: for the same seed, `archive.dps` from a
//! cluster sweep is **byte-for-byte identical** to the single-process
//! [`dps_measure::Study::run_archived`] output, regardless of worker
//! count, crashes, or completion order. Workers ship raw rows; only the
//! manager interns into the run-wide dictionary, in calendar order, and
//! both paths commit through `dps_measure::pipeline::append_day`.

pub mod manager;
pub mod provenance;
pub mod scheduler;
pub mod transport;
pub mod wire;
pub mod worker;

pub use manager::{
    serve, serve_observed, ClusterConfig, ClusterOutcome, ClusterReport, ProvenanceRow,
};
pub use provenance::{
    per_worker_metrics, read_provenance, render_per_worker, write_provenance, PROVENANCE_FILE,
};
pub use scheduler::{Scheduler, SchedulerConfig};
pub use transport::{loopback_conn, tcp_conn, uds_conn, Conn, FrameRx, FrameTx};
pub use wire::{Msg, PROTO_VERSION};
pub use worker::{run_agent, WorkerOptions, WorkerSummary};
