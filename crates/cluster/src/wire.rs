//! The cluster wire protocol: compact, versioned, length-framed binary
//! messages between the manager and worker agents.
//!
//! Every frame on a transport is `[u32 LE payload length][payload]`; every
//! payload is `[u16 LE magic][u8 version][u8 message type][body]`. Bodies
//! are fixed-order little-endian fields with length-prefixed strings, so
//! the encoding of a message is a pure function of its value — no maps, no
//! padding, no ambient state.
//!
//! Decoding is **checked throughout**: frames off a socket are untrusted
//! input, so every read is bounds-checked, every length prefix is capped,
//! and malformed bytes yield `None`/`Err` — never a panic. The proptests
//! in `tests/wire_props.rs` drive truncated and bit-flipped frames through
//! the decoder to hold that line, mirroring the DNS wire-format tests.

use dps_dns::Name;
use dps_measure::collector::RawRow;
use dps_measure::quality::CauseCounts;

/// First two payload bytes of every message.
pub const MAGIC: u16 = 0xD5C7;
/// Protocol version; bumped on any frame-layout change.
pub const PROTO_VERSION: u8 = 1;
/// Upper bound on a single frame's payload. A full-source lease result at
/// paper scale stays far below this; anything larger is hostile or corrupt.
pub const MAX_FRAME: usize = 64 << 20;
/// Upper bound on rows in one lease result.
pub const MAX_ROWS: u32 = 1 << 22;
/// Upper bound on one length-prefixed string (the Hello display name;
/// row names travel in bounded DNS wire form instead).
pub const MAX_STR: usize = 4096;
/// Upper bound on telemetry entries in one lease result.
pub const MAX_TELEMETRY: usize = 1024;

// Observation rows cross the wire as [`RawRow`] directly: every name is
// encoded in its uncompressed DNS wire form (`Name::as_wire`) and decoded
// through the checked `Name::from_wire`, so no presentation-format
// rendering or parsing happens on the hot path. A row that decodes equals
// the row the worker collected, which is what lets the manager intern
// worker rows exactly as the single-process sweep would.

/// A finished lease: the rows the worker collected plus its telemetry
/// deltas as `(catalog index, value)` pairs against the measure metric
/// catalog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeaseResult {
    /// Lease id being answered.
    pub lease: u64,
    /// Epoch the lease was granted under; stale epochs are rejected.
    pub epoch: u32,
    /// Day of the work unit.
    pub day: u32,
    /// Source index of the work unit.
    pub source: u8,
    /// Shard index within the source.
    pub shard: u32,
    /// Collected rows, in input-list order.
    pub rows: Vec<RawRow>,
    /// Telemetry deltas keyed by measure-catalog index.
    pub telemetry: Vec<(u16, u64)>,
}

/// Every protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// Worker → manager greeting; `proto` must match [`PROTO_VERSION`].
    Hello {
        /// Worker's protocol version.
        proto: u8,
        /// Worker display name for provenance records.
        name: String,
    },
    /// Manager → worker admission: the worker id plus the scenario the
    /// worker must rebuild (same seed ⇒ same world ⇒ same rows).
    Welcome {
        /// Manager's protocol version.
        proto: u8,
        /// Assigned worker id.
        worker: u32,
        /// Scenario seed.
        seed: u64,
        /// Scenario scale as IEEE-754 bits (exact transport of the f64).
        scale_bits: u64,
        /// Scenario gTLD window length in days.
        gtld_days: u32,
        /// First day the ccTLD/Alexa sources are due.
        cc_start_day: u32,
    },
    /// Manager → worker work grant: sweep `count` entries of `source`
    /// starting at `start` for `day`.
    Lease {
        /// Lease id (unique per grant).
        lease: u64,
        /// Grant epoch; results from older epochs are stale.
        epoch: u32,
        /// Day to sweep.
        day: u32,
        /// Source index to sweep.
        source: u8,
        /// Shard index within the source.
        shard: u32,
        /// First entry offset of the shard.
        start: u32,
        /// Entry count of the shard.
        count: u32,
    },
    /// Worker → manager finished lease.
    Result(Box<LeaseResult>),
    /// Worker → manager liveness beacon.
    Heartbeat {
        /// Monotonic per-worker sequence number.
        seq: u64,
    },
    /// Worker → manager refusal of a lease it cannot serve (bad bounds,
    /// unknown source); the manager dead-letters the unit.
    Reject {
        /// Refused lease id.
        lease: u64,
        /// Epoch of the refused lease.
        epoch: u32,
    },
    /// Manager → worker orderly shutdown request.
    Drain,
    /// Worker → manager goodbye after draining.
    Bye,
}

const T_HELLO: u8 = 1;
const T_WELCOME: u8 = 2;
const T_LEASE: u8 = 3;
const T_RESULT: u8 = 4;
const T_HEARTBEAT: u8 = 5;
const T_REJECT: u8 = 6;
const T_DRAIN: u8 = 7;
const T_BYE: u8 = 8;

/// Little-endian payload builder. Encoding cannot fail: lengths written
/// by this process are within every cap by construction.
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new(tag: u8) -> Self {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&MAGIC.to_le_bytes());
        buf.push(PROTO_VERSION);
        buf.push(tag);
        Self { buf }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        let bytes = s.as_bytes();
        let len = bytes.len().min(MAX_STR);
        self.u16(len as u16);
        self.buf.extend_from_slice(bytes.get(..len).unwrap_or(&[]));
    }

    /// Optional name as `[tag][u8 wire length][wire bytes]` — the wire
    /// form is at most 255 octets by construction.
    fn opt_name(&mut self, n: &Option<Name>) {
        match n {
            None => self.u8(0),
            Some(name) => {
                self.u8(1);
                let wire = name.as_wire();
                self.u8(wire.len().min(255) as u8);
                self.buf
                    .extend_from_slice(wire.get(..wire.len().min(255)).unwrap_or(&[]));
            }
        }
    }

    fn row(&mut self, r: &RawRow) {
        self.u32(r.entry);
        let flags = u8::from(r.failed) | (u8::from(r.retryable) << 1) | (u8::from(r.aaaa) << 2);
        self.u8(flags);
        self.u32(r.apex_v4);
        self.u32(r.www_v4);
        self.u32(r.asn1);
        self.u32(r.asn2);
        self.u32(r.www_asn);
        self.u32(r.aaaa_asn);
        self.u32(r.data_points);
        self.u32(r.causes.timeouts);
        self.u32(r.causes.unreachable);
        self.u32(r.causes.corrupt);
        self.u32(r.causes.servfail);
        self.u32(r.causes.other);
        self.opt_name(&r.apex);
        for n in &r.cnames {
            self.opt_name(n);
        }
        for n in &r.ns {
            self.opt_name(n);
        }
        for n in &r.ns_hosts {
            self.opt_name(n);
        }
    }
}

/// Checked little-endian payload reader over untrusted bytes.
struct Cur<'a> {
    buf: &'a [u8],
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let head = self.buf.get(..n)?;
        self.buf = self.buf.get(n..)?;
        Some(head)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1)?.first().copied()
    }

    fn u16(&mut self) -> Option<u16> {
        Some(u16::from_le_bytes(self.take(2)?.try_into().ok()?))
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn str(&mut self) -> Option<String> {
        let len = usize::from(self.u16()?);
        if len > MAX_STR {
            return None;
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    /// Optional wire-form name; structural validation happens in
    /// [`Name::from_wire`].
    fn opt_name(&mut self) -> Option<Option<Name>> {
        match self.u8()? {
            0 => Some(None),
            1 => {
                let len = usize::from(self.u8()?);
                let bytes = self.take(len)?;
                Name::from_wire(bytes).ok().map(Some)
            }
            _ => None,
        }
    }

    fn row(&mut self) -> Option<RawRow> {
        let entry = self.u32()?;
        let flags = self.u8()?;
        if flags > 0b111 {
            return None;
        }
        let apex_v4 = self.u32()?;
        let www_v4 = self.u32()?;
        let asn1 = self.u32()?;
        let asn2 = self.u32()?;
        let www_asn = self.u32()?;
        let aaaa_asn = self.u32()?;
        let data_points = self.u32()?;
        let causes = CauseCounts {
            timeouts: self.u32()?,
            unreachable: self.u32()?,
            corrupt: self.u32()?,
            servfail: self.u32()?,
            other: self.u32()?,
        };
        let apex = self.opt_name()?;
        let cnames = [self.opt_name()?, self.opt_name()?];
        let ns = [self.opt_name()?, self.opt_name()?];
        let ns_hosts = [self.opt_name()?, self.opt_name()?];
        Some(RawRow {
            entry,
            apex,
            apex_v4,
            www_v4,
            aaaa: flags & 0b100 != 0,
            cnames,
            ns,
            ns_hosts,
            asn1,
            asn2,
            www_asn,
            aaaa_asn,
            failed: flags & 0b001 != 0,
            data_points,
            retryable: flags & 0b010 != 0,
            causes,
        })
    }

    fn done(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Encodes a message as a frame payload (header + body, no length
/// prefix — see [`frame`]).
pub fn encode(msg: &Msg) -> Vec<u8> {
    let mut e = match msg {
        Msg::Hello { .. } => Enc::new(T_HELLO),
        Msg::Welcome { .. } => Enc::new(T_WELCOME),
        Msg::Lease { .. } => Enc::new(T_LEASE),
        Msg::Result(_) => Enc::new(T_RESULT),
        Msg::Heartbeat { .. } => Enc::new(T_HEARTBEAT),
        Msg::Reject { .. } => Enc::new(T_REJECT),
        Msg::Drain => Enc::new(T_DRAIN),
        Msg::Bye => Enc::new(T_BYE),
    };
    match msg {
        Msg::Hello { proto, name } => {
            e.u8(*proto);
            e.str(name);
        }
        Msg::Welcome {
            proto,
            worker,
            seed,
            scale_bits,
            gtld_days,
            cc_start_day,
        } => {
            e.u8(*proto);
            e.u32(*worker);
            e.u64(*seed);
            e.u64(*scale_bits);
            e.u32(*gtld_days);
            e.u32(*cc_start_day);
        }
        Msg::Lease {
            lease,
            epoch,
            day,
            source,
            shard,
            start,
            count,
        } => {
            e.u64(*lease);
            e.u32(*epoch);
            e.u32(*day);
            e.u8(*source);
            e.u32(*shard);
            e.u32(*start);
            e.u32(*count);
        }
        Msg::Result(r) => {
            e.u64(r.lease);
            e.u32(r.epoch);
            e.u32(r.day);
            e.u8(r.source);
            e.u32(r.shard);
            e.u32(r.rows.len().min(MAX_ROWS as usize) as u32);
            for row in r.rows.iter().take(MAX_ROWS as usize) {
                e.row(row);
            }
            e.u16(r.telemetry.len().min(MAX_TELEMETRY) as u16);
            for (idx, v) in r.telemetry.iter().take(MAX_TELEMETRY) {
                e.u16(*idx);
                e.u64(*v);
            }
        }
        Msg::Heartbeat { seq } => e.u64(*seq),
        Msg::Reject { lease, epoch } => {
            e.u64(*lease);
            e.u32(*epoch);
        }
        Msg::Drain | Msg::Bye => {}
    }
    e.buf
}

/// Decodes a frame payload. `None` on any malformation: bad magic or
/// version, unknown type, truncated body, oversized length prefix, or
/// trailing garbage.
pub fn decode(payload: &[u8]) -> Option<Msg> {
    let mut c = Cur { buf: payload };
    if c.u16()? != MAGIC || c.u8()? != PROTO_VERSION {
        return None;
    }
    let tag = c.u8()?;
    let msg = match tag {
        T_HELLO => Msg::Hello {
            proto: c.u8()?,
            name: c.str()?,
        },
        T_WELCOME => Msg::Welcome {
            proto: c.u8()?,
            worker: c.u32()?,
            seed: c.u64()?,
            scale_bits: c.u64()?,
            gtld_days: c.u32()?,
            cc_start_day: c.u32()?,
        },
        T_LEASE => Msg::Lease {
            lease: c.u64()?,
            epoch: c.u32()?,
            day: c.u32()?,
            source: c.u8()?,
            shard: c.u32()?,
            start: c.u32()?,
            count: c.u32()?,
        },
        T_RESULT => {
            let lease = c.u64()?;
            let epoch = c.u32()?;
            let day = c.u32()?;
            let source = c.u8()?;
            let shard = c.u32()?;
            let n_rows = c.u32()?;
            if n_rows > MAX_ROWS {
                return None;
            }
            let mut rows = Vec::with_capacity(n_rows.min(4096) as usize);
            for _ in 0..n_rows {
                rows.push(c.row()?);
            }
            let n_tel = usize::from(c.u16()?);
            if n_tel > MAX_TELEMETRY {
                return None;
            }
            let mut telemetry = Vec::with_capacity(n_tel);
            for _ in 0..n_tel {
                telemetry.push((c.u16()?, c.u64()?));
            }
            Msg::Result(Box::new(LeaseResult {
                lease,
                epoch,
                day,
                source,
                shard,
                rows,
                telemetry,
            }))
        }
        T_HEARTBEAT => Msg::Heartbeat { seq: c.u64()? },
        T_REJECT => Msg::Reject {
            lease: c.u64()?,
            epoch: c.u32()?,
        },
        T_DRAIN => Msg::Drain,
        T_BYE => Msg::Bye,
        _ => return None,
    };
    if !c.done() {
        return None;
    }
    Some(msg)
}

/// Wraps a payload in its transport frame: `[u32 LE length][payload]`.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 4);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Frame-reassembly error: the stream is unrecoverable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// A length prefix exceeded [`MAX_FRAME`].
    Oversize(u32),
}

/// Incremental frame reassembly over a byte stream. Feed arbitrary read
/// chunks with [`extend`](FrameBuf::extend); [`next`](FrameBuf::next)
/// yields complete payloads as they become available. Length prefixes
/// beyond [`MAX_FRAME`] poison the stream (the peer is hostile or the
/// framing is lost — there is no resynchronisation).
#[derive(Debug, Default)]
pub struct FrameBuf {
    buf: Vec<u8>,
}

impl FrameBuf {
    /// An empty reassembly buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw stream bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete frame payload, `Ok(None)` while incomplete.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        let Some(len_bytes) = self.buf.get(..4) else {
            return Ok(None);
        };
        let Ok(len_arr) = <[u8; 4]>::try_from(len_bytes) else {
            return Ok(None);
        };
        let len = u32::from_le_bytes(len_arr);
        if len as usize > MAX_FRAME {
            return Err(FrameError::Oversize(len));
        }
        let total = 4 + len as usize;
        let Some(payload) = self.buf.get(4..total) else {
            return Ok(None);
        };
        let payload = payload.to_vec();
        self.buf.drain(..total);
        Ok(Some(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_row() -> RawRow {
        let name = |s: &str| -> Option<Name> { s.parse().ok() };
        RawRow {
            entry: 7,
            apex: name("examp.le"),
            apex_v4: 0x0a000001,
            www_v4: 0x0a000002,
            aaaa: true,
            cnames: [name("cdn.examp.le"), None],
            ns: [name("ns1.examp.le"), name("ns2.examp.le")],
            ns_hosts: [None, None],
            asn1: 64500,
            asn2: 0,
            www_asn: 64501,
            aaaa_asn: 64502,
            failed: false,
            data_points: 9,
            retryable: false,
            causes: CauseCounts {
                timeouts: 0,
                unreachable: 1,
                corrupt: 0,
                servfail: 0,
                other: 2,
            },
        }
    }

    #[test]
    fn every_message_roundtrips() {
        let msgs = vec![
            Msg::Hello {
                proto: PROTO_VERSION,
                name: "agent-1".to_owned(),
            },
            Msg::Welcome {
                proto: PROTO_VERSION,
                worker: 3,
                seed: 42,
                scale_bits: 0.01f64.to_bits(),
                gtld_days: 60,
                cc_start_day: 20,
            },
            Msg::Lease {
                lease: 11,
                epoch: 2,
                day: 5,
                source: 0,
                shard: 1,
                start: 128,
                count: 64,
            },
            Msg::Result(Box::new(LeaseResult {
                lease: 11,
                epoch: 2,
                day: 5,
                source: 0,
                shard: 1,
                rows: vec![sample_row()],
                telemetry: vec![(5, 64), (3, 1024)],
            })),
            Msg::Heartbeat { seq: 99 },
            Msg::Reject { lease: 4, epoch: 1 },
            Msg::Drain,
            Msg::Bye,
        ];
        for msg in msgs {
            let bytes = encode(&msg);
            assert_eq!(decode(&bytes).as_ref(), Some(&msg), "{msg:?}");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = encode(&Msg::Drain);
        bytes.push(0);
        assert_eq!(decode(&bytes), None);
    }

    #[test]
    fn wrong_magic_and_version_rejected() {
        let mut bytes = encode(&Msg::Bye);
        if let Some(b) = bytes.first_mut() {
            *b ^= 0xff;
        }
        assert_eq!(decode(&bytes), None);
        let mut bytes = encode(&Msg::Bye);
        if let Some(b) = bytes.get_mut(2) {
            *b = PROTO_VERSION + 1;
        }
        assert_eq!(decode(&bytes), None);
    }

    #[test]
    fn corrupt_name_bytes_reject_the_row() {
        let msg = Msg::Result(Box::new(LeaseResult {
            lease: 1,
            epoch: 1,
            day: 0,
            source: 0,
            shard: 0,
            rows: vec![sample_row()],
            telemetry: vec![],
        }));
        let bytes = encode(&msg);
        // Find the apex name's first label length (the "examp" label, 5)
        // and inflate it past the remaining buffer.
        let pos = bytes
            .windows(6)
            .position(|w| w == b"\x05examp")
            .expect("apex label on the wire");
        let mut bad = bytes.clone();
        if let Some(b) = bad.get_mut(pos) {
            *b = 63;
        }
        assert_eq!(decode(&bad), None, "inflated label length must reject");
    }

    #[test]
    fn framing_reassembles_across_arbitrary_chunks() {
        let a = encode(&Msg::Heartbeat { seq: 1 });
        let b = encode(&Msg::Drain);
        let mut stream = frame(&a);
        stream.extend_from_slice(&frame(&b));
        for chunk_len in [1, 2, 3, stream.len()] {
            let mut fb = FrameBuf::new();
            let mut got = Vec::new();
            for chunk in stream.chunks(chunk_len) {
                fb.extend(chunk);
                while let Some(p) = fb.next_frame().expect("no oversize") {
                    got.push(p);
                }
            }
            assert_eq!(got, vec![a.clone(), b.clone()], "chunk {chunk_len}");
        }
    }

    #[test]
    fn oversize_length_prefix_poisons_stream() {
        let mut fb = FrameBuf::new();
        fb.extend(&(MAX_FRAME as u32 + 1).to_le_bytes());
        assert!(matches!(fb.next_frame(), Err(FrameError::Oversize(_))));
    }
}
