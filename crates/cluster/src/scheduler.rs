//! Lease scheduling: the manager-side state machine that hands (day,
//! source-shard) work units to workers and survives worker failure.
//!
//! Pure and deterministic: the scheduler never reads a clock — liveness
//! is driven by the transport layer's read-timeout ticks (a
//! [`silence`](Scheduler::silence) per quiet interval, a
//! [`heartbeat`](Scheduler::heartbeat) per beacon) and those events feed
//! the same circuit-breaker health model the measurement pipeline uses
//! for authoritative servers ([`dps_authdns::HealthTracker`], keyed by a
//! synthetic per-worker address, clocked by an event-count tick).
//!
//! Failure handling mirrors the single-process supervisor's dead-letter
//! queue: every lease a dead worker held is routed through
//! [`dead_letters`](Scheduler::dead_letters) and reassigned ahead of
//! fresh units. Every grant carries an **epoch**: reassigning a unit
//! bumps its epoch, so a zombie worker that rejoins (or was merely slow)
//! and answers an old lease is detected and its stale result rejected —
//! each unit is committed exactly once.

use dps_authdns::{HealthConfig, HealthTracker, ServerHealth};
use std::collections::{BTreeMap, VecDeque};
use std::net::{IpAddr, Ipv4Addr};

/// Worker identity assigned at admission.
pub type WorkerId = u32;

/// A unit of leasable work: one shard of one source for the current day.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct UnitKey {
    /// Source index.
    pub source: u8,
    /// Shard index within the source.
    pub shard: u32,
}

/// The entry range a unit covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnitSpec {
    /// Unit identity.
    pub key: UnitKey,
    /// First entry offset.
    pub start: u32,
    /// Entry count.
    pub count: u32,
}

/// One granted lease, ready to serialise into a `Lease` frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaseGrant {
    /// Assigned worker.
    pub worker: WorkerId,
    /// Lease id, unique across the run.
    pub lease: u64,
    /// Grant epoch for the unit.
    pub epoch: u32,
    /// The work range.
    pub unit: UnitSpec,
}

/// Outcome of offering a result to the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Fresh result for the current epoch: commit it.
    Accept,
    /// Stale (superseded epoch or unknown lease): discard it.
    Stale,
}

#[derive(Debug, Clone, Copy)]
enum UnitState {
    Pending,
    Assigned {
        worker: WorkerId,
        lease: u64,
        epoch: u32,
        /// Grant order, for oldest-grant-first stealing.
        seq: u64,
    },
    Done,
}

#[derive(Debug)]
struct Unit {
    spec: UnitSpec,
    state: UnitState,
    epoch: u32,
    attempts: u32,
}

#[derive(Debug)]
struct WorkerState {
    alive: bool,
    busy: Vec<UnitKey>,
    silences: u32,
}

/// Scheduler tuning.
#[derive(Debug, Clone, Copy)]
pub struct SchedulerConfig {
    /// Consecutive quiet intervals after which a worker is declared dead.
    pub silence_limit: u32,
    /// Grant attempts per unit before the day is declared failed.
    pub max_attempts: u32,
    /// Breaker: consecutive failure events that open a worker's breaker.
    pub failure_threshold: u32,
    /// Breaker: virtual-ticks a tripped breaker stays open.
    pub open_ticks: u64,
    /// Outstanding leases a worker may hold. Depth 2 keeps the next
    /// lease queued in the transport while a result is in flight, so the
    /// worker never idles waiting for the manager's turnaround.
    pub pipeline_depth: u32,
    /// Grants are withheld until at least this many workers are live, so
    /// a slow-starting fleet all participates instead of the first
    /// arrival sweeping everything alone. 0 disables the gate.
    pub min_workers: u32,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            silence_limit: 10,
            max_attempts: 6,
            failure_threshold: 3,
            open_ticks: 20,
            pipeline_depth: 2,
            min_workers: 0,
        }
    }
}

/// Virtual microseconds per liveness event; the breaker's clock advances
/// by this much on every silence/heartbeat, so breaker cool-down is
/// measured in protocol events, not wall time.
const TICK_US: u64 = 1;

/// The lease scheduler. One instance spans the whole run; units are
/// loaded per day with [`begin_day`](Scheduler::begin_day).
pub struct Scheduler {
    config: SchedulerConfig,
    health: HealthTracker,
    tick: u64,
    workers: BTreeMap<WorkerId, WorkerState>,
    units: BTreeMap<UnitKey, Unit>,
    /// Units awaiting (re)assignment; dead-lettered units jump the line.
    pending: VecDeque<UnitKey>,
    next_lease: u64,
    next_seq: u64,
    /// Whether the `min_workers` admission gate has opened (latches).
    quorum_met: bool,
    /// Units that went through the dead-letter path this day.
    dead_letters: u64,
    /// Results rejected as stale this run.
    stale_rejected: u64,
    /// Leases reassigned (steal or death) this run.
    reassigned: u64,
}

impl Scheduler {
    /// A scheduler with no workers and no units.
    pub fn new(config: SchedulerConfig) -> Self {
        let health = HealthTracker::new(HealthConfig {
            failure_threshold: config.failure_threshold,
            open_duration_us: config.open_ticks.saturating_mul(TICK_US),
        });
        Self {
            config,
            health,
            tick: 0,
            workers: BTreeMap::new(),
            units: BTreeMap::new(),
            pending: VecDeque::new(),
            next_lease: 1,
            next_seq: 1,
            quorum_met: false,
            dead_letters: 0,
            stale_rejected: 0,
            reassigned: 0,
        }
    }

    /// Synthetic breaker address for a worker (the health model is keyed
    /// by server address in the measurement pipeline).
    fn breaker_addr(worker: WorkerId) -> IpAddr {
        IpAddr::V4(Ipv4Addr::from(0x0a00_0000u32 | (worker & 0x00ff_ffff)))
    }

    /// Admits a worker (or re-admits one that rejoined under a new id).
    pub fn worker_joined(&mut self, worker: WorkerId) {
        self.workers.insert(
            worker,
            WorkerState {
                alive: true,
                busy: Vec::new(),
                silences: 0,
            },
        );
        self.health.record_success(Self::breaker_addr(worker));
    }

    /// Removes a worker; every unit it held goes to the dead-letter
    /// queue for reassignment.
    pub fn worker_left(&mut self, worker: WorkerId) {
        let busy = match self.workers.get_mut(&worker) {
            Some(st) => {
                st.alive = false;
                st.silences = 0;
                std::mem::take(&mut st.busy)
            }
            None => Vec::new(),
        };
        for key in busy {
            self.dead_letter(key);
        }
    }

    /// Routes a unit through the dead-letter queue: back to pending, at
    /// the front, with its epoch bumped so the superseded grant's result
    /// is stale on arrival.
    fn dead_letter(&mut self, key: UnitKey) {
        if let Some(unit) = self.units.get_mut(&key) {
            if matches!(unit.state, UnitState::Assigned { .. }) {
                unit.state = UnitState::Pending;
                unit.epoch = unit.epoch.wrapping_add(1);
                self.pending.push_front(key);
                self.dead_letters += 1;
                self.reassigned += 1;
            }
        }
    }

    /// Records a heartbeat (or any frame — traffic proves liveness).
    pub fn heartbeat(&mut self, worker: WorkerId) {
        self.tick += TICK_US;
        if let Some(st) = self.workers.get_mut(&worker) {
            if st.alive {
                st.silences = 0;
                self.health.record_success(Self::breaker_addr(worker));
            }
        }
    }

    /// Records a quiet read interval for a worker. Returns `true` when
    /// this crossed the silence limit and the worker was declared dead
    /// (its unit is then already dead-lettered).
    pub fn silence(&mut self, worker: WorkerId) -> bool {
        self.tick += TICK_US;
        let dead = match self.workers.get_mut(&worker) {
            Some(st) if st.alive => {
                st.silences += 1;
                st.silences >= self.config.silence_limit
            }
            _ => return false,
        };
        self.health
            .record_failure(Self::breaker_addr(worker), self.tick);
        if dead {
            self.worker_left(worker);
        }
        dead
    }

    /// Loads the day's units. Any state from the previous day is gone by
    /// construction (all units were Done).
    pub fn begin_day(&mut self, specs: Vec<UnitSpec>) {
        self.units.clear();
        self.pending.clear();
        for spec in specs {
            self.pending.push_back(spec.key);
            self.units.insert(
                spec.key,
                Unit {
                    spec,
                    state: UnitState::Pending,
                    epoch: 0,
                    attempts: 0,
                },
            );
        }
    }

    /// True once every unit of the day is done.
    pub fn day_done(&self) -> bool {
        self.units
            .values()
            .all(|u| matches!(u.state, UnitState::Done))
    }

    /// True if some unit has exhausted its grant attempts — the cluster
    /// cannot finish the day (e.g. every worker died).
    pub fn day_poisoned(&self) -> bool {
        self.units
            .values()
            .any(|u| !matches!(u.state, UnitState::Done) && u.attempts >= self.config.max_attempts)
    }

    /// Live workers with lease capacity left (fewer than
    /// `pipeline_depth` outstanding), in id order.
    fn hungry_workers(&self) -> Vec<WorkerId> {
        let depth = self.config.pipeline_depth.max(1) as usize;
        self.workers
            .iter()
            .filter(|(_, st)| st.alive && st.busy.len() < depth)
            .map(|(&id, _)| id)
            .collect()
    }

    /// Grants pending units round-robin to workers with pipeline
    /// capacity, then — with nothing pending and a fully idle worker
    /// left — steals the oldest outstanding lease from a worker that has
    /// gone quiet, re-granting it under a bumped epoch (speculative
    /// reassignment; whichever copy answers first wins, the loser is
    /// stale). Stealing never targets a pipelined worker: one with
    /// queued work of its own gains nothing from a duplicate.
    pub fn next_grants(&mut self) -> Vec<LeaseGrant> {
        let mut grants = Vec::new();
        // Admission gate: withhold every grant until `min_workers` have
        // joined, then latch open — a mid-run death falls back to the
        // dead-letter path rather than stalling the day.
        if !self.quorum_met {
            if (self.live_workers() as u32) < self.config.min_workers {
                return grants;
            }
            self.quorum_met = true;
        }
        loop {
            let mut progressed = false;
            for worker in self.hungry_workers() {
                // A tripped breaker sidelines a worker until it cools
                // down.
                if matches!(
                    self.health.check(Self::breaker_addr(worker), self.tick),
                    ServerHealth::Open
                ) {
                    continue;
                }
                let key = match self.pending.pop_front() {
                    Some(k) => k,
                    None => {
                        let idle = self
                            .workers
                            .get(&worker)
                            .is_some_and(|st| st.busy.is_empty());
                        if !idle {
                            continue;
                        }
                        match self.steal_candidate() {
                            Some(k) => {
                                self.reassigned += 1;
                                k
                            }
                            None => continue,
                        }
                    }
                };
                let Some(unit) = self.units.get_mut(&key) else {
                    continue;
                };
                if unit.attempts >= self.config.max_attempts {
                    // Poisoned unit: leave it unassigned; the day loop
                    // surfaces the failure via `day_poisoned`.
                    continue;
                }
                unit.epoch = unit.epoch.wrapping_add(1);
                unit.attempts += 1;
                unit.state = UnitState::Assigned {
                    worker,
                    lease: self.next_lease,
                    epoch: unit.epoch,
                    seq: self.next_seq,
                };
                if let Some(st) = self.workers.get_mut(&worker) {
                    st.busy.push(key);
                }
                grants.push(LeaseGrant {
                    worker,
                    lease: self.next_lease,
                    epoch: unit.epoch,
                    unit: unit.spec,
                });
                self.next_lease += 1;
                self.next_seq += 1;
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
        grants
    }

    /// The oldest-granted unit held by a worker that has missed at least
    /// one liveness interval (never steals from a worker that is
    /// answering promptly — that would just duplicate work).
    fn steal_candidate(&mut self) -> Option<UnitKey> {
        let mut best: Option<(u64, UnitKey, WorkerId)> = None;
        for (key, unit) in &self.units {
            if let UnitState::Assigned { worker, seq, .. } = unit.state {
                let quiet = !self
                    .workers
                    .get(&worker)
                    .is_some_and(|st| st.alive && st.silences == 0);
                if quiet && best.map_or(true, |(bseq, _, _)| seq < bseq) {
                    best = Some((seq, *key, worker));
                }
            }
        }
        let (_, key, holder) = best?;
        // The holder keeps running; if its (now-superseded) result
        // arrives first it is stale. Free the slot so the holder can be
        // granted other work once it proves liveness again.
        if let Some(st) = self.workers.get_mut(&holder) {
            st.busy.retain(|k| *k != key);
        }
        Some(key)
    }

    /// Offers a worker's result for `(lease, epoch)` on `key`.
    pub fn offer_result(
        &mut self,
        worker: WorkerId,
        key: UnitKey,
        lease: u64,
        epoch: u32,
    ) -> Disposition {
        self.heartbeat(worker);
        if let Some(st) = self.workers.get_mut(&worker) {
            st.busy.retain(|k| *k != key);
        }
        let Some(unit) = self.units.get_mut(&key) else {
            self.stale_rejected += 1;
            return Disposition::Stale;
        };
        match unit.state {
            UnitState::Assigned {
                lease: l, epoch: e, ..
            } if l == lease && e == epoch => {
                unit.state = UnitState::Done;
                Disposition::Accept
            }
            _ => {
                self.stale_rejected += 1;
                Disposition::Stale
            }
        }
    }

    /// A worker refused a lease (bad bounds, unknown source): route the
    /// unit through the dead-letter queue for another worker.
    pub fn reject_lease(&mut self, worker: WorkerId, key: UnitKey, lease: u64, epoch: u32) {
        self.heartbeat(worker);
        if let Some(st) = self.workers.get_mut(&worker) {
            st.busy.retain(|k| *k != key);
        }
        let is_current = matches!(
            self.units.get(&key).map(|u| &u.state),
            Some(UnitState::Assigned { lease: l, epoch: e, .. }) if *l == lease && *e == epoch
        );
        if is_current {
            self.dead_letter(key);
        }
    }

    /// The unit a lease id currently maps to, if any (used to translate
    /// result frames back to unit keys without trusting the frame).
    pub fn lease_unit(&self, lease: u64) -> Option<UnitKey> {
        self.units.iter().find_map(|(key, unit)| match unit.state {
            UnitState::Assigned { lease: l, .. } if l == lease => Some(*key),
            _ => None,
        })
    }

    /// Number of live workers.
    pub fn live_workers(&self) -> usize {
        self.workers.values().filter(|st| st.alive).count()
    }

    /// Units routed through the dead-letter queue so far.
    pub fn dead_letters(&self) -> u64 {
        self.dead_letters
    }

    /// Stale results rejected so far.
    pub fn stale_rejected(&self) -> u64 {
        self.stale_rejected
    }

    /// Leases reassigned (worker death or steal) so far.
    pub fn reassigned(&self) -> u64 {
        self.reassigned
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specs(n: u32) -> Vec<UnitSpec> {
        (0..n)
            .map(|i| UnitSpec {
                key: UnitKey {
                    source: 0,
                    shard: i,
                },
                start: i * 10,
                count: 10,
            })
            .collect()
    }

    #[test]
    fn grants_cover_all_units_and_day_completes() {
        let mut s = Scheduler::new(SchedulerConfig::default());
        s.worker_joined(1);
        s.worker_joined(2);
        s.begin_day(specs(4));
        let mut done = 0;
        while !s.day_done() {
            for g in s.next_grants() {
                assert_eq!(
                    s.offer_result(g.worker, g.unit.key, g.lease, g.epoch),
                    Disposition::Accept
                );
                done += 1;
            }
        }
        assert_eq!(done, 4);
        assert_eq!(s.dead_letters(), 0);
    }

    #[test]
    fn pipelining_grants_up_to_depth_and_death_requeues_all() {
        let mut s = Scheduler::new(SchedulerConfig::default());
        s.worker_joined(1);
        s.begin_day(specs(3));
        let g = s.next_grants();
        assert_eq!(g.len(), 2, "depth-2 pipeline: two outstanding leases");
        assert!(g.iter().all(|g| g.worker == 1));
        // Completing one lease frees a slot for the third unit.
        let first = g.first().copied().unwrap();
        assert_eq!(
            s.offer_result(1, first.unit.key, first.lease, first.epoch),
            Disposition::Accept
        );
        assert_eq!(s.next_grants().len(), 1);
        // Death dead-letters every outstanding unit, not just one.
        s.worker_left(1);
        assert_eq!(s.dead_letters(), 2);
        s.worker_joined(2);
        let g2 = s.next_grants();
        assert_eq!(g2.len(), 2);
        assert!(g2.iter().all(|g| g.worker == 2));
        for g in g2 {
            s.offer_result(2, g.unit.key, g.lease, g.epoch);
        }
        assert!(s.day_done());
    }

    #[test]
    fn min_workers_withholds_grants_until_quorum() {
        let mut s = Scheduler::new(SchedulerConfig {
            min_workers: 2,
            ..SchedulerConfig::default()
        });
        s.begin_day(specs(4));
        s.worker_joined(1);
        assert!(
            s.next_grants().is_empty(),
            "one worker is below the admission quorum"
        );
        s.worker_joined(2);
        let grants = s.next_grants();
        assert_eq!(grants.len(), 4, "quorum reached: full pipeline for both");
        assert!(grants.iter().any(|g| g.worker == 1));
        assert!(grants.iter().any(|g| g.worker == 2));
        // The gate latches open: losing a worker mid-day routes its units
        // through the dead-letter path instead of stalling the survivors.
        s.worker_left(1);
        assert_eq!(s.dead_letters(), 2);
        for g in grants.iter().filter(|g| g.worker == 2) {
            s.offer_result(2, g.unit.key, g.lease, g.epoch);
        }
        let regrants = s.next_grants();
        assert_eq!(
            regrants.len(),
            2,
            "survivor absorbs the dead-lettered units below quorum"
        );
        for g in regrants {
            assert_eq!(g.worker, 2);
            s.offer_result(2, g.unit.key, g.lease, g.epoch);
        }
        assert!(s.day_done());
    }

    #[test]
    fn dead_worker_routes_lease_through_dead_letters() {
        let mut s = Scheduler::new(SchedulerConfig::default());
        s.worker_joined(1);
        s.worker_joined(2);
        s.begin_day(specs(2));
        let grants = s.next_grants();
        assert_eq!(grants.len(), 2);
        let lost = grants.iter().find(|g| g.worker == 1).copied().unwrap();
        s.worker_left(1);
        assert_eq!(s.dead_letters(), 1);
        // Worker 2 finishes its own unit, then picks up the dead-lettered one.
        let own = grants.iter().find(|g| g.worker == 2).copied().unwrap();
        s.offer_result(2, own.unit.key, own.lease, own.epoch);
        let regrant = s.next_grants();
        assert_eq!(regrant.len(), 1);
        let g = regrant.first().copied().unwrap();
        assert_eq!(g.worker, 2);
        assert_eq!(g.unit.key, lost.unit.key);
        assert!(g.epoch > lost.epoch, "reassignment bumps the epoch");
        s.offer_result(2, g.unit.key, g.lease, g.epoch);
        assert!(s.day_done());
    }

    #[test]
    fn zombie_result_is_stale_after_reassignment() {
        let mut s = Scheduler::new(SchedulerConfig::default());
        s.worker_joined(1);
        s.worker_joined(2);
        s.begin_day(specs(1));
        let g1 = s.next_grants().first().copied().unwrap();
        // The holder goes quiet; the idle worker steals the unit.
        for _ in 0..1 {
            s.silence(g1.worker);
        }
        let g2 = s.next_grants().first().copied().unwrap();
        assert_ne!(g2.worker, g1.worker);
        assert!(g2.epoch > g1.epoch);
        // The zombie answers late: stale. The thief's result is accepted.
        assert_eq!(
            s.offer_result(g1.worker, g1.unit.key, g1.lease, g1.epoch),
            Disposition::Stale
        );
        assert_eq!(
            s.offer_result(g2.worker, g2.unit.key, g2.lease, g2.epoch),
            Disposition::Accept
        );
        assert_eq!(s.stale_rejected(), 1);
        assert!(s.day_done());
    }

    #[test]
    fn silence_limit_declares_death_and_requeues() {
        let cfg = SchedulerConfig {
            silence_limit: 3,
            ..SchedulerConfig::default()
        };
        let mut s = Scheduler::new(cfg);
        s.worker_joined(1);
        s.begin_day(specs(1));
        let g = s.next_grants().first().copied().unwrap();
        assert!(!s.silence(1));
        assert!(!s.silence(1));
        assert!(s.silence(1), "third quiet interval crosses the limit");
        assert_eq!(s.live_workers(), 0);
        assert_eq!(s.dead_letters(), 1);
        // A fresh worker picks the unit up under a newer epoch.
        s.worker_joined(2);
        let g2 = s.next_grants().first().copied().unwrap();
        assert!(g2.epoch > g.epoch);
    }

    #[test]
    fn no_steal_from_prompt_workers() {
        let mut s = Scheduler::new(SchedulerConfig::default());
        s.worker_joined(1);
        s.worker_joined(2);
        s.begin_day(specs(1));
        let g = s.next_grants();
        assert_eq!(g.len(), 1);
        // Holder is heartbeating; the idle worker must not duplicate it.
        s.heartbeat(g.first().unwrap().worker);
        assert!(s.next_grants().is_empty());
    }

    #[test]
    fn breaker_sidelines_flapping_worker() {
        let cfg = SchedulerConfig {
            silence_limit: 100,
            failure_threshold: 2,
            open_ticks: 1000,
            ..SchedulerConfig::default()
        };
        let mut s = Scheduler::new(cfg);
        s.worker_joined(1);
        s.begin_day(specs(1));
        s.silence(1);
        s.silence(1);
        assert!(s.next_grants().is_empty(), "breaker open: no grants");
    }

    #[test]
    fn poisoned_day_is_detected() {
        let cfg = SchedulerConfig {
            max_attempts: 1,
            ..SchedulerConfig::default()
        };
        let mut s = Scheduler::new(cfg);
        s.worker_joined(1);
        s.begin_day(specs(1));
        let g = s.next_grants().first().copied().unwrap();
        s.worker_left(g.worker);
        assert!(!s.day_done());
        assert!(s.day_poisoned());
    }
}
