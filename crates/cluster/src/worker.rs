//! The worker agent: connects, rebuilds the world, sweeps leases.
//!
//! An agent carries no configuration of its own — the manager's `Welcome`
//! names the scenario (seed, scale, window), and because the world is a
//! pure function of those parameters every worker evaluates the exact
//! rows the single-process sweep would. Inside a lease the agent fans the
//! entry range out over the same mapreduce worker cloud the
//! single-process collector uses, so one agent saturates its machine and
//! extra agents add machines.
//!
//! A heartbeat thread shares the frame sender and beacons liveness; the
//! manager feeds those beacons (and their absence) into its breaker
//! model. The agent never opens the archive.

use crate::transport::Conn;
use crate::wire::{self, LeaseResult, Msg, PROTO_VERSION};
use dps_ecosystem::{ScenarioParams, World, ZoneEntry};
use dps_measure::collector::{collect_raw, BulkPath, RawRow};
use dps_measure::observation::{entry_code, Source};
use dps_measure::telemetry::CATALOG;
use dps_netsim::Day;
use std::io;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Agent tuning.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Display name sent in the Hello (provenance label).
    pub name: String,
    /// Heartbeat interval. Liveness contract: this must be *shorter*
    /// than the manager connection's read timeout, so a healthy worker
    /// never logs a quiet interval (quiet intervals make it a
    /// work-stealing target and count toward its death sentence).
    pub heartbeat: Duration,
    /// Fault-injection hook: disconnect abruptly (a crash, from the
    /// manager's point of view) after completing this many leases.
    pub fail_after_leases: Option<u32>,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        Self {
            name: String::new(),
            heartbeat: Duration::from_millis(100),
            fail_after_leases: None,
        }
    }
}

/// What an agent did before exiting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerSummary {
    /// Id the manager assigned.
    pub worker: u32,
    /// Leases completed.
    pub leases: u32,
    /// Rows collected.
    pub rows: u64,
    /// True when the agent exited via the fault-injection hook.
    pub crashed: bool,
}

/// Runs one agent over an established connection until the manager
/// drains it (or the fault-injection hook fires).
pub fn run_agent(conn: Conn, opts: WorkerOptions) -> io::Result<WorkerSummary> {
    let Conn { tx, mut rx } = conn;
    tx.send_vec(wire::encode(&Msg::Hello {
        proto: PROTO_VERSION,
        name: opts.name.clone(),
    }))?;

    // Handshake: wait for the Welcome naming the scenario.
    let (worker, params) = loop {
        match rx.recv()? {
            None => continue,
            Some(payload) => match wire::decode(&payload) {
                Some(Msg::Welcome {
                    proto,
                    worker,
                    seed,
                    scale_bits,
                    gtld_days,
                    cc_start_day,
                }) => {
                    if proto != PROTO_VERSION {
                        return Err(io::Error::other("manager speaks a different protocol"));
                    }
                    break (
                        worker,
                        ScenarioParams {
                            seed,
                            scale: f64::from_bits(scale_bits),
                            gtld_days,
                            cc_start_day,
                        },
                    );
                }
                Some(_) => continue,
                None => return Err(io::Error::other("malformed frame during handshake")),
            },
        }
    };

    let mut world = World::imc2016(params);

    // Liveness beacons ride the shared sender from their own thread. A
    // condvar carries the stop signal so shutdown is immediate rather
    // than costing up to one heartbeat interval of sleep.
    let stop = Arc::new((Mutex::new(false), Condvar::new()));
    let beat = {
        let tx = Arc::clone(&tx);
        let stop = Arc::clone(&stop);
        let interval = opts.heartbeat;
        std::thread::spawn(move || {
            let (flag, wake) = &*stop;
            let mut seq = 0u64;
            let mut stopped = match flag.lock() {
                Ok(g) => g,
                Err(_) => return,
            };
            loop {
                let (g, timeout) = match wake.wait_timeout(stopped, interval) {
                    Ok(pair) => pair,
                    Err(_) => return,
                };
                stopped = g;
                if *stopped {
                    return;
                }
                if timeout.timed_out() {
                    seq += 1;
                    if tx.send_vec(wire::encode(&Msg::Heartbeat { seq })).is_err() {
                        return;
                    }
                }
            }
        })
    };

    let rows_idx = catalog_index("measure.rows");
    let points_idx = catalog_index("measure.data.points");
    let mut summary = WorkerSummary {
        worker,
        leases: 0,
        rows: 0,
        crashed: false,
    };
    let outcome = loop {
        let payload = match rx.recv() {
            Ok(Some(p)) => p,
            Ok(None) => continue,
            Err(e) => break Err(e),
        };
        match wire::decode(&payload) {
            Some(Msg::Lease {
                lease,
                epoch,
                day,
                source,
                shard,
                start,
                count,
            }) => {
                if opts.fail_after_leases == Some(summary.leases) {
                    summary.crashed = true;
                    break Ok(());
                }
                let swept = sweep_lease(&mut world, params, day, source, start, count);
                let msg = match swept {
                    None => Msg::Reject { lease, epoch },
                    Some(rows) => {
                        summary.leases += 1;
                        summary.rows += rows.len() as u64;
                        let data_points: u64 = rows.iter().map(|r| u64::from(r.data_points)).sum();
                        let mut telemetry = Vec::new();
                        if let Some(i) = rows_idx {
                            telemetry.push((i, rows.len() as u64));
                        }
                        if let Some(i) = points_idx {
                            telemetry.push((i, data_points));
                        }
                        Msg::Result(Box::new(LeaseResult {
                            lease,
                            epoch,
                            day,
                            source,
                            shard,
                            rows,
                            telemetry,
                        }))
                    }
                };
                if let Err(e) = tx.send_vec(wire::encode(&msg)) {
                    break Err(e);
                }
            }
            Some(Msg::Drain) => {
                tx.send_vec(wire::encode(&Msg::Bye)).ok();
                break Ok(());
            }
            Some(_) => continue,
            None => break Err(io::Error::other("malformed frame from manager")),
        }
    };
    if let Ok(mut stopped) = stop.0.lock() {
        *stopped = true;
    }
    stop.1.notify_all();
    // The condvar wakes the heartbeat thread immediately.
    beat.join().ok();
    outcome.map(|()| summary)
}

/// Sweeps one leased entry range; `None` when the lease is out of bounds
/// for the named day/source (the manager dead-letters it).
fn sweep_lease(
    world: &mut World,
    params: ScenarioParams,
    day: u32,
    source: u8,
    start: u32,
    count: u32,
) -> Option<Vec<RawRow>> {
    let source = Source::from_index(u32::from(source))?;
    if day >= params.gtld_days {
        return None;
    }
    world.advance_to(Day(day));
    let entries = match source.tld() {
        Some(tld) => world.zone_entries(tld),
        None => world.alexa_entries(),
    };
    let end = (start as usize).checked_add(count as usize)?;
    let slice = entries.get(start as usize..end)?;
    let pfx2as = world.pfx2as();
    // Same fan-out shape as the single-process collector: one map task
    // per chunk of the leased range.
    let chunk = slice
        .len()
        .div_ceil(dps_columnar::mapreduce::default_workers().max(1))
        .max(1);
    let chunks: Vec<&[ZoneEntry]> = slice.chunks(chunk).collect();
    let world_ref: &World = world;
    let raw_chunks = dps_columnar::mapreduce::par_map(&chunks, |batch| {
        let mut path = BulkPath::new(world_ref);
        batch
            .iter()
            .map(|&entry| {
                let apex = world_ref.entry_name(entry);
                collect_raw(&mut path, &apex, entry_code(entry), &pfx2as)
            })
            .collect::<Vec<_>>()
    });
    Some(raw_chunks.into_iter().flatten().collect())
}

/// Index of a metric name in the measure catalog.
fn catalog_index(name: &str) -> Option<u16> {
    CATALOG
        .iter()
        .position(|(n, _)| *n == name)
        .map(|i| i as u16)
}
