//! The cluster manager: owns the archive, leases work, merges results.
//!
//! The manager is the only process that touches `archive.dps`. Workers
//! collect raw rows against their own same-seed world and ship them back;
//! the manager interns every row with the **single** run-wide dictionary
//! and interner, in deterministic order — day ascending, then the day's
//! [`due_sources_for`] order, then shard index, then row order within the
//! shard — and funnels each finished day through the same
//! [`append_day`] commit path the single-process sweep uses. Dictionary
//! ids and page bytes are therefore independent of worker count, shard
//! completion order, and any scheduling decision: the archive is
//! byte-identical to `Study::run_archived` for the same seed.
//!
//! Worker telemetry arrives as catalog-indexed counter deltas per lease;
//! the manager merges them (addition, like `Snapshot::merge`) into the
//! day's TELEMETRY_SOURCE page. Worker failure is absorbed by the
//! scheduler's dead-letter/epoch machinery; the manager only ever sees
//! exactly-once unit completion.

use crate::scheduler::{Disposition, LeaseGrant, Scheduler, SchedulerConfig, UnitKey, UnitSpec};
use crate::transport::{Conn, FrameTx};
use crate::wire::{self, LeaseResult, Msg, PROTO_VERSION};
use dps_ecosystem::{ScenarioParams, World};
use dps_measure::collector::{RawRow, SldInterner};
use dps_measure::observation::{schema, Source};
use dps_measure::pipeline::{
    append_day_observed, day_committed, due_sources_for, reborrow_observer, resume_store_observed,
    DayObserver, SourcePage, ANALYSIS_SOURCE,
};
use dps_measure::quality::{CauseCounts, DayQuality};
use dps_measure::snapshot::{SnapshotStore, UNIQUE_KEY_COLUMN};
use dps_measure::telemetry::CATALOG;
use dps_measure::StudyConfig;
use dps_netsim::Day;
use dps_store::StoreWriter;
use dps_telemetry::Snapshot;
use std::collections::BTreeMap;
use std::io;
use std::sync::mpsc;
use std::sync::Arc;

/// Cluster-run configuration.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// The measurement calendar (days, cc start, stride).
    pub study: StudyConfig,
    /// The scenario every worker must rebuild (seed ⇒ same world).
    pub params: ScenarioParams,
    /// Shards per source per day; 0 = auto (twice the worker count at
    /// day start, so slow shards overlap).
    pub shards_per_source: u32,
    /// Scheduler/liveness tuning.
    pub scheduler: SchedulerConfig,
}

impl ClusterConfig {
    /// Cluster settings matching a single-process study of `params`.
    pub fn for_params(params: ScenarioParams) -> Self {
        Self {
            study: StudyConfig {
                days: params.gtld_days,
                cc_start_day: params.cc_start_day,
                stride: 1,
            },
            params,
            shards_per_source: 0,
            scheduler: SchedulerConfig::default(),
        }
    }
}

/// One accepted lease in the provenance record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProvenanceRow {
    /// Day of the unit.
    pub day: u32,
    /// Source index of the unit.
    pub source: u8,
    /// Shard index of the unit.
    pub shard: u32,
    /// Worker display name (from its Hello).
    pub worker: String,
    /// Rows the worker returned.
    pub rows: u32,
    /// Data points in those rows.
    pub data_points: u64,
}

/// What happened during a cluster run, beyond the archive itself.
#[derive(Debug, Default, Clone)]
pub struct ClusterReport {
    /// Every accepted lease, in acceptance order.
    pub accepted: Vec<ProvenanceRow>,
    /// Units routed through the dead-letter queue.
    pub dead_letters: u64,
    /// Stale (superseded-epoch) results rejected.
    pub stale_rejected: u64,
    /// Leases reassigned after worker death or steal.
    pub reassigned: u64,
    /// Workers admitted over the run.
    pub workers_admitted: u32,
}

/// A finished cluster run.
pub struct ClusterOutcome {
    /// The filled snapshot store (same content as the archive).
    pub store: SnapshotStore,
    /// Provenance and fault statistics.
    pub report: ClusterReport,
}

enum Event {
    Incoming(Conn),
    Frame(u32, Msg),
    Silence(u32),
    Closed(u32),
}

struct WorkerConn {
    tx: Arc<dyn FrameTx>,
    name: String,
    admitted: bool,
}

/// Runs a cluster sweep: admits workers from `conns`, leases every due
/// (day, source-shard) unit, and commits each finished day to the archive
/// at `path` (resuming committed days like the single-process sweep).
/// Returns once every day is durable; workers are sent `Drain`.
pub fn serve(
    conns: mpsc::Receiver<Conn>,
    config: ClusterConfig,
    path: &std::path::Path,
) -> io::Result<ClusterOutcome> {
    serve_observed(conns, config, path, None)
}

/// [`serve`] with an optional streaming-analysis observer: exactly the
/// hook [`Study::run_archived_observed`] offers the single-process
/// sweep. The observer runs manager-side only — it consumes each day's
/// deterministically merged pages, so its state (and checkpoint pages)
/// are independent of worker count and scheduling.
///
/// [`Study::run_archived_observed`]: dps_measure::Study::run_archived_observed
pub fn serve_observed(
    conns: mpsc::Receiver<Conn>,
    config: ClusterConfig,
    path: &std::path::Path,
    mut observer: Option<&mut dyn DayObserver>,
) -> io::Result<ClusterOutcome> {
    let mut writer = StoreWriter::resume_or_create(path, 1, Some(UNIQUE_KEY_COLUMN))?;
    let mut store = SnapshotStore::new();
    resume_store_observed(&mut store, &writer, path, reborrow_observer(&mut observer))?;
    let mut interner = SldInterner::new();
    let mut world = World::imc2016(config.params);
    let mut sched = Scheduler::new(config.scheduler);
    let mut report = ClusterReport::default();

    let (events_tx, events) = mpsc::channel::<Event>();
    // Admission pump: forwards accepted connections into the event loop.
    {
        let events_tx = events_tx.clone();
        std::thread::spawn(move || {
            while let Ok(conn) = conns.recv() {
                if events_tx.send(Event::Incoming(conn)).is_err() {
                    return;
                }
            }
        });
    }

    let mut workers: BTreeMap<u32, WorkerConn> = BTreeMap::new();
    let mut next_worker: u32 = 1;

    let mut day = 0u32;
    while day < config.study.days {
        // Advance through *every* day — including committed ones — so
        // the manager's world evolves exactly as in a fresh run.
        world.advance_to(Day(day));
        if day_committed(&writer, &config.study, day) {
            if observer.is_some() && !writer.contains(day, ANALYSIS_SOURCE) {
                return Err(io::Error::other(
                    "archive day committed without an analysis checkpoint; \
                     re-run without --stream or start a fresh archive",
                ));
            }
            day += config.study.stride.max(1);
            continue;
        }
        let due = due_sources_for(&config.study, day);
        let mut shard_counts: BTreeMap<u8, u32> = BTreeMap::new();
        let mut units = Vec::new();
        for &source in &due {
            let len = source_len(&world, source) as u32;
            let shards = effective_shards(config.shards_per_source, sched.live_workers(), len);
            shard_counts.insert(source.index() as u8, shards);
            for shard in 0..shards {
                let start = len * shard / shards;
                let end = len * (shard + 1) / shards;
                units.push(UnitSpec {
                    key: UnitKey {
                        source: source.index() as u8,
                        shard,
                    },
                    start,
                    count: end - start,
                });
            }
        }
        sched.begin_day(units);

        let mut grants: BTreeMap<u64, LeaseGrant> = BTreeMap::new();
        let mut collected: BTreeMap<UnitKey, Vec<RawRow>> = BTreeMap::new();
        let mut day_telemetry = Snapshot::default();
        day_telemetry.counters.insert("measure.days", 1);

        while !sched.day_done() {
            for grant in sched.next_grants() {
                let sent = workers.get(&grant.worker).is_some_and(|w| {
                    let lease = Msg::Lease {
                        lease: grant.lease,
                        epoch: grant.epoch,
                        day,
                        source: grant.unit.key.source,
                        shard: grant.unit.key.shard,
                        start: grant.unit.start,
                        count: grant.unit.count,
                    };
                    w.tx.send_vec(wire::encode(&lease)).is_ok()
                });
                if sent {
                    grants.insert(grant.lease, grant);
                } else {
                    sched.worker_left(grant.worker);
                    workers.remove(&grant.worker);
                }
            }
            if sched.day_done() {
                break;
            }
            if sched.day_poisoned() {
                return Err(io::Error::other(format!(
                    "cluster: day {day} failed after exhausting lease attempts"
                )));
            }
            let Ok(event) = events.recv() else {
                return Err(io::Error::other("cluster: event channel closed"));
            };
            match event {
                Event::Incoming(conn) => {
                    let id = next_worker;
                    next_worker += 1;
                    workers.insert(
                        id,
                        WorkerConn {
                            tx: conn.tx,
                            name: format!("worker-{id}"),
                            admitted: false,
                        },
                    );
                    spawn_reader(id, conn.rx, events_tx.clone());
                }
                Event::Frame(id, msg) => {
                    handle_frame(
                        id,
                        msg,
                        day,
                        &config,
                        &mut sched,
                        &mut workers,
                        &mut grants,
                        &mut collected,
                        &mut day_telemetry,
                        &mut report,
                    );
                }
                Event::Silence(id) => {
                    if sched.silence(id) {
                        workers.remove(&id);
                    }
                }
                Event::Closed(id) => {
                    sched.worker_left(id);
                    workers.remove(&id);
                }
            }
        }
        report.dead_letters = sched.dead_letters();
        report.stale_rejected = sched.stale_rejected();
        report.reassigned = sched.reassigned();

        // Merge in deterministic order: due-source order, shard order,
        // row order — the exact order the single-process sweep interns.
        let mut pages = Vec::new();
        for &source in &due {
            let sid = source.index() as u8;
            let shards = shard_counts.get(&sid).copied().unwrap_or(1);
            let mut builder = dps_columnar::TableBuilder::new(schema());
            let mut data_points = 0u64;
            let mut attempted = 0u32;
            let mut failed = 0u32;
            let mut causes = CauseCounts::default();
            for shard in 0..shards {
                let key = UnitKey { source: sid, shard };
                for raw in collected.remove(&key).unwrap_or_default() {
                    attempted += 1;
                    failed += u32::from(raw.failed && raw.retryable);
                    causes.merge(&raw.causes);
                    let row = raw.intern(&mut store.dict, &mut interner);
                    data_points += u64::from(row.data_points);
                    builder.push_row(&row.pack(day, source));
                }
            }
            let mut quality = DayQuality::perfect(day, source, attempted, failed);
            quality.causes = causes;
            pages.push(SourcePage {
                source,
                table: builder.finish(),
                data_points,
                quality,
            });
        }
        append_day_observed(
            &mut writer,
            &mut store,
            day,
            pages,
            day_telemetry,
            reborrow_observer(&mut observer),
        )?;
        day += config.study.stride.max(1);
    }

    for w in workers.values() {
        w.tx.send_vec(wire::encode(&Msg::Drain)).ok();
    }
    report.workers_admitted = next_worker - 1;
    Ok(ClusterOutcome { store, report })
}

/// Handles one decoded frame from worker `id`.
#[allow(clippy::too_many_arguments)] // event-loop plumbing, not an API
fn handle_frame(
    id: u32,
    msg: Msg,
    day: u32,
    config: &ClusterConfig,
    sched: &mut Scheduler,
    workers: &mut BTreeMap<u32, WorkerConn>,
    grants: &mut BTreeMap<u64, LeaseGrant>,
    collected: &mut BTreeMap<UnitKey, Vec<RawRow>>,
    day_telemetry: &mut Snapshot,
    report: &mut ClusterReport,
) {
    let admitted = workers.get(&id).is_some_and(|w| w.admitted);
    match msg {
        Msg::Hello { proto, name } if !admitted => {
            if proto != PROTO_VERSION {
                workers.remove(&id);
                return;
            }
            let welcome = Msg::Welcome {
                proto: PROTO_VERSION,
                worker: id,
                seed: config.params.seed,
                scale_bits: config.params.scale.to_bits(),
                gtld_days: config.params.gtld_days,
                cc_start_day: config.params.cc_start_day,
            };
            let ok = workers.get_mut(&id).is_some_and(|w| {
                if !name.is_empty() {
                    w.name = name.clone();
                }
                w.admitted = true;
                w.tx.send_vec(wire::encode(&welcome)).is_ok()
            });
            if ok {
                sched.worker_joined(id);
            } else {
                workers.remove(&id);
            }
        }
        Msg::Heartbeat { .. } if admitted => sched.heartbeat(id),
        Msg::Reject { lease, epoch } if admitted => {
            if let Some(grant) = grants.remove(&lease) {
                sched.reject_lease(id, grant.unit.key, lease, epoch);
            }
        }
        Msg::Result(res) if admitted => {
            handle_result(
                id,
                *res,
                day,
                sched,
                workers,
                grants,
                collected,
                day_telemetry,
                report,
            );
        }
        Msg::Bye => {
            sched.worker_left(id);
            workers.remove(&id);
        }
        // Anything else out of protocol order: drop the connection.
        _ => {
            sched.worker_left(id);
            workers.remove(&id);
        }
    }
}

/// Validates and absorbs one lease result.
#[allow(clippy::too_many_arguments)] // event-loop plumbing, not an API
fn handle_result(
    id: u32,
    res: LeaseResult,
    day: u32,
    sched: &mut Scheduler,
    workers: &mut BTreeMap<u32, WorkerConn>,
    grants: &mut BTreeMap<u64, LeaseGrant>,
    collected: &mut BTreeMap<UnitKey, Vec<RawRow>>,
    day_telemetry: &mut Snapshot,
    report: &mut ClusterReport,
) {
    let Some(&grant) = grants.get(&res.lease) else {
        // Unknown or long-superseded lease: let the scheduler count it
        // as stale liveness traffic.
        sched.heartbeat(id);
        return;
    };
    if res.day != day {
        // A previous day's lease answered late — the day is already
        // committed, so the result is stale, not a protocol violation.
        grants.remove(&res.lease);
        sched.heartbeat(id);
        return;
    }
    // Rows arrive as decoded `RawRow`s (names validated by the wire
    // layer); only the unit shape needs checking before acceptance —
    // once the scheduler marks a unit Done it will never be re-leased.
    let shape_ok = res.source == grant.unit.key.source
        && res.shard == grant.unit.key.shard
        && res.rows.len() == grant.unit.count as usize;
    if !shape_ok {
        // A malformed unit: treat the worker as faulty; its in-flight
        // unit dead-letters for reassignment.
        sched.worker_left(id);
        workers.remove(&id);
        return;
    }
    let raws = res.rows;
    match sched.offer_result(id, grant.unit.key, res.lease, res.epoch) {
        Disposition::Stale => {
            grants.remove(&res.lease);
        }
        Disposition::Accept => {
            grants.remove(&res.lease);
            let data_points: u64 = raws.iter().map(|r| u64::from(r.data_points)).sum();
            report.accepted.push(ProvenanceRow {
                day,
                source: grant.unit.key.source,
                shard: grant.unit.key.shard,
                worker: workers
                    .get(&id)
                    .map(|w| w.name.clone())
                    .unwrap_or_else(|| format!("worker-{id}")),
                rows: grant.unit.count,
                data_points,
            });
            for (idx, v) in &res.telemetry {
                if let Some((name, _)) = CATALOG.get(usize::from(*idx)) {
                    *day_telemetry.counters.entry(name).or_insert(0) += v;
                }
            }
            collected.insert(grant.unit.key, raws);
        }
    }
}

/// Reader thread: turns a connection's frames into events. Exits when
/// the peer vanishes, a frame is malformed, or the event loop is gone.
fn spawn_reader(id: u32, mut rx: Box<dyn crate::transport::FrameRx>, events: mpsc::Sender<Event>) {
    std::thread::spawn(move || loop {
        let event = match rx.recv() {
            Ok(Some(payload)) => match wire::decode(&payload) {
                Some(msg) => Event::Frame(id, msg),
                None => {
                    events.send(Event::Closed(id)).ok();
                    return;
                }
            },
            Ok(None) => Event::Silence(id),
            Err(_) => {
                events.send(Event::Closed(id)).ok();
                return;
            }
        };
        let closing = matches!(event, Event::Closed(_));
        if events.send(event).is_err() || closing {
            return;
        }
    });
}

/// Entry count of a source's input list for the world's current day.
fn source_len(world: &World, source: Source) -> usize {
    match source.tld() {
        Some(tld) => world.zone_entries(tld).len(),
        None => world.alexa_entries().len(),
    }
}

/// Shard count for a source of `len` entries: the configured count, or
/// twice the live workers (min 1), never more than the entry count.
fn effective_shards(configured: u32, live_workers: usize, len: u32) -> u32 {
    let want = if configured > 0 {
        configured
    } else {
        (live_workers.max(1) as u32) * 2
    };
    want.clamp(1, len.max(1))
}
