//! Per-worker provenance: who swept what.
//!
//! The archive must stay byte-identical to the single-process run, so
//! worker attribution cannot live in archive pages. It lands in a TSV
//! sidecar next to `archive.dps` instead, and `dpscope metrics --workers`
//! renders it as labelled counters (`cluster.rows{worker="…"} …`) — a
//! separate view that leaves the default snapshot rendering untouched.

use crate::manager::{ClusterReport, ProvenanceRow};
use dps_telemetry::Snapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Sidecar file name, alongside the archive.
pub const PROVENANCE_FILE: &str = "provenance.tsv";

/// Writes a run's provenance sidecar (acceptance order).
pub fn write_provenance(path: &Path, report: &ClusterReport) -> io::Result<()> {
    let mut out = String::from("# dps-cluster provenance v1\n");
    out.push_str("worker\tday\tsource\tshard\trows\tdata_points\n");
    for row in &report.accepted {
        let _ = writeln!(
            out,
            "{}\t{}\t{}\t{}\t{}\t{}",
            row.worker, row.day, row.source, row.shard, row.rows, row.data_points
        );
    }
    std::fs::write(path, out)
}

/// Reads a provenance sidecar back; malformed lines are an error.
pub fn read_provenance(path: &Path) -> io::Result<Vec<ProvenanceRow>> {
    let text = std::fs::read_to_string(path)?;
    let mut rows = Vec::new();
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') || line.starts_with("worker\t") {
            continue;
        }
        let mut f = line.split('\t');
        let parsed = (|| {
            Some(ProvenanceRow {
                worker: f.next()?.to_owned(),
                day: f.next()?.parse().ok()?,
                source: f.next()?.parse().ok()?,
                shard: f.next()?.parse().ok()?,
                rows: f.next()?.parse().ok()?,
                data_points: f.next()?.parse().ok()?,
            })
        })();
        match parsed {
            Some(row) => rows.push(row),
            None => return Err(io::Error::other(format!("bad provenance line: {line}"))),
        }
    }
    Ok(rows)
}

/// Folds provenance rows into one snapshot per worker: leases, rows and
/// data points attributed to that worker across all days (the multi-day
/// merge, one label dimension deep).
pub fn per_worker_metrics(rows: &[ProvenanceRow]) -> BTreeMap<String, Snapshot> {
    let mut out: BTreeMap<String, Snapshot> = BTreeMap::new();
    for row in rows {
        let snap = out.entry(row.worker.clone()).or_default();
        *snap.counters.entry("cluster.leases").or_insert(0) += 1;
        *snap.counters.entry("cluster.rows").or_insert(0) += u64::from(row.rows);
        *snap.counters.entry("cluster.data.points").or_insert(0) += row.data_points;
    }
    out
}

/// Renders per-worker provenance as labelled instrument lines, workers
/// in name order.
pub fn render_per_worker(rows: &[ProvenanceRow]) -> String {
    let mut out = String::new();
    for (worker, snap) in per_worker_metrics(rows) {
        out.push_str(&snap.to_text_labeled("worker", &worker));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ClusterReport {
        ClusterReport {
            accepted: vec![
                ProvenanceRow {
                    day: 0,
                    source: 0,
                    shard: 0,
                    worker: "a".into(),
                    rows: 10,
                    data_points: 70,
                },
                ProvenanceRow {
                    day: 0,
                    source: 0,
                    shard: 1,
                    worker: "b".into(),
                    rows: 12,
                    data_points: 80,
                },
                ProvenanceRow {
                    day: 1,
                    source: 1,
                    shard: 0,
                    worker: "a".into(),
                    rows: 5,
                    data_points: 30,
                },
            ],
            ..ClusterReport::default()
        }
    }

    #[test]
    fn sidecar_roundtrips() {
        let path =
            std::env::temp_dir().join(format!("dps-prov-{}-{}.tsv", std::process::id(), line!()));
        let report = sample();
        write_provenance(&path, &report).unwrap();
        let rows = read_provenance(&path).unwrap();
        assert_eq!(rows, report.accepted);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn per_worker_merge_spans_days() {
        let report = sample();
        let by_worker = per_worker_metrics(&report.accepted);
        let a = by_worker.get("a").unwrap();
        assert_eq!(a.counters.get("cluster.leases"), Some(&2));
        assert_eq!(a.counters.get("cluster.rows"), Some(&15));
        assert_eq!(a.counters.get("cluster.data.points"), Some(&100));
        let text = render_per_worker(&report.accepted);
        assert!(text.contains("cluster.rows{worker=\"a\"} 15"), "{text}");
        assert!(text.contains("cluster.rows{worker=\"b\"} 12"), "{text}");
    }
}
