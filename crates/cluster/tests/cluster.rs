//! End-to-end cluster runs over the loopback transport: byte-identity
//! against the single-process sweep, crash recovery through the
//! dead-letter path, and determinism across worker counts.

use dps_cluster::manager::{serve, ClusterConfig, ClusterOutcome};
use dps_cluster::transport::{loopback_conn, Conn};
use dps_cluster::worker::{run_agent, WorkerOptions, WorkerSummary};
use dps_ecosystem::{ScenarioParams, World};
use dps_measure::{Study, StudyConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::time::Duration;

static UNIQ: AtomicU64 = AtomicU64::new(0);

fn temp_archive(tag: &str) -> PathBuf {
    let n = UNIQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("dps-cluster-{tag}-{}-{n}.dps", std::process::id()))
}

fn tiny_params(seed: u64) -> ScenarioParams {
    ScenarioParams {
        seed,
        scale: 0.01,
        gtld_days: 4,
        cc_start_day: 2,
    }
}

fn tiny_config(seed: u64) -> ClusterConfig {
    ClusterConfig::for_params(tiny_params(seed))
}

/// Runs a cluster sweep with `n` loopback workers; returns the outcome
/// and each worker's summary.
fn run_cluster(
    config: ClusterConfig,
    path: &std::path::Path,
    worker_opts: Vec<WorkerOptions>,
) -> (
    std::io::Result<ClusterOutcome>,
    Vec<std::io::Result<WorkerSummary>>,
) {
    let (conn_tx, conn_rx) = mpsc::channel::<Conn>();
    let mut agent_threads = Vec::new();
    for opts in worker_opts {
        // Liveness contract: the manager's read timeout must exceed the
        // worker heartbeat interval, so a healthy worker never shows a
        // quiet interval.
        let (server_end, worker_end) = loopback_conn(Duration::from_millis(250));
        conn_tx.send(server_end).unwrap();
        agent_threads.push(std::thread::spawn(move || run_agent(worker_end, opts)));
    }
    drop(conn_tx);
    let outcome = serve(conn_rx, config, path);
    let summaries = agent_threads
        .into_iter()
        .map(|t| t.join().unwrap())
        .collect();
    (outcome, summaries)
}

fn single_process_archive(seed: u64, path: &std::path::Path) {
    let params = tiny_params(seed);
    let mut world = World::imc2016(params);
    let config = StudyConfig {
        days: params.gtld_days,
        cc_start_day: params.cc_start_day,
        stride: 1,
    };
    Study::new(config).run_archived(&mut world, path).unwrap();
}

#[test]
fn cluster_archive_is_byte_identical_across_worker_counts() {
    let seed = 42;
    let reference = temp_archive("ref");
    single_process_archive(seed, &reference);
    let want = std::fs::read(&reference).unwrap();

    for workers in [1usize, 2, 4] {
        let path = temp_archive(&format!("w{workers}"));
        let opts = (0..workers)
            .map(|i| WorkerOptions {
                name: format!("agent-{i}"),
                ..WorkerOptions::default()
            })
            .collect();
        let (outcome, summaries) = run_cluster(tiny_config(seed), &path, opts);
        let outcome = outcome.unwrap();
        for s in summaries {
            let s = s.unwrap();
            assert!(!s.crashed);
        }
        let got = std::fs::read(&path).unwrap();
        assert_eq!(
            got, want,
            "{workers}-worker archive differs from single-process run"
        );
        assert_eq!(outcome.report.stale_rejected, 0);
        assert!(
            !outcome.report.accepted.is_empty(),
            "provenance records accepted leases"
        );
        std::fs::remove_file(&path).ok();
    }
    std::fs::remove_file(&reference).ok();
}

#[test]
fn worker_crash_mid_sweep_is_recovered_byte_identically() {
    let seed = 7;
    let reference = temp_archive("crash-ref");
    single_process_archive(seed, &reference);
    let want = std::fs::read(&reference).unwrap();

    let path = temp_archive("crash");
    // One agent dies abruptly after its second lease (mid-day); the
    // other sweeps on. The manager must dead-letter the lost lease and
    // finish with the exact same bytes.
    let opts = vec![
        WorkerOptions {
            name: "doomed".into(),
            fail_after_leases: Some(2),
            ..WorkerOptions::default()
        },
        WorkerOptions {
            name: "survivor".into(),
            ..WorkerOptions::default()
        },
    ];
    let (outcome, summaries) = run_cluster(tiny_config(seed), &path, opts);
    let outcome = outcome.unwrap();
    let crashed = summaries
        .into_iter()
        .filter(|s| s.as_ref().is_ok_and(|s| s.crashed))
        .count();
    assert_eq!(crashed, 1, "fault injection fired");
    assert!(
        outcome.report.dead_letters >= 1,
        "lost lease routed through the dead-letter path"
    );
    let got = std::fs::read(&path).unwrap();
    assert_eq!(got, want, "post-crash archive differs");
    // Provenance: the survivor picked up work.
    assert!(outcome
        .report
        .accepted
        .iter()
        .any(|row| row.worker == "survivor"));
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&reference).ok();
}

#[test]
fn cluster_resumes_a_partial_archive() {
    let seed = 11;
    let reference = temp_archive("resume-ref");
    single_process_archive(seed, &reference);
    let want = std::fs::read(&reference).unwrap();

    // First: a cluster run over a 2-day prefix of the calendar.
    let path = temp_archive("resume");
    let mut prefix = tiny_config(seed);
    prefix.study.days = 2;
    let (outcome, _) = run_cluster(prefix, &path, vec![WorkerOptions::default()]);
    outcome.unwrap();
    // Then: the full calendar resumes over the committed prefix.
    let (outcome, _) = run_cluster(tiny_config(seed), &path, vec![WorkerOptions::default()]);
    outcome.unwrap();
    let got = std::fs::read(&path).unwrap();
    assert_eq!(got, want, "resumed cluster archive differs");
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&reference).ok();
}

#[test]
fn cluster_telemetry_pages_match_single_process() {
    use dps_measure::Source;
    let seed = 13;
    let path = temp_archive("tele");
    let (outcome, _) = run_cluster(
        tiny_config(seed),
        &path,
        vec![WorkerOptions::default(), WorkerOptions::default()],
    );
    let outcome = outcome.unwrap();
    // The merged store carries per-day telemetry equal to the
    // single-process study's.
    let params = tiny_params(seed);
    let mut world = World::imc2016(params);
    let single = Study::new(StudyConfig {
        days: params.gtld_days,
        cc_start_day: params.cc_start_day,
        stride: 1,
    })
    .run(&mut world);
    for s in [Source::Com, Source::Nl] {
        assert_eq!(
            outcome.store.stats(s).data_points,
            single.stats(s).data_points,
            "{s:?}"
        );
    }
    std::fs::remove_file(&path).ok();
}
