//! Property-based tests for the cluster wire protocol, mirroring the
//! DNS wire-format proptests: arbitrary well-formed messages survive an
//! encode → decode round trip, and the decoder never panics — or
//! accepts — truncated or bit-flipped frames.

use dps_cluster::wire::{self, LeaseResult, Msg, PROTO_VERSION};
use dps_dns::Name;
use dps_measure::collector::RawRow;
use dps_measure::quality::CauseCounts;
use proptest::prelude::*;

fn arb_label() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9]([a-z0-9-]{0,14}[a-z0-9])?").unwrap()
}

fn arb_name() -> impl Strategy<Value = Name> {
    proptest::collection::vec(arb_label(), 0..5).prop_map(|labels| {
        let refs: Vec<&[u8]> = labels.iter().map(|l| l.as_bytes()).collect();
        Name::from_labels(refs).expect("labels within limits")
    })
}

fn arb_opt_name() -> impl Strategy<Value = Option<Name>> {
    prop_oneof![Just(None), arb_name().prop_map(Some)]
}

fn arb_causes() -> impl Strategy<Value = CauseCounts> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
    )
        .prop_map(
            |(timeouts, unreachable, corrupt, servfail, other)| CauseCounts {
                timeouts,
                unreachable,
                corrupt,
                servfail,
                other,
            },
        )
}

fn arb_row() -> impl Strategy<Value = RawRow> {
    (
        any::<u32>(),
        arb_opt_name(),
        any::<[u32; 7]>(),
        any::<[bool; 3]>(),
        arb_causes(),
        (arb_opt_name(), arb_opt_name()),
        (arb_opt_name(), arb_opt_name()),
        (arb_opt_name(), arb_opt_name()),
    )
        .prop_map(|(entry, apex, nums, flags, causes, cnames, ns, ns_hosts)| {
            let [apex_v4, www_v4, asn1, asn2, www_asn, aaaa_asn, data_points] = nums;
            let [failed, retryable, aaaa] = flags;
            RawRow {
                entry,
                apex,
                apex_v4,
                www_v4,
                aaaa,
                cnames: [cnames.0, cnames.1],
                ns: [ns.0, ns.1],
                ns_hosts: [ns_hosts.0, ns_hosts.1],
                asn1,
                asn2,
                www_asn,
                aaaa_asn,
                failed,
                data_points,
                retryable,
                causes,
            }
        })
}

fn arb_msg() -> impl Strategy<Value = Msg> {
    prop_oneof![
        proptest::string::string_regex("[ -~]{0,24}")
            .unwrap()
            .prop_map(|name| Msg::Hello {
                proto: PROTO_VERSION,
                name
            }),
        (
            any::<u32>(),
            any::<u64>(),
            any::<u64>(),
            any::<u32>(),
            any::<u32>()
        )
            .prop_map(|(worker, seed, scale_bits, gtld_days, cc_start_day)| {
                Msg::Welcome {
                    proto: PROTO_VERSION,
                    worker,
                    seed,
                    scale_bits,
                    gtld_days,
                    cc_start_day,
                }
            }),
        (
            any::<u64>(),
            any::<u32>(),
            any::<u32>(),
            any::<u8>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>()
        )
            .prop_map(|(lease, epoch, day, source, shard, start, count)| {
                Msg::Lease {
                    lease,
                    epoch,
                    day,
                    source,
                    shard,
                    start,
                    count,
                }
            }),
        (
            any::<u64>(),
            any::<u32>(),
            any::<u32>(),
            any::<u8>(),
            any::<u32>(),
            proptest::collection::vec(arb_row(), 0..4),
            proptest::collection::vec((any::<u16>(), any::<u64>()), 0..4),
        )
            .prop_map(|(lease, epoch, day, source, shard, rows, telemetry)| {
                Msg::Result(Box::new(LeaseResult {
                    lease,
                    epoch,
                    day,
                    source,
                    shard,
                    rows,
                    telemetry,
                }))
            }),
        any::<u64>().prop_map(|seq| Msg::Heartbeat { seq }),
        (any::<u64>(), any::<u32>()).prop_map(|(lease, epoch)| Msg::Reject { lease, epoch }),
        Just(Msg::Drain),
        Just(Msg::Bye),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn message_roundtrip(msg in arb_msg()) {
        let payload = wire::encode(&msg);
        let parsed = wire::decode(&payload);
        prop_assert_eq!(parsed, Some(msg));
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Any result is fine; panicking or looping is not.
        let _ = wire::decode(&bytes);
    }

    #[test]
    fn every_strict_prefix_is_rejected(msg in arb_msg(), cut in any::<u32>()) {
        // Bodies are fixed-order with trailing-garbage detection, so a
        // truncated frame can never masquerade as a shorter valid one.
        let payload = wire::encode(&msg);
        let keep = cut as usize % payload.len().max(1);
        prop_assert_eq!(wire::decode(payload.get(..keep).unwrap_or(&[])), None);
    }

    #[test]
    fn decoder_never_panics_on_bit_flip(msg in arb_msg(), flip in any::<(u32, u8)>()) {
        let mut payload = wire::encode(&msg);
        let idx = flip.0 as usize % payload.len();
        let mask = if flip.1 == 0 { 1 } else { flip.1 };
        payload[idx] ^= mask;
        let decoded = wire::decode(&payload);
        if idx < 3 {
            // Magic or version byte: always rejected outright.
            prop_assert_eq!(decoded, None);
        }
    }

    #[test]
    fn decoder_never_panics_under_multi_byte_corruption(
        msg in arb_msg(),
        flips in proptest::collection::vec(any::<(u32, u8)>(), 1..8),
    ) {
        let mut payload = wire::encode(&msg);
        if !payload.is_empty() {
            for (at, x) in flips {
                let idx = at as usize % payload.len();
                payload[idx] ^= x;
            }
            let _ = wire::decode(&payload);
        }
    }

    #[test]
    fn frame_reassembly_survives_arbitrary_chunking(
        msgs in proptest::collection::vec(arb_msg(), 1..5),
        chunk in 1usize..64,
    ) {
        // A byte stream of concatenated frames, fed to the reassembly
        // buffer in arbitrary-size read chunks, yields exactly the sent
        // payload sequence.
        let payloads: Vec<Vec<u8>> = msgs.iter().map(wire::encode).collect();
        let stream: Vec<u8> = payloads.iter().flat_map(|p| wire::frame(p)).collect();
        let mut fb = wire::FrameBuf::new();
        let mut got = Vec::new();
        for part in stream.chunks(chunk) {
            fb.extend(part);
            while let Some(p) = fb.next_frame().expect("within frame cap") {
                got.push(p);
            }
        }
        prop_assert_eq!(got, payloads);
    }
}

/// Exhaustive, deterministic complement to the random truncations: a
/// realistic lease-result frame must be rejected — without panicking —
/// when cut at *every* possible byte boundary.
#[test]
fn every_prefix_of_a_result_frame_is_rejected() {
    let row = RawRow {
        entry: 7,
        apex: Some("www.example.com".parse().expect("name")),
        apex_v4: 0x0a00_0001,
        www_v4: 0x0a00_0002,
        aaaa: true,
        cnames: [Some("edge.example.net".parse().expect("name")), None],
        ns: [Some("ns1.example.net".parse().expect("name")), None],
        ns_hosts: [None, None],
        asn1: 64500,
        asn2: 64501,
        www_asn: 64502,
        aaaa_asn: 64503,
        failed: false,
        data_points: 9,
        retryable: false,
        causes: CauseCounts::default(),
    };
    let msg = Msg::Result(Box::new(LeaseResult {
        lease: 42,
        epoch: 3,
        day: 1,
        source: 0,
        shard: 2,
        rows: vec![row],
        telemetry: vec![(0, 11)],
    }));
    let payload = wire::encode(&msg);
    assert_eq!(wire::decode(&payload), Some(msg));
    for keep in 0..payload.len() {
        assert_eq!(wire::decode(&payload[..keep]), None, "prefix {keep}");
    }
}
