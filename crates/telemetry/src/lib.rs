//! Deterministic, dependency-free observability for the sweep pipeline.
//!
//! The paper's Stage I–III measurement ran daily as production
//! infrastructure; this crate is the reproduction's flight recorder. It
//! deliberately does **less** than a general metrics library so that it can
//! uphold one contract: *telemetry is a pure function of the work
//! performed*. Two same-seed runs must render byte-identical snapshots.
//!
//! To that end:
//!
//! - Instruments are keyed by `&'static str` names and live in a
//!   [`Registry`] backed by a `BTreeMap`, so every rendering ([`Snapshot`],
//!   [`Snapshot::to_text`], [`Snapshot::to_json`]) is in sorted name order
//!   with no hashing involved.
//! - There is no wall clock anywhere. [`Span`]s measure *virtual* time:
//!   callers pass in timestamps from the simulation's own clocks.
//! - Counters are sharded across cache-line-padded atomics (threads pick a
//!   shard round-robin at first use) so hot-path increments never contend;
//!   the reported value is the shard sum, which is independent of thread
//!   scheduling.
//! - Histograms use fixed log₂ buckets, so bucket assignment is exact
//!   integer arithmetic, not floating-point binning.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc` clones
//! fetched once at construction time; incrementing never takes a lock.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Number of histogram buckets: one for zero plus one per power of two.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Counter shards; more than the worker parallelism the pipeline uses.
const SHARDS: usize = 8;

/// Round-robin assignment of threads to counter shards. Which shard a
/// thread lands on affects only *where* an increment is stored, never the
/// sum, so scheduling nondeterminism cannot leak into snapshots.
static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);

std::thread_local! {
    static SHARD: usize = NEXT_THREAD.fetch_add(1, Ordering::Relaxed) % SHARDS;
}

/// One cache line per shard so concurrent increments do not false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

#[derive(Default)]
struct CounterInner {
    shards: [PaddedU64; SHARDS],
}

/// Monotonic counter; `value()` is the sum over all shards.
#[derive(Clone, Default)]
pub struct Counter {
    inner: Arc<CounterInner>,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` to this thread's shard (lock-free, uncontended).
    pub fn add(&self, n: u64) {
        let shard = SHARD.with(|s| *s);
        if let Some(s) = self.inner.shards.get(shard) {
            s.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current total across shards.
    pub fn value(&self) -> u64 {
        self.inner
            .shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// Last-write-wins signed level (e.g. a queue depth).
#[derive(Clone, Default)]
pub struct Gauge {
    inner: Arc<AtomicI64>,
}

impl Gauge {
    /// Replaces the level.
    pub fn set(&self, v: i64) {
        self.inner.store(v, Ordering::Relaxed);
    }

    /// Adjusts the level by `delta`.
    pub fn add(&self, delta: i64) {
        self.inner.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current level.
    pub fn value(&self) -> i64 {
        self.inner.load(Ordering::Relaxed)
    }
}

struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for HistogramInner {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Log₂-bucketed histogram of `u64` observations.
///
/// Bucket 0 holds exact zeros; bucket `b ≥ 1` holds values in
/// `[2^(b-1), 2^b - 1]`. Bucketing is pure integer arithmetic
/// (`leading_zeros`), so it is exact and platform-independent.
#[derive(Clone, Default)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, v: u64) {
        let b = bucket_index(v) as usize;
        if let Some(bucket) = self.inner.buckets.get(b) {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .inner
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let v = b.load(Ordering::Relaxed);
                (v != 0).then_some((i as u8, v))
            })
            .collect();
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            buckets,
        }
    }
}

/// Bucket index for a value: 0 for 0, else `64 - leading_zeros`.
pub fn bucket_index(v: u64) -> u8 {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as u8
    }
}

/// Inclusive `[lo, hi]` value range covered by bucket `b`.
pub fn bucket_bounds(b: u8) -> (u64, u64) {
    match b {
        0 => (0, 0),
        64.. => (1u64 << 63, u64::MAX),
        _ => (1u64 << (b - 1), (1u64 << b) - 1),
    }
}

/// An in-flight virtual-time measurement that lands in a [`Histogram`].
///
/// Spans never read a clock themselves; the caller supplies both
/// endpoints from whatever virtual clock drives the measured work.
#[must_use = "a span records nothing until finish() is called"]
pub struct Span {
    hist: Histogram,
    start_us: u64,
}

impl Span {
    /// Records `end_us - start_us` (saturating) into the histogram.
    pub fn finish(self, end_us: u64) {
        self.hist.observe(end_us.saturating_sub(self.start_us));
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// Named-instrument registry; clones share the same instruments.
///
/// Looking up an existing name with a *different* kind returns a detached
/// instrument (functional, but not part of any snapshot) instead of
/// panicking — instrumentation must never take the pipeline down.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<BTreeMap<&'static str, Metric>>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("metrics", &self.lock().len())
            .finish()
    }
}

impl Registry {
    /// Fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<&'static str, Metric>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The counter registered under `name`, creating it on first use.
    pub fn counter(&self, name: &'static str) -> Counter {
        let mut metrics = self.lock();
        match metrics
            .entry(name)
            .or_insert_with(|| Metric::Counter(Counter::default()))
        {
            Metric::Counter(c) => c.clone(),
            _ => Counter::default(),
        }
    }

    /// The gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        let mut metrics = self.lock();
        match metrics
            .entry(name)
            .or_insert_with(|| Metric::Gauge(Gauge::default()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => Gauge::default(),
        }
    }

    /// The histogram registered under `name`, creating it on first use.
    pub fn histogram(&self, name: &'static str) -> Histogram {
        let mut metrics = self.lock();
        match metrics
            .entry(name)
            .or_insert_with(|| Metric::Histogram(Histogram::default()))
        {
            Metric::Histogram(h) => h.clone(),
            _ => Histogram::default(),
        }
    }

    /// Starts a virtual-time span ending up in histogram `name`.
    pub fn span(&self, name: &'static str, start_us: u64) -> Span {
        Span {
            hist: self.histogram(name),
            start_us,
        }
    }

    /// Point-in-time copy of every registered instrument, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self.lock();
        let mut snap = Snapshot::default();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => {
                    snap.counters.insert(name, c.value());
                }
                Metric::Gauge(g) => {
                    snap.gauges.insert(name, g.value());
                }
                Metric::Histogram(h) => {
                    snap.histograms.insert(name, h.snapshot());
                }
            }
        }
        snap
    }
}

/// Frozen histogram state: total count/sum plus the nonzero buckets as
/// `(bucket index, count)` pairs in ascending bucket order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Nonzero buckets, ascending by index.
    pub buckets: Vec<(u8, u64)>,
}

impl HistogramSnapshot {
    fn saturating_sub(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut base = [0u64; HISTOGRAM_BUCKETS];
        for &(b, c) in &earlier.buckets {
            if let Some(slot) = base.get_mut(b as usize) {
                *slot = c;
            }
        }
        let buckets = self
            .buckets
            .iter()
            .filter_map(|&(b, c)| {
                let d = c.saturating_sub(base.get(b as usize).copied().unwrap_or(0));
                (d != 0).then_some((b, d))
            })
            .collect();
        HistogramSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            buckets,
        }
    }

    fn merge(&mut self, other: &HistogramSnapshot) {
        let mut base = [0u64; HISTOGRAM_BUCKETS];
        for &(b, c) in &self.buckets {
            base[b as usize] = c;
        }
        for &(b, c) in &other.buckets {
            base[b as usize] += c;
        }
        self.buckets = base
            .iter()
            .enumerate()
            .filter_map(|(b, &c)| (c != 0).then_some((b as u8, c)))
            .collect();
        self.count += other.count;
        self.sum += other.sum;
    }
}

/// A frozen, ordered view of a [`Registry`] — the unit that gets rendered,
/// diffed ([`Snapshot::since`]), accumulated ([`Snapshot::merge`]) and
/// persisted into archives.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<&'static str, u64>,
    /// Gauge levels by name.
    pub gauges: BTreeMap<&'static str, i64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<&'static str, HistogramSnapshot>,
}

impl Snapshot {
    /// True if no instrument is present.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// The change from `earlier` to `self`: counters and histograms
    /// subtract (saturating); gauges are levels, so the later level wins.
    /// Names only in `self` pass through unchanged.
    pub fn since(&self, earlier: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(&k, &v)| {
                (
                    k,
                    v.saturating_sub(earlier.counters.get(k).copied().unwrap_or(0)),
                )
            })
            .collect();
        let gauges = self.gauges.clone();
        let histograms = self
            .histograms
            .iter()
            .map(|(&k, h)| {
                let delta = match earlier.histograms.get(k) {
                    Some(prev) => h.saturating_sub(prev),
                    None => h.clone(),
                };
                (k, delta)
            })
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Accumulates `other` into `self`: counters and histograms add,
    /// gauges take `other`'s (more recent) level.
    pub fn merge(&mut self, other: &Snapshot) {
        for (&k, &v) in &other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (&k, &v) in &other.gauges {
            self.gauges.insert(k, v);
        }
        for (&k, h) in &other.histograms {
            self.histograms.entry(k).or_default().merge(h);
        }
    }

    /// One instrument per line, sorted by name. Counters and gauges render
    /// as `name value`; histograms as `name count=… sum=… p_hi=…` where
    /// each bucket is labelled by its inclusive upper bound.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            let _ = writeln!(out, "{k} {v}");
        }
        for (k, v) in &self.gauges {
            let _ = writeln!(out, "{k} {v}");
        }
        for (k, h) in &self.histograms {
            let _ = write!(out, "{k} count={} sum={}", h.count, h.sum);
            for &(b, c) in &h.buckets {
                let _ = write!(out, " le{}={c}", bucket_bounds(b).1);
            }
            out.push('\n');
        }
        out
    }

    /// Like [`to_text`](Self::to_text), with one label attached to every
    /// instrument name: `name{key="value"} v`. Renders a *separate* view
    /// (per-worker provenance, per-shard breakdowns) without touching the
    /// unlabelled rendering, which stays byte-stable for equal snapshots.
    /// The label value is escaped (`\` and `"`), so any worker name is
    /// safe to embed.
    pub fn to_text_labeled(&self, key: &str, value: &str) -> String {
        let escaped: String = value
            .chars()
            .flat_map(|c| match c {
                '\\' | '"' => vec!['\\', c],
                _ => vec![c],
            })
            .collect();
        let label = format!("{{{key}=\"{escaped}\"}}");
        let mut out = String::new();
        for (k, v) in &self.counters {
            let _ = writeln!(out, "{k}{label} {v}");
        }
        for (k, v) in &self.gauges {
            let _ = writeln!(out, "{k}{label} {v}");
        }
        for (k, h) in &self.histograms {
            let _ = write!(out, "{k}{label} count={} sum={}", h.count, h.sum);
            for &(b, c) in &h.buckets {
                let _ = write!(out, " le{}={c}", bucket_bounds(b).1);
            }
            out.push('\n');
        }
        out
    }

    /// Compact JSON with sorted keys — byte-stable for equal snapshots.
    /// Histograms render as `{"count":…,"sum":…,"buckets":[[b,c],…]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        let mut first = true;
        for (k, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "{}:{v}", json_string(k));
        }
        out.push_str("},\"gauges\":{");
        first = true;
        for (k, v) in &self.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "{}:{v}", json_string(k));
        }
        out.push_str("},\"histograms\":{");
        first = true;
        for (k, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{}:{{\"count\":{},\"sum\":{},\"buckets\":[",
                json_string(k),
                h.count,
                h.sum
            );
            let mut first_bucket = true;
            for &(b, c) in &h.buckets {
                if !first_bucket {
                    out.push(',');
                }
                first_bucket = false;
                let _ = write!(out, "[{b},{c}]");
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

/// Quotes and escapes `s` as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_threads() {
        let registry = Registry::new();
        let counter = registry.counter("t.counter");
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = counter.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("thread joins");
        }
        assert_eq!(counter.value(), 4000);
    }

    #[test]
    fn bucket_index_covers_the_u64_range() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for b in 0..=64u8 {
            let (lo, hi) = bucket_bounds(b);
            assert_eq!(bucket_index(lo), b);
            assert_eq!(bucket_index(hi), b);
        }
    }

    #[test]
    fn snapshots_render_sorted_and_identically() {
        let build = || {
            let r = Registry::new();
            // Registered in non-sorted order on purpose.
            r.counter("z.last").add(3);
            r.counter("a.first").inc();
            r.gauge("m.level").set(-7);
            r.histogram("h.lat").observe(5);
            r.histogram("h.lat").observe(0);
            r
        };
        let a = build().snapshot();
        let b = build().snapshot();
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
        let text = a.to_text();
        let a_pos = text.find("a.first").expect("a.first present");
        let z_pos = text.find("z.last").expect("z.last present");
        assert!(a_pos < z_pos, "text output not sorted: {text}");
        assert!(a.to_json().contains("\"m.level\":-7"));
    }

    #[test]
    fn kind_clash_returns_a_detached_instrument() {
        let r = Registry::new();
        r.counter("name").add(2);
        let imposter = r.gauge("name");
        imposter.set(99);
        let snap = r.snapshot();
        assert_eq!(snap.counters.get("name"), Some(&2));
        assert!(snap.gauges.is_empty(), "imposter must not be registered");
    }

    #[test]
    fn since_and_merge_are_inverse_on_counters_and_histograms() {
        let r = Registry::new();
        let c = r.counter("c");
        let h = r.histogram("h");
        c.add(10);
        h.observe(4);
        let before = r.snapshot();
        c.add(5);
        h.observe(4);
        h.observe(100);
        let after = r.snapshot();
        let delta = after.since(&before);
        assert_eq!(delta.counters.get("c"), Some(&5));
        let dh = delta.histograms.get("h").expect("h delta");
        assert_eq!(dh.count, 2);
        assert_eq!(dh.sum, 104);
        let mut rebuilt = before.clone();
        rebuilt.merge(&delta);
        assert_eq!(rebuilt, after);
    }

    #[test]
    fn span_records_saturating_virtual_durations() {
        let r = Registry::new();
        let span = r.span("s.us", 1_000);
        span.finish(1_128);
        let backwards = r.span("s.us", 500);
        backwards.finish(100); // clock went "backwards": clamps to 0
        let snap = r.snapshot();
        let h = snap.histograms.get("s.us").expect("span histogram");
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 128);
        assert_eq!(h.buckets, vec![(0, 1), (8, 1)]);
    }

    #[test]
    fn json_escapes_quotes_and_controls() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\u000a\"");
    }
}
