//! Small typed identifiers used across the synthetic world.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the nine studied DPS providers (index into
/// [`crate::spec::PROVIDERS`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ProviderId(pub u8);

/// A hosting company / registrar / parking platform (index into the world's
/// hoster table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct HosterId(pub u8);

/// A scripted third-party basket of domains (Wix, ENOM, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BasketId(pub u8);

/// A second-level domain in the world; also its index in the domain table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DomainId(pub u32);

/// Top-level domains in the world. `.com`, `.net`, `.org` and `.nl` are
/// measured; `.biz` only exists to host `ultradns.biz`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
// The variants are the TLD labels themselves; per-variant docs add nothing.
#[allow(missing_docs)]
pub enum Tld {
    Com,
    Net,
    Org,
    Nl,
    Biz,
}

/// The TLDs measured daily, in paper order.
pub const MEASURED_TLDS: [Tld; 4] = [Tld::Com, Tld::Net, Tld::Org, Tld::Nl];

/// The three gTLDs measured for the full 550 days.
pub const GTLDS: [Tld; 3] = [Tld::Com, Tld::Net, Tld::Org];

impl Tld {
    /// The label, without the dot.
    pub fn label(self) -> &'static str {
        match self {
            Tld::Com => "com",
            Tld::Net => "net",
            Tld::Org => "org",
            Tld::Nl => "nl",
            Tld::Biz => "biz",
        }
    }

    /// Parses a label.
    pub fn from_label(s: &str) -> Option<Self> {
        match s {
            "com" => Some(Tld::Com),
            "net" => Some(Tld::Net),
            "org" => Some(Tld::Org),
            "nl" => Some(Tld::Nl),
            "biz" => Some(Tld::Biz),
            _ => None,
        }
    }

    /// Dense index (0-based) for array-keyed stats.
    pub fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for Tld {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, ".{}", self.label())
    }
}

impl fmt::Display for ProviderId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tld_label_roundtrip() {
        for t in [Tld::Com, Tld::Net, Tld::Org, Tld::Nl, Tld::Biz] {
            assert_eq!(Tld::from_label(t.label()), Some(t));
        }
        assert_eq!(Tld::from_label("xyz"), None);
    }

    #[test]
    fn display_has_dot() {
        assert_eq!(Tld::Com.to_string(), ".com");
    }
}
