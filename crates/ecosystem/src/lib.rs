//! # dps-ecosystem — the synthetic domain-name ecosystem
//!
//! The paper measured the live 2015–2016 Internet; this crate is the
//! substitute required to reproduce it offline (see DESIGN.md §2). It
//! generates and evolves, day by day:
//!
//! * TLD registries (.com/.net/.org/.nl) with calibrated growth and churn,
//! * the nine DPS providers with the exact AS numbers and CNAME/NS SLDs of
//!   the paper's Table 2 (the ground truth the discovery experiment must
//!   rediscover),
//! * hosting companies, registrars and parking platforms,
//! * third-party baskets scripting the paper's §4.4.1 anomalies (Wix,
//!   SiteMatrix, ENOM, ZOHO, Namecheap, Sedo, Fabulous),
//! * organic always-on adopters driving the 1.24× adoption trend, and
//! * attack-driven on-demand customers with per-provider peak-duration
//!   distributions (Fig. 8).
//!
//! The [`World`] answers DNS queries directly (bulk path) and can
//! materialise real zones and authoritative servers on the simulated
//! network (wire path); both produce identical resolutions.

pub mod domain;
pub mod ids;
pub mod scenario;
pub mod schedule;
pub mod spec;
pub mod world;

pub use domain::{domain_label, parse_domain_label, Diversion, DomainState, GroundTruth};
pub use ids::{BasketId, DomainId, HosterId, ProviderId, Tld, GTLDS, MEASURED_TLDS};
pub use scenario::{Scenario, ScenarioParams};
pub use schedule::{Action, Event, Schedule};
pub use world::{World, ZoneEntry};
