//! The world's event schedule: everything that happens on each study day.

use crate::domain::Diversion;
use crate::ids::{BasketId, DomainId};
use dps_netsim::{Asn, Day, Prefix};

/// One state change in the world.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// A domain enters its TLD zone file (the domain was pre-created in the
    /// domain table with `registered` set; this drives nothing but exists
    /// for traceability in exported schedules).
    Register(DomainId),
    /// A domain leaves its TLD zone file.
    Delete(DomainId),
    /// A single domain changes protection state.
    SetDiversion(DomainId, Diversion),
    /// Every alive member of a basket changes protection state.
    BasketDiversion(BasketId, Diversion),
    /// A basket's DNS starts/stops failing (Sedo-style incident).
    BasketOutage(BasketId, bool),
    /// A prefix changes BGP origin: `from` withdraws (if set), `to`
    /// announces (if set).
    PrefixOrigin {
        /// The affected prefix.
        prefix: Prefix,
        /// Origin withdrawing the route.
        from: Option<Asn>,
        /// Origin announcing the route.
        to: Option<Asn>,
    },
}

/// An [`Action`] bound to the day it takes effect.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Effective day (changes are visible to that day's measurement).
    pub day: Day,
    /// What happens.
    pub action: Action,
}

/// A day-ordered list of events with a consumption cursor.
#[derive(Debug, Clone, Default)]
pub struct Schedule {
    events: Vec<Event>,
    cursor: usize,
}

impl Schedule {
    /// Builds a schedule, sorting events by day (stable: same-day events
    /// apply in insertion order).
    pub fn new(mut events: Vec<Event>) -> Self {
        events.sort_by_key(|e| e.day);
        Self { events, cursor: 0 }
    }

    /// Total number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if the schedule has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Pops every event effective on or before `day`, in order.
    pub fn take_through(&mut self, day: Day) -> &[Event] {
        let start = self.cursor;
        while self.events.get(self.cursor).is_some_and(|e| e.day <= day) {
            self.cursor += 1;
        }
        self.events.get(start..self.cursor).unwrap_or(&[])
    }

    /// Events not yet consumed.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.cursor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(day: u32, id: u32) -> Event {
        Event {
            day: Day(day),
            action: Action::Delete(DomainId(id)),
        }
    }

    #[test]
    fn take_through_is_monotonic_and_ordered() {
        let mut s = Schedule::new(vec![ev(5, 1), ev(1, 2), ev(3, 3), ev(5, 4), ev(9, 5)]);
        assert_eq!(s.len(), 5);
        let batch: Vec<u32> = s
            .take_through(Day(4))
            .iter()
            .map(|e| match e.action {
                Action::Delete(DomainId(i)) => i,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(batch, vec![2, 3]);
        // Same-day stability: insertion order of the two day-5 events.
        let batch: Vec<u32> = s
            .take_through(Day(5))
            .iter()
            .map(|e| match e.action {
                Action::Delete(DomainId(i)) => i,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(batch, vec![1, 4]);
        assert_eq!(s.remaining(), 1);
        assert!(s.take_through(Day(5)).is_empty());
    }
}
