//! The living world: applies the schedule day by day, answers DNS queries
//! (bulk path), exports zone files, BGP tables and ground truth, and can
//! materialise itself into real zones + servers on the simulated network
//! (wire path) for full-fidelity runs.

use crate::domain::{domain_label, parse_domain_label, Diversion, DomainState, GroundTruth};
use crate::ids::{DomainId, HosterId, ProviderId, Tld};
use crate::scenario::{AlexaEntry, BasketAddressing, BasketInfo, Scenario, ScenarioParams};
use crate::schedule::{Action, Schedule};
use crate::spec::{self, hid, pid, HosterSpec, ProviderSpec, HOSTERS, PROVIDERS, REGISTRY_ASN};
use dps_authdns::resolver::{Resolution, ResolveError};
use dps_authdns::{AuthServer, Catalog, Zone};
use dps_dns::{Class, Name, RData, Rcode, Record, RrType};
use dps_netsim::{AsRegistry, Asn, Day, Network, Pfx2As, Rib};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::net::{IpAddr, Ipv4Addr};
use std::sync::Arc;

/// Default TTL on generated records.
const TTL: u32 = 300;

/// Who owns an infrastructure SLD.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InfraOwner {
    /// One of the nine DPS providers.
    Provider(ProviderId),
    /// A hosting-side actor.
    Hoster(HosterId),
}

/// An infrastructure second-level domain (provider or hoster owned).
#[derive(Debug, Clone)]
pub struct InfraDomain {
    /// Full SLD, e.g. `cloudflare.net`.
    pub sld: Name,
    /// The TLD it sits in.
    pub tld: Tld,
    /// Its owner.
    pub owner: InfraOwner,
}

/// A member of a TLD zone file: a customer domain or an infrastructure SLD.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZoneEntry {
    /// `d<id>.<tld>`.
    Domain(DomainId),
    /// Index into [`World::infra`].
    Infra(usize),
}

/// Day-scoped cache of zone membership lists. Membership only depends on
/// the current day (liveness windows and the static TLD/Alexa tables), so
/// every list computed for a day stays valid until [`World::advance_to`]
/// moves time forward and clears the cache.
#[derive(Default)]
struct EntryCache {
    zones: BTreeMap<Tld, Arc<Vec<ZoneEntry>>>,
    alexa: Option<Arc<Vec<ZoneEntry>>>,
}

/// The simulated Internet at a point in (virtual) time.
pub struct World {
    /// Parameters the scenario was built with.
    pub params: ScenarioParams,
    day: Day,
    domains: Vec<DomainState>,
    baskets: Vec<BasketInfo>,
    schedule: Schedule,
    rib: Rib,
    registry: AsRegistry,
    infra: Vec<InfraDomain>,
    alexa: Vec<AlexaEntry>,
    /// Per-day zone/Alexa membership lists, shared out as `Arc`s so
    /// repeated zone transfers and sweep shards don't re-collect the
    /// whole domain table on every call.
    entry_cache: Mutex<EntryCache>,
}

impl World {
    /// Builds the world from a scenario and applies day-0 events.
    pub fn new(scenario: Scenario) -> Self {
        let mut registry = AsRegistry::new();
        registry.register(REGISTRY_ASN, "Registry Infrastructure");
        let mut rib = Rib::new();
        rib.announce(spec::registry_prefix(), REGISTRY_ASN);
        for (i, p) in PROVIDERS.iter().enumerate() {
            let id = ProviderId(i as u8);
            for (j, &asn) in p.asns.iter().enumerate() {
                registry.register(Asn(asn), p.asn_names[j]);
                rib.announce(spec::provider_prefix(id, j), Asn(asn));
            }
            if p.ipv6 {
                rib.announce(spec::provider_prefix_v6(id), Asn(p.asns[0]));
            }
        }
        for (h, spec_) in HOSTERS.iter().enumerate() {
            registry.register(Asn(spec_.asn), spec_.name);
            rib.announce(spec::hoster_prefix(HosterId(h as u8)), Asn(spec_.asn));
        }

        let mut infra = Vec::new();
        for (i, p) in PROVIDERS.iter().enumerate() {
            let mut slds: Vec<&str> = Vec::new();
            slds.extend(p.cname_slds);
            for s in p.ns_slds {
                if !slds.contains(s) {
                    slds.push(s);
                }
            }
            for sld in slds {
                let (_, tld_label) = sld.rsplit_once('.').expect("sld has tld");
                let tld = Tld::from_label(tld_label).expect("known tld");
                infra.push(InfraDomain {
                    sld: sld.parse().expect("valid sld"),
                    tld,
                    owner: InfraOwner::Provider(ProviderId(i as u8)),
                });
            }
        }
        for (h, spec_) in HOSTERS.iter().enumerate() {
            infra.push(InfraDomain {
                sld: spec_.ns_sld.parse().expect("valid sld"),
                tld: spec_.ns_tld,
                owner: InfraOwner::Hoster(HosterId(h as u8)),
            });
        }

        let mut world = Self {
            params: scenario.params,
            day: Day(0),
            domains: scenario.domains,
            baskets: scenario.baskets,
            schedule: scenario.schedule,
            rib,
            registry,
            infra,
            alexa: scenario.alexa,
            entry_cache: Mutex::new(EntryCache::default()),
        };
        world.apply_through(Day(0));
        world
    }

    /// Convenience: build the default scenario at `params`.
    pub fn imc2016(params: ScenarioParams) -> Self {
        Self::new(Scenario::imc2016(params))
    }

    /// The current day.
    pub fn day(&self) -> Day {
        self.day
    }

    /// Advances to `day` (monotonic), applying all scheduled events.
    pub fn advance_to(&mut self, day: Day) {
        assert!(day >= self.day, "time must not run backwards");
        // Zone membership is a pure function of the day; dropping the
        // cached lists here is the only invalidation the cache needs.
        *self.entry_cache.get_mut() = EntryCache::default();
        self.apply_through(day);
        self.day = day;
    }

    fn apply_through(&mut self, day: Day) {
        // Split borrows: the schedule hands out events while we mutate
        // domains/baskets/rib, so copy the batch.
        let batch: Vec<_> = self.schedule.take_through(day).to_vec();
        for ev in batch {
            match ev.action {
                // Zone-file membership is derived from the domain state;
                // these two exist for schedule traceability only.
                Action::Register(_) | Action::Delete(_) => {}
                Action::SetDiversion(id, d) => {
                    if let Some(dom) = self.domains.get_mut(id.0 as usize) {
                        dom.diversion = d;
                    }
                }
                Action::BasketDiversion(b, d) => {
                    let members = self
                        .baskets
                        .get(b.0 as usize)
                        .map(|b| b.members.clone())
                        .unwrap_or_default();
                    for m in members {
                        if let Some(dom) = self.domains.get_mut(m.0 as usize) {
                            dom.diversion = d;
                        }
                    }
                }
                Action::BasketOutage(b, on) => {
                    if let Some(basket) = self.baskets.get_mut(b.0 as usize) {
                        basket.outage = on;
                    }
                }
                Action::PrefixOrigin { prefix, from, to } => {
                    if let Some(a) = from {
                        self.rib.withdraw(prefix, a);
                    }
                    if let Some(a) = to {
                        self.rib.announce(prefix, a);
                    }
                }
            }
        }
    }

    /// The AS-to-name directory (seed data for reference discovery).
    pub fn as_registry(&self) -> &AsRegistry {
        &self.registry
    }

    /// Today's Routeviews-style prefix-to-AS snapshot.
    pub fn pfx2as(&self) -> Pfx2As {
        self.rib.snapshot()
    }

    /// Infrastructure SLD table.
    pub fn infra(&self) -> &[InfraDomain] {
        &self.infra
    }

    /// All domain states (index = [`DomainId`]).
    pub fn domains(&self) -> &[DomainState] {
        &self.domains
    }

    /// Basket table.
    pub fn baskets(&self) -> &[BasketInfo] {
        &self.baskets
    }

    /// Today's zone file of `tld`: every delegated SLD. The list is
    /// computed once per `(day, tld)` and shared out of a cache, so
    /// zone-transfer hot-reload polls and per-shard sweeps pay one
    /// collection per day instead of one per call.
    pub fn zone_entries(&self, tld: Tld) -> Arc<Vec<ZoneEntry>> {
        if let Some(hit) = self.entry_cache.lock().zones.get(&tld) {
            return Arc::clone(hit);
        }
        let entries = Arc::new(self.collect_zone_entries(tld));
        self.entry_cache
            .lock()
            .zones
            .insert(tld, Arc::clone(&entries));
        entries
    }

    /// Streams today's zone membership of `tld` without materialising a
    /// list (and without touching the cache) — for callers that only walk
    /// the entries once.
    pub fn zone_entry_iter(&self, tld: Tld) -> impl Iterator<Item = ZoneEntry> + '_ {
        let day = self.day;
        let domains = self
            .domains
            .iter()
            .enumerate()
            .filter(move |(_, d)| d.tld == tld && d.alive_on(day))
            .map(|(i, _)| ZoneEntry::Domain(DomainId(i as u32)));
        let infra = self
            .infra
            .iter()
            .enumerate()
            .filter(move |(_, inf)| inf.tld == tld)
            .map(|(i, _)| ZoneEntry::Infra(i));
        domains.chain(infra)
    }

    fn collect_zone_entries(&self, tld: Tld) -> Vec<ZoneEntry> {
        self.zone_entry_iter(tld).collect()
    }

    /// Today's Alexa-style list (empty before the cc start day), cached
    /// per day like [`zone_entries`](Self::zone_entries).
    pub fn alexa_entries(&self) -> Arc<Vec<ZoneEntry>> {
        if let Some(hit) = &self.entry_cache.lock().alexa {
            return Arc::clone(hit);
        }
        let entries = Arc::new(self.collect_alexa_entries());
        self.entry_cache.lock().alexa = Some(Arc::clone(&entries));
        entries
    }

    fn collect_alexa_entries(&self) -> Vec<ZoneEntry> {
        self.alexa
            .iter()
            .filter(|e| {
                e.from <= self.day
                    && e.until.map_or(true, |u| self.day < u)
                    && self.domains[e.domain.0 as usize].alive_on(self.day)
            })
            .map(|e| ZoneEntry::Domain(e.domain))
            .collect()
    }

    /// Number of alive domains in `tld` today.
    pub fn zone_size(&self, tld: Tld) -> usize {
        self.domains
            .iter()
            .filter(|d| d.tld == tld && d.alive_on(self.day))
            .count()
    }

    /// Today's registry zone file for `tld`, in master-file text — what
    /// the measurement platform's stage I downloads daily (paper §3.1).
    /// Contains the delegation NS records of every alive SLD.
    pub fn zone_file_text(&self, tld: Tld) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "$ORIGIN {}.", tld.label());
        let _ = writeln!(out, "$TTL 86400");
        let _ = writeln!(out, "; {} zone, day {}", tld.label(), self.day);
        for entry in self.zone_entry_iter(tld) {
            let apex = self.entry_name(entry);
            let hosts: Vec<Name> = match entry {
                ZoneEntry::Domain(id) => {
                    let st = &self.domains[id.0 as usize];
                    self.ns_hosts(id, st)
                }
                ZoneEntry::Infra(i) => match self.infra[i].owner {
                    InfraOwner::Provider(p) => {
                        (0..2).map(|k| Self::provider_ns_host(p, k).0).collect()
                    }
                    InfraOwner::Hoster(h) => (0..2).map(|k| Self::hoster_ns_host(h, k).0).collect(),
                },
            };
            for host in hosts {
                let _ = writeln!(out, "{apex} IN NS {host}");
            }
        }
        out
    }

    /// The apex name of a zone entry.
    pub fn entry_name(&self, entry: ZoneEntry) -> Name {
        match entry {
            ZoneEntry::Domain(id) => self.domain_name(id),
            ZoneEntry::Infra(i) => self.infra[i].sld.clone(),
        }
    }

    /// `d<id>.<tld>`.
    pub fn domain_name(&self, id: DomainId) -> Name {
        let st = &self.domains[id.0 as usize];
        let label = domain_label(id);
        Name::from_labels([label.as_bytes(), st.tld.label().as_bytes()])
            .expect("generated names are valid")
    }

    /// Ground truth for a domain **today**.
    pub fn ground_truth(&self, id: DomainId) -> GroundTruth {
        let st = &self.domains[id.0 as usize];
        if !st.alive_on(self.day) {
            return GroundTruth {
                provider: None,
                diversion: Diversion::None,
            };
        }
        GroundTruth {
            provider: st.diversion.provider(),
            diversion: st.diversion,
        }
    }

    // -----------------------------------------------------------------
    // Answer model (shared by the bulk resolver and materialisation)
    // -----------------------------------------------------------------

    fn provider_spec(p: ProviderId) -> &'static ProviderSpec {
        &PROVIDERS[p.0 as usize]
    }

    fn hoster_spec(h: HosterId) -> &'static HosterSpec {
        &HOSTERS[h.0 as usize]
    }

    /// The `k`-th name-server host `(name, address)` of a provider.
    pub fn provider_ns_host(p: ProviderId, k: usize) -> (Name, IpAddr) {
        let s = Self::provider_spec(p);
        assert!(!s.ns_labels.is_empty(), "{} sells no DNS service", s.name);
        let label = s.ns_labels[k % s.ns_labels.len()];
        let sld = s.ns_slds[k % s.ns_slds.len()];
        let name: Name = format!("{label}.{sld}").parse().expect("valid host");
        (name, spec::provider_ns_ip(p, k))
    }

    /// The `k`-th name-server host `(name, address)` of a hoster.
    pub fn hoster_ns_host(h: HosterId, k: usize) -> (Name, IpAddr) {
        let s = Self::hoster_spec(h);
        let name: Name = format!("ns{}.{}", k + 1, s.ns_sld)
            .parse()
            .expect("valid host");
        (name, spec::hoster_ns_ip(h, k))
    }

    /// Number of distinct NS hosts a provider runs (enough to rotate
    /// through every NS label and every NS SLD).
    pub fn provider_ns_host_count(p: ProviderId) -> usize {
        let s = Self::provider_spec(p);
        s.ns_labels.len().max(s.ns_slds.len()).max(2)
    }

    /// The two NS host names of a domain, given its current state.
    fn ns_hosts(&self, id: DomainId, st: &DomainState) -> Vec<Name> {
        match st.diversion {
            Diversion::NsDelegation(p) | Diversion::NsOnly(p) => {
                let count = Self::provider_ns_host_count(p);
                let a = id.0 as usize % count;
                let b = (id.0 as usize + 1) % count;
                let mut v = vec![Self::provider_ns_host(p, a).0];
                if b != a {
                    v.push(Self::provider_ns_host(p, b).0);
                }
                v
            }
            _ => {
                let h = st.hoster;
                vec![Self::hoster_ns_host(h, 0).0, Self::hoster_ns_host(h, 1).0]
            }
        }
    }

    /// The apex IPv4 address of a domain, given its current state.
    fn apex_v4(&self, id: DomainId, st: &DomainState) -> Ipv4Addr {
        if let Some((b, member)) = st.basket {
            let addressing = self.baskets[b.0 as usize].spec.addressing;
            match addressing {
                BasketAddressing::DedicatedPrefix => return spec::basket_ip(b, member),
                BasketAddressing::WixStyle => {
                    if st.diversion.diverts_traffic() {
                        return spec::basket_ip(b, member);
                    }
                    return spec::hoster_ip(hid::AWS, id.0);
                }
                BasketAddressing::Shared => {}
            }
        }
        match st.diversion {
            Diversion::ARecord(p) | Diversion::Cname(p) | Diversion::NsDelegation(p) => {
                spec::provider_cloud_ip(p, id.0)
            }
            _ => spec::hoster_ip(st.hoster, id.0),
        }
    }

    /// The AAAA address of a domain's web endpoint, when one exists.
    fn apex_v6(&self, id: DomainId, st: &DomainState) -> Option<std::net::Ipv6Addr> {
        if !st.wants_aaaa {
            return None;
        }
        match st.diversion {
            Diversion::ARecord(p) | Diversion::Cname(p) | Diversion::NsDelegation(p)
                if Self::provider_spec(p).ipv6 =>
            {
                Some(spec::provider_cloud_ip6(p, id.0))
            }
            _ => None,
        }
    }

    /// The CNAME hops of `www.<domain>`, if it is an alias.
    fn www_chain(&self, id: DomainId, st: &DomainState) -> Vec<Name> {
        match st.diversion {
            Diversion::Cname(p) => {
                let s = Self::provider_spec(p);
                if p == pid::AKAMAI {
                    // Akamai-style double indirection, in two flavours:
                    // www.x → dN.edgekey.net   → eN.akamaiedge.net → A
                    // www.x → dN.edgesuite.net → eN.akamai.net     → A
                    let (hop1, hop2) = if id.0 % 2 == 0 {
                        ("edgekey.net", "akamaiedge.net")
                    } else {
                        ("edgesuite.net", "akamai.net")
                    };
                    vec![
                        format!("d{}.{hop1}", id.0).parse().expect("valid"),
                        format!("e{}.{hop2}", id.0).parse().expect("valid"),
                    ]
                } else {
                    vec![format!("d{}.{}", id.0, s.cname_slds[0])
                        .parse()
                        .expect("valid")]
                }
            }
            Diversion::None if st.www_cname_to_hoster => {
                // Wix-style: the site lives on a cloud (AWS).
                vec![format!("d{}.compute.amazonaws.com", id.0)
                    .parse()
                    .expect("valid")]
            }
            _ => Vec::new(),
        }
    }

    fn basket_outage(&self, st: &DomainState) -> bool {
        st.outage
            || st
                .basket
                .is_some_and(|(b, _)| self.baskets[b.0 as usize].outage)
    }

    // -----------------------------------------------------------------
    // Bulk resolution
    // -----------------------------------------------------------------

    /// Resolves a query against today's world state, producing exactly what
    /// the wire path (root → TLD → authoritative) would produce.
    pub fn resolve(&self, qname: &Name, qtype: RrType) -> Result<Resolution, ResolveError> {
        let mut answers = Vec::new();
        let rcode = self.answer_into(qname, qtype, &mut answers)?;
        Ok(Resolution {
            rcode,
            answers,
            elapsed_us: 0,
        })
    }

    /// Core answering logic; appends records and returns the final rcode.
    fn answer_into(
        &self,
        qname: &Name,
        qtype: RrType,
        answers: &mut Vec<Record>,
    ) -> Result<Rcode, ResolveError> {
        let labels: Vec<&[u8]> = qname.labels().collect();
        if labels.is_empty() {
            return Ok(Rcode::NxDomain);
        }
        let tld = match std::str::from_utf8(labels[labels.len() - 1])
            .ok()
            .and_then(Tld::from_label)
        {
            Some(t) => t,
            None => return Ok(Rcode::NxDomain),
        };
        if labels.len() == 1 {
            // Query for the TLD apex itself: not a studied case; NODATA.
            return Ok(Rcode::NoError);
        }
        let sld_label = labels[labels.len() - 2];

        // Customer domain?
        if let Some(id) = parse_domain_label(sld_label) {
            if (id.0 as usize) < self.domains.len() && self.domains[id.0 as usize].tld == tld {
                return self.answer_domain(id, &labels[..labels.len() - 2], qtype, answers);
            }
            return Ok(Rcode::NxDomain);
        }

        // Infrastructure SLD?
        let sld_str = String::from_utf8_lossy(sld_label);
        let full = format!("{sld_str}.{}", tld.label());
        if let Some(idx) = self
            .infra
            .iter()
            .position(|i| i.sld.to_string().trim_end_matches('.') == full)
        {
            return self.answer_infra(idx, &labels[..labels.len() - 2], qtype, answers);
        }
        Ok(Rcode::NxDomain)
    }

    fn answer_domain(
        &self,
        id: DomainId,
        sub: &[&[u8]],
        qtype: RrType,
        answers: &mut Vec<Record>,
    ) -> Result<Rcode, ResolveError> {
        let st = &self.domains[id.0 as usize];
        if !st.alive_on(self.day) {
            return Ok(Rcode::NxDomain);
        }
        if self.basket_outage(st) {
            return Err(ResolveError::ServerFailure(Rcode::ServFail));
        }
        let apex = self.domain_name(id);
        match sub {
            [] => match qtype {
                RrType::A => {
                    push(answers, &apex, RData::A(self.apex_v4(id, st)));
                    Ok(Rcode::NoError)
                }
                RrType::Aaaa => {
                    if let Some(v6) = self.apex_v6(id, st) {
                        push(answers, &apex, RData::Aaaa(v6));
                    }
                    Ok(Rcode::NoError)
                }
                RrType::Ns => {
                    for h in self.ns_hosts(id, st) {
                        push(answers, &apex, RData::Ns(h));
                    }
                    Ok(Rcode::NoError)
                }
                _ => Ok(Rcode::NoError),
            },
            [www] if *www == b"www" => {
                let www_name = apex.prepend("www").expect("short label");
                let chain = self.www_chain(id, st);
                if chain.is_empty() {
                    // Same answers as the apex, owned by www.
                    return match qtype {
                        RrType::A => {
                            push(answers, &www_name, RData::A(self.apex_v4(id, st)));
                            Ok(Rcode::NoError)
                        }
                        RrType::Aaaa => {
                            if let Some(v6) = self.apex_v6(id, st) {
                                push(answers, &www_name, RData::Aaaa(v6));
                            }
                            Ok(Rcode::NoError)
                        }
                        _ => Ok(Rcode::NoError),
                    };
                }
                if qtype == RrType::Cname {
                    push(answers, &www_name, RData::Cname(chain[0].clone()));
                    return Ok(Rcode::NoError);
                }
                // Emit the chain, then the terminal records.
                let mut owner = www_name;
                for hop in &chain {
                    push(answers, &owner, RData::Cname(hop.clone()));
                    owner = hop.clone();
                }
                match qtype {
                    RrType::A => push(answers, &owner, RData::A(self.apex_v4(id, st))),
                    RrType::Aaaa => {
                        if let Some(v6) = self.apex_v6(id, st) {
                            push(answers, &owner, RData::Aaaa(v6));
                        }
                    }
                    _ => {}
                }
                Ok(Rcode::NoError)
            }
            _ => Ok(Rcode::NxDomain),
        }
    }

    fn answer_infra(
        &self,
        idx: usize,
        sub: &[&[u8]],
        qtype: RrType,
        answers: &mut Vec<Record>,
    ) -> Result<Rcode, ResolveError> {
        let inf = &self.infra[idx];
        let apex = inf.sld.clone();
        let web_ip = match inf.owner {
            InfraOwner::Provider(p) => spec::provider_prefix(p, 0).nth_v4(8).expect("room"),
            InfraOwner::Hoster(h) => spec::hoster_prefix(h).nth_v4(8).expect("room"),
        };
        let ns_hosts: Vec<(Name, IpAddr)> = match inf.owner {
            InfraOwner::Provider(p) => (0..Self::provider_ns_host_count(p))
                .map(|k| Self::provider_ns_host(p, k))
                .collect(),
            InfraOwner::Hoster(h) => (0..2).map(|k| Self::hoster_ns_host(h, k)).collect(),
        };

        match sub {
            [] => match qtype {
                RrType::A => {
                    push(answers, &apex, RData::A(web_ip));
                    Ok(Rcode::NoError)
                }
                RrType::Ns => {
                    for (h, _) in &ns_hosts {
                        push(answers, &apex, RData::Ns(h.clone()));
                    }
                    Ok(Rcode::NoError)
                }
                _ => Ok(Rcode::NoError),
            },
            [www] if *www == b"www" => {
                if qtype == RrType::A {
                    let www_name = apex.prepend("www").expect("short");
                    push(answers, &www_name, RData::A(web_ip));
                }
                Ok(Rcode::NoError)
            }
            sub => {
                // NS hosts, CNAME targets (dN.<sld> / eN.<sld>), and the
                // AWS compute names (dN.compute.amazonaws.com).
                let owner = {
                    let mut v: Vec<&[u8]> = sub.to_vec();
                    v.extend(apex.labels());
                    Name::from_labels(v).expect("valid")
                };
                // A name-server host?
                if let Some((_, ip)) = ns_hosts.iter().find(|(h, _)| *h == owner) {
                    if qtype == RrType::A {
                        if let IpAddr::V4(v4) = ip {
                            push(answers, &owner, RData::A(*v4));
                        }
                    }
                    return Ok(Rcode::NoError);
                }
                // Provider ns hosts beyond the first two (e.g. CloudFlare's
                // many named servers).
                if let InfraOwner::Provider(p) = inf.owner {
                    for k in 0..Self::provider_ns_host_count(p) {
                        let (h, ip) = Self::provider_ns_host(p, k);
                        if h == owner {
                            if qtype == RrType::A {
                                if let IpAddr::V4(v4) = ip {
                                    push(answers, &owner, RData::A(v4));
                                }
                            }
                            return Ok(Rcode::NoError);
                        }
                    }
                }
                // CNAME-target / compute names carry a dN/eN first label.
                let first = sub[sub.len() - 1];
                let first = if sub.len() > 1 { sub[0] } else { first };
                if let Some(id) = parse_domain_label(first).or_else(|| {
                    // eN.<sld> second-hop names.
                    first.strip_prefix(b"e").and_then(|digits| {
                        let mut buf = vec![b'd'];
                        buf.extend_from_slice(digits);
                        parse_domain_label(&buf)
                    })
                }) {
                    if (id.0 as usize) < self.domains.len() {
                        let st = &self.domains[id.0 as usize];
                        // Akamai first hop chains to the second hop.
                        let second_hop = match inf.sld.to_string().as_str() {
                            "edgekey.net." => Some("akamaiedge.net"),
                            "edgesuite.net." => Some("akamai.net"),
                            _ => None,
                        };
                        if let (Some(hop2), true, true) =
                            (second_hop, first.starts_with(b"d"), qtype != RrType::Cname)
                        {
                            let next: Name = format!("e{}.{hop2}", id.0).parse().expect("valid");
                            push(answers, &owner, RData::Cname(next.clone()));
                            match qtype {
                                RrType::A => push(answers, &next, RData::A(self.apex_v4(id, st))),
                                RrType::Aaaa => {
                                    if let Some(v6) = self.apex_v6(id, st) {
                                        push(answers, &next, RData::Aaaa(v6));
                                    }
                                }
                                _ => {}
                            }
                            return Ok(Rcode::NoError);
                        }
                        match qtype {
                            RrType::A => push(answers, &owner, RData::A(self.apex_v4(id, st))),
                            RrType::Aaaa => {
                                if let Some(v6) = self.apex_v6(id, st) {
                                    push(answers, &owner, RData::Aaaa(v6));
                                }
                            }
                            _ => {}
                        }
                        return Ok(Rcode::NoError);
                    }
                }
                Ok(Rcode::NxDomain)
            }
        }
    }
}

fn push(answers: &mut Vec<Record>, owner: &Name, rdata: RData) {
    answers.push(Record::new(owner.clone(), Class::In, TTL, rdata));
}

// ---------------------------------------------------------------------------
// Wire materialisation
// ---------------------------------------------------------------------------

impl World {
    /// Builds real zones and authoritative servers for **today's** state and
    /// binds them on `net`. Intended for small worlds (tests, examples,
    /// full-fidelity validation); rebuild after advancing days.
    pub fn materialize(&self, net: &Arc<Network>) -> Arc<Catalog> {
        let catalog = Arc::new(Catalog::new());

        // Root zone + TLD zones.
        let mut root = Zone::new(Name::root());
        // Ordered map: iterated below when binding TLD servers, so the
        // bind order (and thus simulation state) must not depend on hashing.
        let mut tld_zones: BTreeMap<Tld, Zone> = BTreeMap::new();
        for tld in [Tld::Com, Tld::Net, Tld::Org, Tld::Nl, Tld::Biz] {
            let tld_name: Name = tld.label().parse().expect("valid");
            let ns_name: Name = format!("ns.nic.{}", tld.label()).parse().expect("valid");
            let addr = spec::tld_server_addr(tld);
            root.add(tld_name.clone(), RData::Ns(ns_name.clone()));
            if let IpAddr::V4(v4) = addr {
                root.add(ns_name.clone(), RData::A(v4));
            }
            let mut z = Zone::new(tld_name);
            z.add(ns_name.clone(), RData::Ns(ns_name.clone()));
            if let IpAddr::V4(v4) = addr {
                z.add(ns_name, RData::A(v4));
            }
            tld_zones.insert(tld, z);
        }

        // Per-owner servers.
        let provider_srv: Vec<Arc<AuthServer>> = (0..9).map(|_| AuthServer::new()).collect();
        let hoster_srv: Vec<Arc<AuthServer>> = HOSTERS.iter().map(|_| AuthServer::new()).collect();

        // Infrastructure zones.
        for inf in &self.infra {
            let mut z = Zone::new(inf.sld.clone());
            let (srv, ns_hosts, web_ip): (&Arc<AuthServer>, Vec<(Name, IpAddr)>, Ipv4Addr) =
                match inf.owner {
                    InfraOwner::Provider(p) => (
                        &provider_srv[p.0 as usize],
                        (0..Self::provider_ns_host_count(p))
                            .map(|k| Self::provider_ns_host(p, k))
                            .collect(),
                        spec::provider_prefix(p, 0).nth_v4(8).expect("room"),
                    ),
                    InfraOwner::Hoster(h) => (
                        &hoster_srv[h.0 as usize],
                        (0..2).map(|k| Self::hoster_ns_host(h, k)).collect(),
                        spec::hoster_prefix(h).nth_v4(8).expect("room"),
                    ),
                };
            z.add(inf.sld.clone(), RData::A(web_ip));
            z.add(inf.sld.prepend("www").expect("short"), RData::A(web_ip));
            for (h, ip) in &ns_hosts {
                z.add(inf.sld.clone(), RData::Ns(h.clone()));
                if h.is_subdomain_of(&inf.sld) {
                    if let IpAddr::V4(v4) = ip {
                        z.add(h.clone(), RData::A(*v4));
                    }
                }
            }
            // CNAME-target names & compute names for alive customers.
            for (i, st) in self.domains.iter().enumerate() {
                let id = DomainId(i as u32);
                if !st.alive_on(self.day) {
                    continue;
                }
                let chain = self.www_chain(id, st);
                for (hop_idx, hop) in chain.iter().enumerate() {
                    if hop.is_subdomain_of(&inf.sld) {
                        if hop_idx + 1 < chain.len() {
                            z.add(hop.clone(), RData::Cname(chain[hop_idx + 1].clone()));
                        } else {
                            z.add(hop.clone(), RData::A(self.apex_v4(id, st)));
                            if let Some(v6) = self.apex_v6(id, st) {
                                z.add(hop.clone(), RData::Aaaa(v6));
                            }
                        }
                    }
                }
            }
            // Delegation from the TLD + in-TLD glue.
            let tz = tld_zones.get_mut(&inf.tld).expect("tld exists");
            for (h, ip) in &ns_hosts {
                tz.add(inf.sld.clone(), RData::Ns(h.clone()));
                if let (IpAddr::V4(v4), true) = (ip, ends_in_tld(h, inf.tld)) {
                    tz.add(h.clone(), RData::A(*v4));
                }
            }
            let handle = catalog.add_zone(z, vec![]);
            srv.serve_zone(handle);
        }

        // Customer zones.
        for (i, st) in self.domains.iter().enumerate() {
            let id = DomainId(i as u32);
            if !st.alive_on(self.day) || self.basket_outage(st) {
                continue;
            }
            let apex = self.domain_name(id);
            let mut z = Zone::new(apex.clone());
            z.add(apex.clone(), RData::A(self.apex_v4(id, st)));
            if let Some(v6) = self.apex_v6(id, st) {
                z.add(apex.clone(), RData::Aaaa(v6));
            }
            let www = apex.prepend("www").expect("short");
            let chain = self.www_chain(id, st);
            if let Some(first) = chain.first() {
                z.add(www, RData::Cname(first.clone()));
            } else {
                z.add(www.clone(), RData::A(self.apex_v4(id, st)));
                if let Some(v6) = self.apex_v6(id, st) {
                    z.add(www, RData::Aaaa(v6));
                }
            }
            let hosts = self.ns_hosts(id, st);
            for h in &hosts {
                z.add(apex.clone(), RData::Ns(h.clone()));
            }
            // Delegation in the TLD zone.
            let tz = tld_zones.get_mut(&st.tld).expect("tld exists");
            for h in &hosts {
                tz.add(apex.clone(), RData::Ns(h.clone()));
            }
            let handle = catalog.add_zone(z, vec![]);
            match st.diversion {
                Diversion::NsDelegation(p) | Diversion::NsOnly(p) => {
                    provider_srv[p.0 as usize].serve_zone(handle)
                }
                _ => hoster_srv[st.hoster.0 as usize].serve_zone(handle),
            }
        }

        // Bind everything.
        let root_srv = AuthServer::new();
        root_srv.serve_zone(catalog.add_zone(root, vec![spec::root_server_addr()]));
        root_srv.bind(net, spec::root_server_addr());
        for (tld, z) in tld_zones {
            let srv = AuthServer::new();
            srv.serve_zone(catalog.add_zone(z, vec![spec::tld_server_addr(tld)]));
            srv.bind(net, spec::tld_server_addr(tld));
        }
        for (p, srv) in provider_srv.iter().enumerate() {
            let p = ProviderId(p as u8);
            if PROVIDERS[p.0 as usize].ns_labels.is_empty() {
                continue;
            }
            for k in 0..Self::provider_ns_host_count(p) {
                srv.bind(net, Self::provider_ns_host(p, k).1);
            }
        }
        for (h, srv) in hoster_srv.iter().enumerate() {
            for k in 0..2 {
                srv.bind(net, Self::hoster_ns_host(HosterId(h as u8), k).1);
            }
        }
        catalog.set_root_hints(vec![spec::root_server_addr()]);
        catalog
    }
}

fn ends_in_tld(name: &Name, tld: Tld) -> bool {
    name.labels()
        .last()
        .map(|l| l == tld.label().as_bytes())
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::BasketId;

    fn tiny_world() -> World {
        World::imc2016(ScenarioParams::tiny(42))
    }

    fn first_with(world: &World, pred: impl Fn(&DomainState) -> bool) -> DomainId {
        for (i, st) in world.domains().iter().enumerate() {
            if st.alive_on(world.day()) && pred(st) {
                return DomainId(i as u32);
            }
        }
        panic!("no domain matches");
    }

    /// Regression for the per-call `Vec<ZoneEntry>` rebuild: within one
    /// day every `zone_entries`/`alexa_entries` call must hand back the
    /// *same* allocation (an `Arc` clone, zero new collections), and
    /// advancing the day must refresh it exactly once.
    #[test]
    fn zone_entries_are_cached_per_day() {
        let mut w = tiny_world();
        let first = w.zone_entries(Tld::Com);
        for _ in 0..100 {
            let again = w.zone_entries(Tld::Com);
            assert!(
                Arc::ptr_eq(&first, &again),
                "same-day polls must share one cached allocation"
            );
        }
        // Other TLDs get their own cached list without evicting .com.
        let net = w.zone_entries(Tld::Net);
        assert!(!Arc::ptr_eq(&first, &net));
        assert!(Arc::ptr_eq(&first, &w.zone_entries(Tld::Com)));
        // The iterator variant streams the same membership.
        let streamed: Vec<ZoneEntry> = w.zone_entry_iter(Tld::Com).collect();
        assert_eq!(streamed, *first);
        // Day change invalidates; content then matches a fresh collect.
        w.advance_to(Day(25));
        let after = w.zone_entries(Tld::Com);
        assert!(!Arc::ptr_eq(&first, &after), "advance must invalidate");
        assert_eq!(*after, w.zone_entry_iter(Tld::Com).collect::<Vec<_>>());
        let alexa = w.alexa_entries();
        assert!(!alexa.is_empty(), "alexa list live past cc start");
        assert!(Arc::ptr_eq(&alexa, &w.alexa_entries()));
    }

    #[test]
    fn zone_entries_track_liveness() {
        let mut w = tiny_world();
        let before = w.zone_size(Tld::Com);
        w.advance_to(Day(59));
        let after = w.zone_size(Tld::Com);
        assert!(
            after != before,
            "churn should change zone size ({before} -> {after})"
        );
    }

    #[test]
    fn apex_a_resolves_for_plain_domain() {
        let w = tiny_world();
        let id = first_with(&w, |st| {
            st.diversion == Diversion::None && st.basket.is_none()
        });
        let name = w.domain_name(id);
        let res = w.resolve(&name, RrType::A).unwrap();
        assert_eq!(res.rcode, Rcode::NoError);
        let a = res.records_of(RrType::A).next().unwrap();
        match a.rdata {
            RData::A(ip) => {
                let h = w.domains()[id.0 as usize].hoster;
                assert!(spec::hoster_prefix(h).contains(IpAddr::V4(ip)));
            }
            _ => panic!("A expected"),
        }
    }

    #[test]
    fn cname_customer_chains_into_provider() {
        let w = tiny_world();
        let id = first_with(&w, |st| matches!(st.diversion, Diversion::Cname(_)));
        let p = w.domains()[id.0 as usize].diversion.provider().unwrap();
        let www = w.domain_name(id).prepend("www").unwrap();
        let res = w.resolve(&www, RrType::A).unwrap();
        let chain = res.cname_chain();
        assert!(!chain.is_empty());
        let spec_ = &PROVIDERS[p.0 as usize];
        let tail_sld = chain.last().unwrap().sld().to_string();
        assert!(
            spec_.cname_slds.iter().any(|s| format!("{s}.") == tail_sld),
            "{tail_sld} not in {:?}",
            spec_.cname_slds
        );
        let a = res.records_of(RrType::A).next().expect("terminal A");
        match a.rdata {
            RData::A(ip) => assert!(spec::provider_prefix(p, 0).contains(IpAddr::V4(ip))),
            _ => panic!(),
        }
    }

    #[test]
    fn ns_delegated_customer_references_provider_ns_sld() {
        let w = tiny_world();
        let id = first_with(&w, |st| matches!(st.diversion, Diversion::NsDelegation(_)));
        let p = w.domains()[id.0 as usize].diversion.provider().unwrap();
        let res = w.resolve(&w.domain_name(id), RrType::Ns).unwrap();
        let ns: Vec<_> = res.records_of(RrType::Ns).collect();
        assert!(!ns.is_empty());
        for rec in ns {
            match &rec.rdata {
                RData::Ns(host) => {
                    let sld = host.sld().to_string();
                    assert!(
                        PROVIDERS[p.0 as usize]
                            .ns_slds
                            .iter()
                            .any(|s| format!("{s}.") == sld),
                        "{sld}"
                    );
                }
                _ => panic!(),
            }
        }
    }

    #[test]
    fn ns_only_customer_keeps_hoster_address() {
        let w = tiny_world();
        let id = first_with(&w, |st| matches!(st.diversion, Diversion::NsOnly(_)));
        let hoster = w.domains()[id.0 as usize].hoster;
        let res = w.resolve(&w.domain_name(id), RrType::A).unwrap();
        let rdata = res.records_of(RrType::A).next().unwrap().rdata.clone();
        match rdata {
            RData::A(ip) => assert!(spec::hoster_prefix(hoster).contains(IpAddr::V4(ip))),
            _ => panic!(),
        }
    }

    #[test]
    fn wix_members_flip_between_aws_and_basket_prefix() {
        let mut w = tiny_world();
        let wix = &w.baskets()[0];
        assert_eq!(wix.spec.name, "Wix");
        let member = wix.members[0];
        // Day 0: undiverted → AWS shared hosting addresses.
        let name = w.domain_name(member);
        let res = w.resolve(&name, RrType::A).unwrap();
        let rdata = res.records_of(RrType::A).next().unwrap().rdata.clone();
        match rdata {
            RData::A(ip) => {
                assert!(spec::hoster_prefix(hid::AWS).contains(IpAddr::V4(ip)));
            }
            _ => panic!(),
        }
        // Day 3 (inside the first F5 stint): basket prefix, F5 origin.
        w.advance_to(Day(3));
        let res = w.resolve(&name, RrType::A).unwrap();
        let rdata = res.records_of(RrType::A).next().unwrap().rdata.clone();
        match rdata {
            RData::A(ip) => {
                assert!(spec::basket_prefix(BasketId(0)).contains(IpAddr::V4(ip)));
                let p2a = w.pfx2as();
                assert_eq!(
                    p2a.single_origin(IpAddr::V4(ip)),
                    Some(Asn(55002)),
                    "F5 origin"
                );
            }
            _ => panic!(),
        }
        // Day 5 (inside the 2015-03-05 peak): Incapsula origin.
        w.advance_to(Day(5));
        let res = w.resolve(&name, RrType::A).unwrap();
        let rdata = res.records_of(RrType::A).next().unwrap().rdata.clone();
        match rdata {
            RData::A(ip) => {
                assert_eq!(w.pfx2as().single_origin(IpAddr::V4(ip)), Some(Asn(19551)));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn sedo_outage_day_fails_resolution() {
        let mut w = tiny_world();
        // The tiny world only has 60 days; the Sedo outage (day 266) is out
        // of range, so force-check the mechanism at the state level instead.
        let sedo_idx = w
            .baskets()
            .iter()
            .position(|b| b.spec.name == "Sedo")
            .unwrap();
        let member = w.baskets()[sedo_idx].members[0];
        let name = w.domain_name(member);
        assert!(w.resolve(&name, RrType::A).is_ok());
        w.baskets[sedo_idx].outage = true;
        assert!(matches!(
            w.resolve(&name, RrType::A),
            Err(ResolveError::ServerFailure(Rcode::ServFail))
        ));
    }

    #[test]
    fn ground_truth_matches_diversion() {
        let w = tiny_world();
        let id = first_with(&w, |st| matches!(st.diversion, Diversion::NsDelegation(_)));
        let t = w.ground_truth(id);
        assert!(t.provider.is_some());
        assert!(t.diversion.delegates_dns());
    }

    #[test]
    fn alexa_list_appears_at_cc_start() {
        let mut w = tiny_world();
        assert!(w.alexa_entries().is_empty());
        w.advance_to(Day(20));
        assert!(!w.alexa_entries().is_empty());
    }

    #[test]
    fn aaaa_only_for_v6_providers() {
        let w = tiny_world();
        for (i, st) in w.domains().iter().enumerate() {
            if !st.alive_on(w.day()) {
                continue;
            }
            let id = DomainId(i as u32);
            if let Ok(res) = w.resolve(&w.domain_name(id), RrType::Aaaa) {
                if let Some(rec) = res.records_of(RrType::Aaaa).next() {
                    let p = st.diversion.provider().expect("AAAA implies provider");
                    assert!(PROVIDERS[p.0 as usize].ipv6);
                    match rec.rdata {
                        RData::Aaaa(ip) => {
                            assert!(spec::provider_prefix_v6(p).contains(IpAddr::V6(ip)))
                        }
                        _ => panic!(),
                    }
                }
            }
        }
    }

    #[test]
    fn zone_file_text_roundtrips_through_the_parser() {
        let w = tiny_world();
        let text = w.zone_file_text(Tld::Com);
        let origin: Name = "com".parse().unwrap();
        let parsed = dps_authdns::zonefile::delegated_names(&origin, &text).unwrap();
        let mut expected: Vec<String> = w
            .zone_entries(Tld::Com)
            .iter()
            .map(|&e| w.entry_name(e).to_string())
            .collect();
        expected.sort();
        let parsed: Vec<String> = parsed.into_iter().map(|n| n.to_string()).collect();
        assert_eq!(parsed, expected);
    }

    #[test]
    fn unknown_names_nxdomain() {
        let w = tiny_world();
        let res = w
            .resolve(&"d99999999.com".parse().unwrap(), RrType::A)
            .unwrap();
        assert_eq!(res.rcode, Rcode::NxDomain);
        let res = w
            .resolve(&"notadomain.unknowntld".parse().unwrap(), RrType::A)
            .unwrap();
        assert_eq!(res.rcode, Rcode::NxDomain);
    }
}
