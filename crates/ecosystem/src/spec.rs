//! Static specifications of the nine DPS providers (ground truth for the
//! paper's Table 2) and of the hosting-side actors, plus the deterministic
//! address plan carving simulator IP space.

use crate::ids::{HosterId, ProviderId, Tld};
use dps_netsim::{Asn, Prefix};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// Which diversion/protection products a provider sells (drives which
/// mechanisms its customers can exhibit).
#[derive(Debug, Clone, Copy)]
pub struct Products {
    /// Customers may point A records at provider cloud addresses.
    pub a_record: bool,
    /// Customers may CNAME into the provider's domain.
    pub cname: bool,
    /// Customers may delegate their zone to the provider.
    pub ns: bool,
    /// The provider can originate customer prefixes (BGP diversion).
    pub bgp: bool,
}

/// Ground-truth description of one DPS provider (paper Table 2).
#[derive(Debug, Clone, Copy)]
pub struct ProviderSpec {
    /// Marketing name.
    pub name: &'static str,
    /// AS numbers of the mitigation infrastructure.
    pub asns: &'static [u32],
    /// Organisation names in AS-to-name data, parallel to `asns`. Some do
    /// not contain the provider's marketing name (Prolexic, Savvis,
    /// tw telecom, UltraDNS) — the reference-discovery procedure has to
    /// find those ASes via SLD expansion, as the paper's analysts did.
    pub asn_names: &'static [&'static str],
    /// Second-level domains appearing in customer CNAME expansions.
    pub cname_slds: &'static [&'static str],
    /// Second-level domains of the provider's authoritative name servers.
    pub ns_slds: &'static [&'static str],
    /// Name-server host labels (prepended to the first NS SLD);
    /// CloudFlare-style human names or `ns1`/`ns2`.
    pub ns_labels: &'static [&'static str],
    /// Product portfolio.
    pub products: Products,
    /// Whether the provider publishes AAAA records for proxied customers.
    pub ipv6: bool,
}

/// The nine providers in the paper's (alphabetical) order.
///
/// ASNs and SLDs are the paper's Table 2 verbatim; this table is the ground
/// truth the reference-discovery experiment must rediscover.
pub const PROVIDERS: [ProviderSpec; 9] = [
    ProviderSpec {
        name: "Akamai",
        asn_names: &[
            "Akamai Technologies, Inc.",
            "Akamai International B.V.",
            "Prolexic Technologies, Inc.",
        ],
        asns: &[20940, 16625, 32787],
        cname_slds: &[
            "akamaiedge.net",
            "edgekey.net",
            "edgesuite.net",
            "akamai.net",
        ],
        ns_slds: &["akam.net", "akamai.net", "akamaiedge.net"],
        ns_labels: &["ns1", "ns2", "ns3", "ns4"],
        products: Products {
            a_record: true,
            cname: true,
            ns: true,
            bgp: true,
        },
        ipv6: true,
    },
    ProviderSpec {
        name: "CenturyLink",
        asn_names: &[
            "CenturyLink Communications, LLC",
            "Savvis Communications Corp",
        ],
        asns: &[209, 3561],
        cname_slds: &[],
        ns_slds: &[
            "savvis.net",
            "savvisdirect.net",
            "qwest.net",
            "centurytel.net",
            "centurylink.net",
        ],
        ns_labels: &["ns1", "ns2"],
        products: Products {
            a_record: true,
            cname: false,
            ns: true,
            bgp: true,
        },
        ipv6: false,
    },
    ProviderSpec {
        name: "CloudFlare",
        asn_names: &["CloudFlare, Inc."],
        asns: &[13335],
        cname_slds: &["cloudflare.net"],
        ns_slds: &["cloudflare.com"],
        ns_labels: &[
            "kate.ns", "rob.ns", "lara.ns", "sam.ns", "dana.ns", "finn.ns",
        ],
        products: Products {
            a_record: true,
            cname: true,
            ns: true,
            bgp: false,
        },
        ipv6: true,
    },
    ProviderSpec {
        name: "DOSarrest",
        asn_names: &["DOSarrest Internet Security Ltd"],
        asns: &[19324],
        cname_slds: &[],
        ns_slds: &[],
        ns_labels: &[],
        products: Products {
            a_record: true,
            cname: false,
            ns: false,
            bgp: true,
        },
        ipv6: false,
    },
    ProviderSpec {
        name: "F5 Networks",
        asn_names: &["F5 Networks, Inc."],
        asns: &[55002],
        cname_slds: &[],
        ns_slds: &[],
        ns_labels: &[],
        products: Products {
            a_record: true,
            cname: false,
            ns: false,
            bgp: true,
        },
        ipv6: false,
    },
    ProviderSpec {
        name: "Incapsula",
        asn_names: &["Incapsula Inc"],
        asns: &[19551],
        cname_slds: &["incapdns.net"],
        ns_slds: &["incapsecuredns.net"],
        ns_labels: &["ns1", "ns2"],
        products: Products {
            a_record: true,
            cname: true,
            ns: true,
            bgp: true,
        },
        ipv6: false,
    },
    ProviderSpec {
        name: "Level 3",
        asn_names: &[
            "Level 3 Communications, Inc.",
            "Level 3 Parent, LLC",
            "tw telecom holdings, inc.",
            "Level 3 International",
        ],
        asns: &[3549, 3356, 11213, 10753],
        cname_slds: &[],
        ns_slds: &["l3.net", "level3.net"],
        ns_labels: &["ns1", "ns2"],
        products: Products {
            a_record: true,
            cname: false,
            ns: true,
            bgp: true,
        },
        ipv6: false,
    },
    ProviderSpec {
        name: "Neustar",
        asn_names: &[
            "Neustar, Inc.",
            "Neustar Security Services",
            "UltraDNS Corporation",
        ],
        asns: &[7786, 12008, 19905],
        cname_slds: &["ultradns.net"],
        ns_slds: &["ultradns.com", "ultradns.biz", "ultradns.net"],
        ns_labels: &["ns1", "ns2", "ns3"],
        products: Products {
            a_record: true,
            cname: true,
            ns: true,
            bgp: true,
        },
        ipv6: false,
    },
    ProviderSpec {
        name: "Verisign",
        asn_names: &[
            "VeriSign Infrastructure & Operations",
            "VeriSign Global Registry Services",
        ],
        asns: &[26415, 30060],
        cname_slds: &[],
        ns_slds: &["verisigndns.com"],
        ns_labels: &["ns1", "ns2", "ns3"],
        products: Products {
            a_record: true,
            cname: false,
            ns: true,
            bgp: true,
        },
        ipv6: false,
    },
];

/// Named provider indices, so scenario code reads like the paper.
#[allow(missing_docs)]
pub mod pid {
    use crate::ids::ProviderId;
    pub const AKAMAI: ProviderId = ProviderId(0);
    pub const CENTURYLINK: ProviderId = ProviderId(1);
    pub const CLOUDFLARE: ProviderId = ProviderId(2);
    pub const DOSARREST: ProviderId = ProviderId(3);
    pub const F5: ProviderId = ProviderId(4);
    pub const INCAPSULA: ProviderId = ProviderId(5);
    pub const LEVEL3: ProviderId = ProviderId(6);
    pub const NEUSTAR: ProviderId = ProviderId(7);
    pub const VERISIGN: ProviderId = ProviderId(8);
}

/// What kind of hosting-side actor this is (affects default DNS posture).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HosterKind {
    /// Ordinary shared hosting: apex A + www A at the hoster.
    Generic,
    /// Registrar DNS: third-party NS serving many customers.
    Registrar,
    /// Domain parking: third-party NS, monetisation pages.
    Parking,
    /// Website-building platform: www CNAME to a cloud (Wix → AWS).
    WebPlatform,
}

/// A hosting company / registrar / parking platform / cloud.
#[derive(Debug, Clone, Copy)]
pub struct HosterSpec {
    /// Company name.
    pub name: &'static str,
    /// Origin AS of its address space.
    pub asn: u32,
    /// SLD of its name servers (e.g. `registrar-servers.com` for
    /// Namecheap); also its corporate domain's SLD when the two coincide.
    pub ns_sld: &'static str,
    /// TLD the `ns_sld` lives in (for zone placement).
    pub ns_tld: Tld,
    /// Optional SLD customers' `www` CNAMEs point at (Wix → AWS).
    pub www_cname_sld: Option<&'static str>,
    /// Actor kind.
    pub kind: HosterKind,
}

/// The hosting-side actors. Index = [`HosterId`]. The first ten are
/// generic hosting companies the independent population spreads over; the
/// named ones participate in the paper's third-party anomalies (§4.4.1).
pub const HOSTERS: &[HosterSpec] = &[
    HosterSpec {
        name: "HostCo 0",
        asn: 64600,
        ns_sld: "hostco0.net",
        ns_tld: Tld::Net,
        www_cname_sld: None,
        kind: HosterKind::Generic,
    },
    HosterSpec {
        name: "HostCo 1",
        asn: 64601,
        ns_sld: "hostco1.net",
        ns_tld: Tld::Net,
        www_cname_sld: None,
        kind: HosterKind::Generic,
    },
    HosterSpec {
        name: "HostCo 2",
        asn: 64602,
        ns_sld: "hostco2.net",
        ns_tld: Tld::Net,
        www_cname_sld: None,
        kind: HosterKind::Generic,
    },
    HosterSpec {
        name: "HostCo 3",
        asn: 64603,
        ns_sld: "hostco3.net",
        ns_tld: Tld::Net,
        www_cname_sld: None,
        kind: HosterKind::Generic,
    },
    HosterSpec {
        name: "HostCo 4",
        asn: 64604,
        ns_sld: "hostco4.net",
        ns_tld: Tld::Net,
        www_cname_sld: None,
        kind: HosterKind::Generic,
    },
    HosterSpec {
        name: "HostCo 5",
        asn: 64605,
        ns_sld: "hostco5.net",
        ns_tld: Tld::Net,
        www_cname_sld: None,
        kind: HosterKind::Generic,
    },
    HosterSpec {
        name: "HostCo 6",
        asn: 64606,
        ns_sld: "hostco6.net",
        ns_tld: Tld::Net,
        www_cname_sld: None,
        kind: HosterKind::Generic,
    },
    HosterSpec {
        name: "HostCo 7",
        asn: 64607,
        ns_sld: "hostco7.net",
        ns_tld: Tld::Net,
        www_cname_sld: None,
        kind: HosterKind::Generic,
    },
    HosterSpec {
        name: "NL Hosting",
        asn: 64608,
        ns_sld: "nlhost.nl",
        ns_tld: Tld::Nl,
        www_cname_sld: None,
        kind: HosterKind::Generic,
    },
    HosterSpec {
        name: "Amazon AWS",
        asn: 14618,
        ns_sld: "amazonaws.com",
        ns_tld: Tld::Com,
        www_cname_sld: None,
        kind: HosterKind::Generic,
    },
    HosterSpec {
        name: "Wix",
        asn: 64610,
        ns_sld: "wixdns.net",
        ns_tld: Tld::Net,
        www_cname_sld: Some("amazonaws.com"),
        kind: HosterKind::WebPlatform,
    },
    HosterSpec {
        name: "ENOM",
        asn: 21740,
        ns_sld: "enomdns.com",
        ns_tld: Tld::Com,
        www_cname_sld: None,
        kind: HosterKind::Registrar,
    },
    HosterSpec {
        name: "ZOHO",
        asn: 2639,
        ns_sld: "zohodns.com",
        ns_tld: Tld::Com,
        www_cname_sld: None,
        kind: HosterKind::Generic,
    },
    HosterSpec {
        name: "Namecheap",
        asn: 22612,
        ns_sld: "registrar-servers.com",
        ns_tld: Tld::Com,
        www_cname_sld: None,
        kind: HosterKind::Registrar,
    },
    HosterSpec {
        name: "Sedo Parking",
        asn: 64614,
        ns_sld: "sedoparking.com",
        ns_tld: Tld::Com,
        www_cname_sld: None,
        kind: HosterKind::Parking,
    },
    HosterSpec {
        name: "Fabulous",
        asn: 64615,
        ns_sld: "fabulousdns.com",
        ns_tld: Tld::Com,
        www_cname_sld: None,
        kind: HosterKind::Parking,
    },
];

/// Named hoster indices.
#[allow(missing_docs)]
pub mod hid {
    use crate::ids::HosterId;
    pub const GENERIC_COUNT: u8 = 9; // HostCo 0..7 + NL Hosting
    pub const AWS: HosterId = HosterId(9);
    pub const WIX: HosterId = HosterId(10);
    pub const ENOM: HosterId = HosterId(11);
    pub const ZOHO: HosterId = HosterId(12);
    pub const NAMECHEAP: HosterId = HosterId(13);
    pub const SEDO: HosterId = HosterId(14);
    pub const FABULOUS: HosterId = HosterId(15);
}

// ---------------------------------------------------------------------------
// Address plan
// ---------------------------------------------------------------------------
//
// All simulator space is carved deterministically:
//   10.0.0.0/16      registry infrastructure (root + TLD name servers)
//   20.<i*8+j>.0.0/16  provider i's block announced by its j-th ASN
//   30.<h>.0.0/16    hoster h's block
//   31.<b>.0.0/16    basket b's dedicated (divertable) block
// IPv6 blocks exist for the providers that publish AAAA.

/// The registry AS originating root/TLD server space.
pub const REGISTRY_ASN: Asn = Asn(64512);

/// The prefix holding root and TLD name servers.
pub fn registry_prefix() -> Prefix {
    Prefix::v4(10, 0, 0, 0, 16)
}

/// Address of the root name server.
pub fn root_server_addr() -> IpAddr {
    IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1))
}

/// Address of the name server of a TLD registry.
pub fn tld_server_addr(tld: Tld) -> IpAddr {
    IpAddr::V4(Ipv4Addr::new(10, 0, 1 + tld.index() as u8, 1))
}

/// The `j`-th announced prefix of provider `i`.
pub fn provider_prefix(p: ProviderId, j: usize) -> Prefix {
    Prefix::v4(20, p.0 * 8 + j as u8, 0, 0, 16)
}

/// The IPv6 block of a provider with AAAA support.
pub fn provider_prefix_v6(p: ProviderId) -> Prefix {
    let addr = Ipv6Addr::new(0x2400, 0xcb00 + u16::from(p.0), 0, 0, 0, 0, 0, 0);
    Prefix::new(IpAddr::V6(addr), 32).expect("static length")
}

/// Cloud address a customer domain's traffic is diverted to. Shared
/// ("cloud-based") addressing: many customers per address is realistic.
pub fn provider_cloud_ip(p: ProviderId, domain_idx: u32) -> Ipv4Addr {
    // Spread customers over every announced block so all of a provider's
    // ASes show up in measurements (the discovery experiment depends on
    // finding e.g. Prolexic/AS32787 through Akamai customer addresses).
    let j = domain_idx as usize % PROVIDERS[p.0 as usize].asns.len();
    provider_prefix(p, j)
        .nth_v4(4096 + (domain_idx.wrapping_mul(2654435761)) % 50_000)
        .expect("/16 has room")
}

/// IPv6 cloud address for AAAA-publishing providers.
pub fn provider_cloud_ip6(p: ProviderId, domain_idx: u32) -> Ipv6Addr {
    let base = match provider_prefix_v6(p).network() {
        IpAddr::V6(a) => u128::from(a),
        IpAddr::V4(_) => unreachable!("v6 prefix"),
    };
    Ipv6Addr::from(base | u128::from(domain_idx) | 0x1_0000_0000)
}

/// Address of the `k`-th name-server host of provider `p`.
pub fn provider_ns_ip(p: ProviderId, k: usize) -> IpAddr {
    IpAddr::V4(
        provider_prefix(p, 0)
            .nth_v4(16 + k as u32)
            .expect("/16 has room"),
    )
}

/// The announced prefix of hoster `h`.
pub fn hoster_prefix(h: HosterId) -> Prefix {
    Prefix::v4(30, h.0, 0, 0, 16)
}

/// Shared-hosting address of a customer domain at hoster `h`.
pub fn hoster_ip(h: HosterId, domain_idx: u32) -> Ipv4Addr {
    hoster_prefix(h)
        .nth_v4(4096 + (domain_idx.wrapping_mul(2246822519)) % 50_000)
        .expect("/16 has room")
}

/// Address of the `k`-th name-server host of hoster `h`.
pub fn hoster_ns_ip(h: HosterId, k: usize) -> IpAddr {
    IpAddr::V4(
        hoster_prefix(h)
            .nth_v4(16 + k as u32)
            .expect("/16 has room"),
    )
}

/// The dedicated, divertable prefix of basket `b`.
pub fn basket_prefix(b: crate::ids::BasketId) -> Prefix {
    Prefix::v4(31, b.0, 0, 0, 16)
}

/// Address of basket member `m` inside the basket prefix.
pub fn basket_ip(b: crate::ids::BasketId, member: u32) -> Ipv4Addr {
    basket_prefix(b)
        .nth_v4(256 + member % 60_000)
        .expect("/16 has room")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn provider_table_matches_paper_order() {
        let names: Vec<&str> = PROVIDERS.iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            vec![
                "Akamai",
                "CenturyLink",
                "CloudFlare",
                "DOSarrest",
                "F5 Networks",
                "Incapsula",
                "Level 3",
                "Neustar",
                "Verisign"
            ]
        );
        assert_eq!(PROVIDERS[pid::CLOUDFLARE.0 as usize].asns, &[13335]);
        assert_eq!(PROVIDERS[pid::LEVEL3.0 as usize].asns.len(), 4);
    }

    #[test]
    fn providers_without_dns_products_have_no_slds() {
        for p in [pid::DOSARREST, pid::F5] {
            let spec = &PROVIDERS[p.0 as usize];
            assert!(spec.cname_slds.is_empty());
            assert!(spec.ns_slds.is_empty());
        }
    }

    #[test]
    fn address_plan_is_disjoint() {
        // Provider blocks never collide with each other or with hosters.
        let mut prefixes = Vec::new();
        for (i, spec) in PROVIDERS.iter().enumerate() {
            for j in 0..spec.asns.len() {
                prefixes.push(provider_prefix(ProviderId(i as u8), j));
            }
        }
        for h in 0..HOSTERS.len() {
            prefixes.push(hoster_prefix(HosterId(h as u8)));
        }
        for b in 0..8 {
            prefixes.push(basket_prefix(crate::ids::BasketId(b)));
        }
        prefixes.push(registry_prefix());
        for (i, a) in prefixes.iter().enumerate() {
            for b in &prefixes[i + 1..] {
                assert!(!a.covers(b) && !b.covers(a), "{a} overlaps {b}");
            }
        }
    }

    #[test]
    fn cloud_ips_fall_in_provider_prefix() {
        for i in 0..9u8 {
            let p = ProviderId(i);
            let ip = provider_cloud_ip(p, 123_456);
            assert!(provider_prefix(p, 0).contains(IpAddr::V4(ip)));
        }
    }

    #[test]
    fn hoster_ips_fall_in_hoster_prefix() {
        let ip = hoster_ip(hid::WIX, 42);
        assert!(hoster_prefix(hid::WIX).contains(IpAddr::V4(ip)));
    }

    #[test]
    fn named_hoster_indices_line_up() {
        assert_eq!(HOSTERS[hid::WIX.0 as usize].name, "Wix");
        assert_eq!(
            HOSTERS[hid::NAMECHEAP.0 as usize].ns_sld,
            "registrar-servers.com"
        );
        assert_eq!(HOSTERS[hid::SEDO.0 as usize].kind, HosterKind::Parking);
        assert_eq!(HOSTERS[hid::ENOM.0 as usize].asn, 21740);
        assert_eq!(HOSTERS[hid::ZOHO.0 as usize].asn, 2639);
    }
}
