//! Per-domain state and the diversion taxonomy (paper §2).

use crate::ids::{BasketId, DomainId, HosterId, ProviderId, Tld};
use dps_netsim::Day;
use serde::{Deserialize, Serialize};

/// How (and whether) a domain's traffic relates to a DPS right now.
///
/// These variants are the ground-truth counterpart of the method
/// combinations the detection methodology infers from CNAME/NS/ASN
/// references (paper §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Diversion {
    /// No DPS involvement: ordinary hosting.
    #[default]
    None,
    /// Owner pointed A records at a provider cloud address
    /// (ASN reference only).
    ARecord(ProviderId),
    /// `www` is an alias into the provider's domain; the apex A also lands
    /// in the provider cloud (CNAME + ASN references, no NS).
    Cname(ProviderId),
    /// The zone is delegated to the provider *and* traffic is diverted
    /// (NS + ASN references).
    NsDelegation(ProviderId),
    /// The zone is delegated (e.g. a managed-DNS product) but addresses
    /// still point at the original hoster: NS reference only, no diversion.
    NsOnly(ProviderId),
    /// Addresses unchanged; the covering prefix is originated by the
    /// provider's AS (BGP diversion: ASN reference with stable address).
    Bgp(ProviderId),
}

impl Diversion {
    /// The provider involved, if any.
    pub fn provider(self) -> Option<ProviderId> {
        match self {
            Diversion::None => None,
            Diversion::ARecord(p)
            | Diversion::Cname(p)
            | Diversion::NsDelegation(p)
            | Diversion::NsOnly(p)
            | Diversion::Bgp(p) => Some(p),
        }
    }

    /// True if traffic actually flows through the provider (everything but
    /// `None` and the no-diversion managed-DNS case).
    pub fn diverts_traffic(self) -> bool {
        !matches!(self, Diversion::None | Diversion::NsOnly(_))
    }

    /// True if the provider serves the domain's zone (NS reference).
    pub fn delegates_dns(self) -> bool {
        matches!(self, Diversion::NsDelegation(_) | Diversion::NsOnly(_))
    }
}

/// Mutable state of one second-level domain.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DomainState {
    /// Zone the domain is registered under.
    pub tld: Tld,
    /// Hosting company of its baseline (non-diverted) address.
    pub hoster: HosterId,
    /// First day the domain appears in the zone file.
    pub registered: Day,
    /// First day the domain is *absent* again, if it was ever deleted.
    pub deleted: Option<Day>,
    /// Scripted basket membership (Wix, ENOM, …), with the member index
    /// used for stable basket addressing.
    pub basket: Option<(BasketId, u32)>,
    /// Current protection state.
    pub diversion: Diversion,
    /// Whether `www` publishes an AAAA when the serving side supports IPv6.
    pub wants_aaaa: bool,
    /// Baseline `www` posture: alias into the hoster's platform domain
    /// (Wix-style) instead of a direct A record.
    pub www_cname_to_hoster: bool,
    /// The domain's DNS is broken today (models the Sedo incident: queries
    /// fail, the domain drops out of that day's measurement).
    pub outage: bool,
}

impl DomainState {
    /// True if the domain is in its TLD zone file on `day`.
    pub fn alive_on(&self, day: Day) -> bool {
        self.registered <= day && self.deleted.map_or(true, |d| day < d)
    }
}

/// Ground truth for one domain-day, used to score the detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroundTruth {
    /// The provider whose services the domain uses (any mechanism).
    pub provider: Option<ProviderId>,
    /// The exact mechanism.
    pub diversion: Diversion,
}

/// Builds the apex presentation name of domain `id`: `d<id>.<tld>`.
pub fn domain_label(id: DomainId) -> String {
    format!("d{}", id.0)
}

/// Parses a `d<id>` label back to the id.
pub fn parse_domain_label(label: &[u8]) -> Option<DomainId> {
    let (first, digits) = label.split_first()?;
    if *first != b'd' || digits.is_empty() || digits.len() > 9 {
        return None;
    }
    let mut v: u32 = 0;
    for &b in digits {
        if !b.is_ascii_digit() {
            return None;
        }
        v = v.checked_mul(10)?.checked_add(u32::from(b - b'0'))?;
    }
    Some(DomainId(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::pid;

    #[test]
    fn label_roundtrip() {
        for id in [0u32, 7, 123_456, 999_999_999] {
            let label = domain_label(DomainId(id));
            assert_eq!(parse_domain_label(label.as_bytes()), Some(DomainId(id)));
        }
        assert_eq!(parse_domain_label(b"x123"), None);
        assert_eq!(parse_domain_label(b"d"), None);
        assert_eq!(parse_domain_label(b"d12a"), None);
        assert_eq!(parse_domain_label(b"d9999999999"), None);
    }

    #[test]
    fn diversion_predicates() {
        assert!(!Diversion::None.diverts_traffic());
        assert!(!Diversion::NsOnly(pid::VERISIGN).diverts_traffic());
        assert!(Diversion::Bgp(pid::F5).diverts_traffic());
        assert!(Diversion::NsOnly(pid::VERISIGN).delegates_dns());
        assert!(!Diversion::Cname(pid::AKAMAI).delegates_dns());
        assert_eq!(Diversion::Cname(pid::AKAMAI).provider(), Some(pid::AKAMAI));
        assert_eq!(Diversion::None.provider(), None);
    }

    #[test]
    fn alive_window() {
        let d = DomainState {
            tld: Tld::Com,
            hoster: HosterId(0),
            registered: Day(10),
            deleted: Some(Day(20)),
            basket: None,
            diversion: Diversion::None,
            wants_aaaa: false,
            www_cname_to_hoster: false,
            outage: false,
        };
        assert!(!d.alive_on(Day(9)));
        assert!(d.alive_on(Day(10)));
        assert!(d.alive_on(Day(19)));
        assert!(!d.alive_on(Day(20)));
    }
}
