//! The deterministic `imc2016` scenario: populations, churn, organic DPS
//! adoption, on-demand customers, and the third-party basket scripts that
//! reproduce the paper's anomalies.
//!
//! All counts are expressed at **reference scale 1.0 = 1/1000 of the real
//! 2015–2016 namespace** and multiplied by [`ScenarioParams::scale`], so a
//! test can run the same world at 1/100 000 of reality and the experiment
//! harness at 1/1000.

use crate::domain::{Diversion, DomainState};
use crate::ids::{BasketId, DomainId, HosterId, ProviderId, Tld};
use crate::schedule::{Action, Event, Schedule};
use crate::spec::{hid, pid, HOSTERS, PROVIDERS};
use dps_netsim::{Asn, Day};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Scenario knobs.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioParams {
    /// World seed; every derived RNG stream is deterministic in it.
    pub seed: u64,
    /// Population multiplier; 1.0 ≈ 1/1000 of the real namespace.
    pub scale: f64,
    /// Days of gTLD measurement (paper: 550).
    pub gtld_days: u32,
    /// First day of .nl / Alexa measurement (paper: 2016-03-01 = day 366).
    pub cc_start_day: u32,
}

impl Default for ScenarioParams {
    fn default() -> Self {
        Self {
            seed: 2016,
            scale: 1.0,
            gtld_days: 550,
            cc_start_day: 366,
        }
    }
}

impl ScenarioParams {
    /// A small world for unit/integration tests: 1/100 of reference scale,
    /// 60 days, cc sources from day 20.
    pub fn tiny(seed: u64) -> Self {
        Self {
            seed,
            scale: 0.01,
            gtld_days: 60,
            cc_start_day: 20,
        }
    }

    /// Applies the scale factor to a reference count.
    pub fn scaled(&self, reference: f64) -> u32 {
        (reference * self.scale).round() as u32
    }

    /// Last measured day (exclusive bound is `gtld_days`).
    pub fn last_day(&self) -> Day {
        Day(self.gtld_days - 1)
    }
}

/// Reference-scale population numbers for one TLD.
#[derive(Debug, Clone, Copy)]
pub struct TldCalibration {
    /// The zone.
    pub tld: Tld,
    /// Zone size on day 0.
    pub start: f64,
    /// Registrations over the whole period.
    pub registrations: f64,
    /// Deletions over the whole period.
    pub deletions: f64,
    /// First day churn applies (used to confine .nl churn to its
    /// measurement window).
    pub churn_from: u32,
}

/// Organic (always-on) adoption curve of one provider.
#[derive(Debug, Clone, Copy)]
pub struct ProviderCalibration {
    /// The provider.
    pub provider: ProviderId,
    /// Customers on day 0 (gTLD population).
    pub start: f64,
    /// Customers on the last day.
    pub end: f64,
    /// Extra customers that both join *and* leave during the period
    /// (adds first/last-seen flux without changing the trend).
    pub turnover: f64,
    /// On-demand customers with ≥3 protection peaks (Fig. 8 population).
    pub on_demand: f64,
    /// 80th percentile of on-demand peak durations, days (Fig. 8 marker).
    pub peak_p80_days: f64,
}

/// The paper-calibrated reference numbers.
///
/// Organic curves are chosen so the smoothed, anomaly-cleaned combined
/// series grows ≈1.24× while the overall namespace grows ≈1.09× (paper
/// §4.2), with CloudFlare/DOSarrest/Incapsula/Verisign driving growth and
/// F5/CenturyLink contributing incidental decline.
pub fn default_providers() -> Vec<ProviderCalibration> {
    vec![
        ProviderCalibration {
            provider: pid::AKAMAI,
            start: 200.0,
            end: 240.0,
            turnover: 20.0,
            on_demand: 60.0,
            peak_p80_days: 10.0,
        },
        ProviderCalibration {
            provider: pid::CENTURYLINK,
            start: 80.0,
            end: 90.0,
            turnover: 8.0,
            on_demand: 50.0,
            peak_p80_days: 6.0,
        },
        ProviderCalibration {
            provider: pid::CLOUDFLARE,
            start: 1800.0,
            end: 2820.0,
            turnover: 150.0,
            on_demand: 120.0,
            peak_p80_days: 31.0,
        },
        ProviderCalibration {
            provider: pid::DOSARREST,
            start: 50.0,
            end: 210.0,
            turnover: 10.0,
            on_demand: 45.0,
            peak_p80_days: 27.0,
        },
        ProviderCalibration {
            provider: pid::F5,
            start: 900.0,
            end: 780.0,
            turnover: 40.0,
            on_demand: 30.0,
            peak_p80_days: 79.0,
        },
        ProviderCalibration {
            provider: pid::INCAPSULA,
            start: 70.0,
            end: 205.0,
            turnover: 15.0,
            on_demand: 80.0,
            peak_p80_days: 11.0,
        },
        ProviderCalibration {
            provider: pid::LEVEL3,
            start: 45.0,
            end: 50.0,
            turnover: 5.0,
            on_demand: 25.0,
            peak_p80_days: 4.0,
        },
        ProviderCalibration {
            provider: pid::NEUSTAR,
            start: 480.0,
            end: 500.0,
            turnover: 25.0,
            on_demand: 150.0,
            peak_p80_days: 4.0,
        },
        ProviderCalibration {
            provider: pid::VERISIGN,
            start: 280.0,
            end: 520.0,
            turnover: 20.0,
            on_demand: 70.0,
            peak_p80_days: 16.0,
        },
    ]
}

/// Reference TLD populations: .com/.net/.org sizes and churn are the
/// paper's Table 1 and §4.2 figures divided by 1000; .nl churn is confined
/// to its 6-month window (growth ≈1.8%).
pub fn default_tlds(cc_start: u32) -> Vec<TldCalibration> {
    vec![
        TldCalibration {
            tld: Tld::Com,
            start: 115_400.0,
            registrations: 45_800.0,
            deletions: 35_800.0,
            churn_from: 1,
        },
        TldCalibration {
            tld: Tld::Net,
            start: 14_460.0,
            registrations: 5_740.0,
            deletions: 4_490.0,
            churn_from: 1,
        },
        TldCalibration {
            tld: Tld::Org,
            start: 10_090.0,
            registrations: 3_700.0,
            deletions: 2_790.0,
            churn_from: 1,
        },
        TldCalibration {
            tld: Tld::Nl,
            start: 5_750.0,
            registrations: 150.0,
            deletions: 45.0,
            churn_from: cc_start,
        },
    ]
}

/// How a basket's members get their addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BasketAddressing {
    /// Members answer addresses in the basket's dedicated prefix
    /// (whose BGP origin the script flips).
    DedicatedPrefix,
    /// Members answer hoster/provider addresses like ordinary domains.
    Shared,
    /// Wix: shared AWS addresses when not diverted, dedicated prefix when
    /// diverted.
    WixStyle,
}

/// A scripted third-party population.
#[derive(Debug, Clone)]
pub struct BasketSpec {
    /// Display name (matches the paper's attribution).
    pub name: &'static str,
    /// Hosting-side owner.
    pub hoster: HosterId,
    /// Members present on day 0 (reference scale).
    pub initial_members: f64,
    /// Members registered later: `(day, additional count)`.
    pub growth: Vec<(u32, f64)>,
    /// Addressing mode.
    pub addressing: BasketAddressing,
    /// Initial protection state of members.
    pub initial_diversion: Diversion,
    /// Script: `(day, action)` basket-wide changes.
    pub script: Vec<(u32, BasketMove)>,
    /// TLD mix: fraction of members in .com (rest split net/org 60/40).
    pub com_share: f64,
}

/// A basket-wide scripted move.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BasketMove {
    /// All members switch protection state (with any BGP origin change
    /// implied by the addressing mode).
    Divert(Diversion),
    /// DNS outage starts (true) or ends (false).
    Outage(bool),
}

/// The third-party scripts behind the paper's §4.4.1 anomalies.
///
/// Days reference the paper's calendar: day 0 = 2015-03-01.
pub fn default_baskets() -> Vec<BasketSpec> {
    let wix_f5 = Diversion::Bgp(pid::F5);
    let wix_inc = Diversion::Bgp(pid::INCAPSULA);
    vec![
        // ① ⑥ ⑦ Wix: ~1.1M-domain swings between F5 and Incapsula in
        // March 2015, the May–September 2015 Incapsula plateau, and the
        // April 2016 peak of 1.76M names. The baseline posture is AWS
        // (undiverted); every provider stint is a transient excursion the
        // growth analysis must clean (the paper removed these manually).
        BasketSpec {
            name: "Wix",
            hoster: hid::WIX,
            initial_members: 1_100.0,
            growth: vec![(120, 220.0), (260, 220.0), (380, 220.0)],
            addressing: BasketAddressing::WixStyle,
            initial_diversion: Diversion::None,
            script: vec![
                (2, BasketMove::Divert(wix_f5)),  // short F5 stint ⑥⑦
                (4, BasketMove::Divert(wix_inc)), // 2015-03-05 peak
                (6, BasketMove::Divert(wix_f5)),
                (20, BasketMove::Divert(Diversion::None)),
                (66, BasketMove::Divert(wix_inc)), // plateau May..Sep '15
                (190, BasketMove::Divert(Diversion::None)),
                (285, BasketMove::Divert(wix_f5)), // winter stint on F5
                (340, BasketMove::Divert(Diversion::None)),
                (405, BasketMove::Divert(wix_inc)), // ① April 2016 peak
                (435, BasketMove::Divert(Diversion::None)),
            ],
            com_share: 0.86,
        },
        // ② SiteMatrix: a domainer moving ~170k names onto Incapsula in
        // June 2016, permanently.
        BasketSpec {
            name: "SiteMatrix",
            hoster: HosterId(3),
            initial_members: 170.0,
            growth: vec![],
            addressing: BasketAddressing::Shared,
            initial_diversion: Diversion::None,
            script: vec![(470, BasketMove::Divert(Diversion::ARecord(pid::INCAPSULA)))],
            com_share: 0.9,
        },
        // ENOM: /24s flipping AS21740 ↔ Verisign AS26415, repeatedly
        // (up to 700k-domain swings).
        BasketSpec {
            name: "ENOM",
            hoster: hid::ENOM,
            initial_members: 700.0,
            growth: vec![],
            addressing: BasketAddressing::DedicatedPrefix,
            initial_diversion: Diversion::None,
            script: vec![
                (30, BasketMove::Divert(Diversion::Bgp(pid::VERISIGN))),
                (45, BasketMove::Divert(Diversion::None)),
                (150, BasketMove::Divert(Diversion::Bgp(pid::VERISIGN))),
                (170, BasketMove::Divert(Diversion::None)),
                (250, BasketMove::Divert(Diversion::Bgp(pid::VERISIGN))),
                (265, BasketMove::Divert(Diversion::None)),
                (330, BasketMove::Divert(Diversion::Bgp(pid::VERISIGN))),
                (360, BasketMove::Divert(Diversion::None)),
                (430, BasketMove::Divert(Diversion::Bgp(pid::VERISIGN))),
                (445, BasketMove::Divert(Diversion::None)),
            ],
            com_share: 0.85,
        },
        // ZOHO: two prefixes normally in AS2639, diverted to Verisign.
        BasketSpec {
            name: "ZOHO",
            hoster: hid::ZOHO,
            initial_members: 200.0,
            growth: vec![],
            addressing: BasketAddressing::DedicatedPrefix,
            initial_diversion: Diversion::None,
            script: vec![
                (90, BasketMove::Divert(Diversion::Bgp(pid::VERISIGN))),
                (120, BasketMove::Divert(Diversion::None)),
                (380, BasketMove::Divert(Diversion::Bgp(pid::VERISIGN))),
                (400, BasketMove::Divert(Diversion::None)),
            ],
            com_share: 0.8,
        },
        // ③ Namecheap: ~247k domains on registrar-servers.com NS whose A
        // records land in CloudFlare space in February 2016.
        BasketSpec {
            name: "Namecheap",
            hoster: hid::NAMECHEAP,
            initial_members: 247.0,
            growth: vec![],
            addressing: BasketAddressing::Shared,
            initial_diversion: Diversion::None,
            script: vec![
                (337, BasketMove::Divert(Diversion::ARecord(pid::CLOUDFLARE))),
                (365, BasketMove::Divert(Diversion::None)),
            ],
            com_share: 0.88,
        },
        // ⑥→④ Sedo Domain Parking: always on Akamai; single-day DNS issue
        // on 2015-11-22 (day 266) removes ~716k names from the measurement.
        BasketSpec {
            name: "Sedo",
            hoster: hid::SEDO,
            initial_members: 716.0,
            growth: vec![],
            addressing: BasketAddressing::Shared,
            initial_diversion: Diversion::ARecord(pid::AKAMAI),
            script: vec![
                (266, BasketMove::Outage(true)),
                (267, BasketMove::Outage(false)),
            ],
            com_share: 0.84,
        },
        // ⑤ Fabulous: ~355k parked names leaving CenturyLink space in
        // February 2016, permanently.
        BasketSpec {
            name: "Fabulous",
            hoster: hid::FABULOUS,
            initial_members: 355.0,
            growth: vec![],
            addressing: BasketAddressing::Shared,
            initial_diversion: Diversion::ARecord(pid::CENTURYLINK),
            script: vec![(345, BasketMove::Divert(Diversion::None))],
            com_share: 0.87,
        },
    ]
}

/// Runtime info about one basket inside a built scenario.
#[derive(Debug, Clone)]
pub struct BasketInfo {
    /// The spec it was built from.
    pub spec: BasketSpec,
    /// Member domains (index = stable member number for addressing).
    pub members: Vec<DomainId>,
    /// Current outage state (maintained by the world).
    pub outage: bool,
}

/// An Alexa-list membership interval.
#[derive(Debug, Clone, Copy)]
pub struct AlexaEntry {
    /// The listed domain.
    pub domain: DomainId,
    /// First day on the list.
    pub from: Day,
    /// First day off the list again (exclusive), if it rotates out.
    pub until: Option<Day>,
}

/// A fully generated world description, ready for [`crate::World`].
pub struct Scenario {
    /// Parameters it was built with.
    pub params: ScenarioParams,
    /// All domains ever existing (index = [`DomainId`]).
    pub domains: Vec<DomainState>,
    /// Day-ordered events.
    pub schedule: Schedule,
    /// Third-party baskets.
    pub baskets: Vec<BasketInfo>,
    /// Alexa list membership intervals.
    pub alexa: Vec<AlexaEntry>,
}

/// Picks an organic diversion mechanism for a provider, matching the per-
/// provider product mixes discussed in §4.3 (e.g. ~75% of CloudFlare
/// domains use its authoritative DNS; ~0.02% of Incapsula's delegate).
fn organic_method(p: ProviderId, rng: &mut SmallRng) -> Diversion {
    let x: f64 = rng.gen();
    match p {
        _ if p == pid::AKAMAI => {
            if x < 0.90 {
                Diversion::Cname(p)
            } else {
                Diversion::NsDelegation(p)
            }
        }
        _ if p == pid::CENTURYLINK => {
            if x < 0.40 {
                Diversion::NsDelegation(p)
            } else {
                Diversion::ARecord(p)
            }
        }
        _ if p == pid::CLOUDFLARE => {
            if x < 0.75 {
                Diversion::NsDelegation(p)
            } else if x < 0.95 {
                Diversion::Cname(p)
            } else {
                Diversion::ARecord(p)
            }
        }
        _ if p == pid::INCAPSULA => {
            if x < 0.0002 {
                Diversion::NsDelegation(p)
            } else if x < 0.85 {
                Diversion::Cname(p)
            } else {
                Diversion::ARecord(p)
            }
        }
        _ if p == pid::LEVEL3 => {
            if x < 0.50 {
                Diversion::NsDelegation(p)
            } else {
                Diversion::ARecord(p)
            }
        }
        _ if p == pid::NEUSTAR => {
            if x < 0.30 {
                Diversion::Cname(p)
            } else if x < 0.70 {
                Diversion::NsDelegation(p)
            } else {
                Diversion::ARecord(p)
            }
        }
        _ if p == pid::VERISIGN => {
            if x < 0.50 {
                Diversion::NsOnly(p)
            } else if x < 0.80 {
                Diversion::NsDelegation(p)
            } else {
                Diversion::ARecord(p)
            }
        }
        // DOSarrest & F5 sell no DNS product: plain address diversion.
        _ => Diversion::ARecord(p),
    }
}

/// The on-demand mechanism pair `(off-state, on-state)` per provider.
fn on_demand_states(p: ProviderId) -> (Diversion, Diversion) {
    if p == pid::CLOUDFLARE || p == pid::VERISIGN {
        // Hybrid/managed-DNS style: delegation persists, diversion flips.
        (Diversion::NsOnly(p), Diversion::NsDelegation(p))
    } else if p == pid::AKAMAI || p == pid::INCAPSULA || p == pid::NEUSTAR {
        (Diversion::None, Diversion::Cname(p))
    } else {
        (Diversion::None, Diversion::ARecord(p))
    }
}

impl Scenario {
    /// Builds the full IMC-2016 world at the given parameters.
    pub fn imc2016(params: ScenarioParams) -> Self {
        Builder::new(params).build()
    }
}

/// Incremental scenario builder (private).
struct Builder {
    params: ScenarioParams,
    rng: SmallRng,
    domains: Vec<DomainState>,
    events: Vec<Event>,
    baskets: Vec<BasketInfo>,
    /// Filler domains alive from day 0, eligible for deletion.
    deletable: Vec<DomainId>,
    /// Organic adoption events `(domain, provider, day)` for Alexa biasing.
    adoptions_in_window: Vec<DomainId>,
    /// Domains protected on the cc start day (for Alexa biasing).
    protected_at_cc: Vec<DomainId>,
}

impl Builder {
    fn new(params: ScenarioParams) -> Self {
        Self {
            params,
            rng: SmallRng::seed_from_u64(params.seed),
            domains: Vec::new(),
            events: Vec::new(),
            baskets: Vec::new(),
            deletable: Vec::new(),
            adoptions_in_window: Vec::new(),
            protected_at_cc: Vec::new(),
        }
    }

    fn generic_hoster(&mut self, tld: Tld) -> HosterId {
        if tld == Tld::Nl {
            HosterId(8) // "NL Hosting"
        } else {
            HosterId(self.rng.gen_range(0..8))
        }
    }

    fn spawn(&mut self, tld: Tld, registered: Day, diversion: Diversion) -> DomainId {
        let hoster = self.generic_hoster(tld);
        let id = DomainId(self.domains.len() as u32);
        let wants_aaaa = self.rng.gen::<f64>() < 0.3;
        self.domains.push(DomainState {
            tld,
            hoster,
            registered,
            deleted: None,
            basket: None,
            diversion,
            wants_aaaa,
            www_cname_to_hoster: false,
            outage: false,
        });
        id
    }

    /// The paper's Fig. 4: DPS users distribute 85.7/8.2/6.1 over
    /// .com/.net/.org.
    fn dps_tld(&mut self) -> Tld {
        let x: f64 = self.rng.gen();
        if x < 0.857 {
            Tld::Com
        } else if x < 0.939 {
            Tld::Net
        } else {
            Tld::Org
        }
    }

    fn build(mut self) -> Scenario {
        self.fillers_and_churn();
        self.organic_adopters();
        self.on_demand_customers();
        self.basket_populations();
        let alexa = self.alexa_list();

        // Keep Register events for schedule traceability, even though the
        // world derives zone membership from `registered`/`deleted`.
        let schedule = Schedule::new(std::mem::take(&mut self.events));
        Scenario {
            params: self.params,
            domains: self.domains,
            schedule,
            baskets: self.baskets,
            alexa,
        }
    }

    fn fillers_and_churn(&mut self) {
        let days = self.params.gtld_days;
        for cal in default_tlds(self.params.cc_start_day) {
            let start = self.params.scaled(cal.start);
            for _ in 0..start {
                let id = self.spawn(cal.tld, Day(0), Diversion::None);
                self.deletable.push(id);
            }
            // Spread registrations/deletions over the churn window.
            let window = days.saturating_sub(cal.churn_from).max(1);
            let regs = self.params.scaled(cal.registrations);
            let dels = self.params.scaled(cal.deletions).min(start + regs);
            let mut reg_days: Vec<u32> = (0..regs)
                .map(|_| cal.churn_from + self.rng.gen_range(0..window))
                .collect();
            reg_days.sort_unstable();
            let mut new_ids = Vec::with_capacity(regs as usize);
            for d in reg_days {
                let id = self.spawn(cal.tld, Day(d), Diversion::None);
                self.events.push(Event {
                    day: Day(d),
                    action: Action::Register(id),
                });
                new_ids.push((id, d));
            }
            // Deletions pick random deletable domains of this TLD.
            let mut del_days: Vec<u32> = (0..dels)
                .map(|_| cal.churn_from + self.rng.gen_range(0..window))
                .collect();
            del_days.sort_unstable();
            let mut candidates: Vec<DomainId> = self
                .deletable
                .iter()
                .copied()
                .filter(|id| self.domains[id.0 as usize].tld == cal.tld)
                .collect();
            candidates.extend(new_ids.iter().map(|(id, _)| *id));
            candidates.shuffle(&mut self.rng);
            for d in del_days {
                // Find a candidate already registered before `d`.
                while let Some(id) = candidates.pop() {
                    let st = &mut self.domains[id.0 as usize];
                    if st.registered.0 < d && st.deleted.is_none() {
                        st.deleted = Some(Day(d));
                        self.events.push(Event {
                            day: Day(d),
                            action: Action::Delete(id),
                        });
                        break;
                    }
                }
            }
            // Remove now-deleted domains from the deletable pool.
            self.deletable
                .retain(|id| self.domains[id.0 as usize].deleted.is_none());
        }
    }

    /// Draws a never-deleted filler to become a protected domain, or spawns
    /// a new day-0 domain if the pool ran dry (tiny scales).
    fn claim_filler(&mut self, tld: Tld) -> DomainId {
        for _ in 0..32 {
            if self.deletable.is_empty() {
                break;
            }
            let k = self.rng.gen_range(0..self.deletable.len());
            let id = self.deletable[k];
            let st = &self.domains[id.0 as usize];
            if st.tld == tld && st.deleted.is_none() && st.registered == Day(0) {
                self.deletable.swap_remove(k);
                return id;
            }
        }
        self.spawn(tld, Day(0), Diversion::None)
    }

    fn organic_adopters(&mut self) {
        let days = self.params.gtld_days;
        let cc = self.params.cc_start_day;
        for cal in default_providers() {
            let p = cal.provider;
            let start = self.params.scaled(cal.start);
            let end = self.params.scaled(cal.end);

            // Day-0 customers.
            let mut members = Vec::new();
            for _ in 0..start {
                let tld = self.dps_tld();
                let id = self.claim_filler(tld);
                let method = organic_method(p, &mut self.rng);
                self.domains[id.0 as usize].diversion = method;
                members.push(id);
            }

            // Net growth or decline, spread over the period.
            if end > start {
                for _ in 0..end - start {
                    let tld = self.dps_tld();
                    let id = self.claim_filler(tld);
                    let day = Day(1 + self.rng.gen_range(0..days - 1));
                    let method = organic_method(p, &mut self.rng);
                    self.events.push(Event {
                        day,
                        action: Action::SetDiversion(id, method),
                    });
                    if day.0 <= cc {
                        self.protected_at_cc.push(id);
                    } else {
                        self.adoptions_in_window.push(id);
                    }
                }
            } else {
                members.shuffle(&mut self.rng);
                for id in members.iter().take((start - end) as usize) {
                    let day = Day(1 + self.rng.gen_range(0..days - 1));
                    self.events.push(Event {
                        day,
                        action: Action::SetDiversion(*id, Diversion::None),
                    });
                }
            }
            self.protected_at_cc.extend(members.iter().copied());

            // Turnover: join then leave inside the period.
            let turnover = self.params.scaled(cal.turnover);
            for _ in 0..turnover {
                let tld = self.dps_tld();
                let id = self.claim_filler(tld);
                let join = 1 + self.rng.gen_range(0..days.saturating_sub(90).max(1));
                let leave = (join + 30 + self.rng.gen_range(0..120)).min(days - 1);
                let method = organic_method(p, &mut self.rng);
                self.events.push(Event {
                    day: Day(join),
                    action: Action::SetDiversion(id, method),
                });
                self.events.push(Event {
                    day: Day(leave),
                    action: Action::SetDiversion(id, Diversion::None),
                });
            }
        }

        // .nl adopters: ~200 → ~221 over the cc window (growth ≈1.105×).
        let nl_start = self.params.scaled(200.0);
        let nl_new = self.params.scaled(21.0);
        let window = self.params.gtld_days.saturating_sub(cc).max(3);
        for i in 0..nl_start + nl_new {
            let id = self.claim_filler(Tld::Nl);
            // Spread over providers roughly like the gTLD mix.
            let p = match i % 10 {
                0..=5 => pid::CLOUDFLARE,
                6 => pid::INCAPSULA,
                7 => pid::AKAMAI,
                8 => pid::VERISIGN,
                _ => pid::NEUSTAR,
            };
            let method = organic_method(p, &mut self.rng);
            if i < nl_start {
                self.domains[id.0 as usize].diversion = method;
                self.protected_at_cc.push(id);
            } else {
                let day = Day(cc + 1 + self.rng.gen_range(0..window - 1));
                self.events.push(Event {
                    day,
                    action: Action::SetDiversion(id, method),
                });
                self.adoptions_in_window.push(id);
            }
        }
    }

    fn on_demand_customers(&mut self) {
        let days = self.params.gtld_days;
        for cal in default_providers() {
            let p = cal.provider;
            let (off, on) = on_demand_states(p);
            let count = self.params.scaled(cal.on_demand);
            // P(duration > p80) = 0.2 under a geometric tail.
            let lambda = (5.0f64).ln() / cal.peak_p80_days;
            for _ in 0..count {
                let tld = self.dps_tld();
                let id = self.claim_filler(tld);
                self.domains[id.0 as usize].diversion = off;
                let peaks = 3 + self.rng.gen_range(0..5);
                let mut day = 5 + self.rng.gen_range(0..70);
                for _ in 0..peaks {
                    if day >= days.saturating_sub(2) {
                        break;
                    }
                    let u: f64 = self.rng.gen_range(1e-9..1.0);
                    let dur = (1.0 + (-u.ln() / lambda)).floor() as u32;
                    let dur = dur.clamp(1, days / 3);
                    self.events.push(Event {
                        day: Day(day),
                        action: Action::SetDiversion(id, on),
                    });
                    let end = (day + dur).min(days - 1);
                    self.events.push(Event {
                        day: Day(end),
                        action: Action::SetDiversion(id, off),
                    });
                    day = end + 7 + self.rng.gen_range(0..45);
                }
            }
        }
    }

    fn basket_populations(&mut self) {
        for (b, spec) in default_baskets().into_iter().enumerate() {
            let basket_id = BasketId(b as u8);
            let mut members = Vec::new();
            let mut add_members = |builder: &mut Self, n: u32, registered: Day| {
                for _ in 0..n {
                    let x: f64 = builder.rng.gen();
                    let tld = if x < spec.com_share {
                        Tld::Com
                    } else if x < spec.com_share + (1.0 - spec.com_share) * 0.6 {
                        Tld::Net
                    } else {
                        Tld::Org
                    };
                    let id = builder.spawn(tld, registered, spec.initial_diversion);
                    let st = &mut builder.domains[id.0 as usize];
                    st.hoster = spec.hoster;
                    st.basket = Some((basket_id, members.len() as u32));
                    st.www_cname_to_hoster = spec.addressing == BasketAddressing::WixStyle;
                    if registered > Day(0) {
                        builder.events.push(Event {
                            day: registered,
                            action: Action::Register(id),
                        });
                    }
                    members.push(id);
                }
            };

            let initial = self.params.scaled(spec.initial_members);
            add_members(&mut *self, initial, Day(0));
            for &(day, n) in &spec.growth {
                if day >= self.params.gtld_days {
                    continue;
                }
                let n = self.params.scaled(n);
                add_members(&mut *self, n, Day(day));
            }

            // Script → events (with BGP origin changes for dedicated/Wix
            // addressing).
            let mut current = spec.initial_diversion;
            if let Some(asn) = Self::basket_origin(&spec, current) {
                // Initial announcement happens at world boot; encode as a
                // day-0 event so `World::new` applies it uniformly.
                self.events.push(Event {
                    day: Day(0),
                    action: Action::PrefixOrigin {
                        prefix: crate::spec::basket_prefix(basket_id),
                        from: None,
                        to: Some(asn),
                    },
                });
            }
            for &(day, mv) in &spec.script {
                if day >= self.params.gtld_days {
                    continue;
                }
                match mv {
                    BasketMove::Divert(next) => {
                        let from = Self::basket_origin(&spec, current);
                        let to = Self::basket_origin(&spec, next);
                        if from != to {
                            self.events.push(Event {
                                day: Day(day),
                                action: Action::PrefixOrigin {
                                    prefix: crate::spec::basket_prefix(basket_id),
                                    from,
                                    to,
                                },
                            });
                        }
                        self.events.push(Event {
                            day: Day(day),
                            action: Action::BasketDiversion(basket_id, next),
                        });
                        current = next;
                    }
                    BasketMove::Outage(on) => {
                        self.events.push(Event {
                            day: Day(day),
                            action: Action::BasketOutage(basket_id, on),
                        });
                    }
                }
            }

            self.baskets.push(BasketInfo {
                spec,
                members,
                outage: false,
            });
        }
    }

    /// Which AS originates a basket's dedicated prefix in a given state.
    fn basket_origin(spec: &BasketSpec, diversion: Diversion) -> Option<Asn> {
        match spec.addressing {
            BasketAddressing::Shared => None,
            BasketAddressing::DedicatedPrefix => Some(match diversion.provider() {
                Some(p) if diversion.diverts_traffic() => Asn(PROVIDERS[p.0 as usize].asns[0]),
                _ => Asn(HOSTERS[spec.hoster.0 as usize].asn),
            }),
            BasketAddressing::WixStyle => match diversion.provider() {
                Some(p) if diversion.diverts_traffic() => {
                    Some(Asn(PROVIDERS[p.0 as usize].asns[0]))
                }
                // Undiverted Wix answers AWS addresses; the dedicated
                // prefix is withdrawn entirely.
                _ => None,
            },
        }
    }

    fn alexa_list(&mut self) -> Vec<AlexaEntry> {
        let cc = Day(self.params.cc_start_day);
        let days = self.params.gtld_days;
        let list_size = self.params.scaled(2_000.0) as usize;
        let protected_quota = self.params.scaled(170.0) as usize;
        let adopting_quota = self.params.scaled(20.0) as usize;

        let mut entries = Vec::with_capacity(list_size + list_size / 10);
        let mut used = std::collections::BTreeSet::new();

        self.protected_at_cc.shuffle(&mut self.rng);
        for id in self.protected_at_cc.iter().take(protected_quota) {
            if used.insert(*id) {
                entries.push(AlexaEntry {
                    domain: *id,
                    from: cc,
                    until: None,
                });
            }
        }
        self.adoptions_in_window.shuffle(&mut self.rng);
        for id in self.adoptions_in_window.iter().take(adopting_quota) {
            if used.insert(*id) {
                entries.push(AlexaEntry {
                    domain: *id,
                    from: cc,
                    until: None,
                });
            }
        }
        // Fill with random long-lived domains; ~10% rotate out mid-window
        // and are replaced (uniques > list size, as in Table 1).
        let mut pool = self.deletable.clone();
        pool.shuffle(&mut self.rng);
        let mut pool = pool.into_iter();
        while entries.len() < list_size {
            let Some(id) = pool.next() else { break };
            if !used.insert(id) {
                continue;
            }
            if self.rng.gen::<f64>() < 0.1 {
                let leave = cc.0 + self.rng.gen_range(1..days.saturating_sub(cc.0).max(2));
                entries.push(AlexaEntry {
                    domain: id,
                    from: cc,
                    until: Some(Day(leave)),
                });
                // Replacement joins when this one leaves.
                if let Some(repl) = pool.next() {
                    if used.insert(repl) {
                        entries.push(AlexaEntry {
                            domain: repl,
                            from: Day(leave),
                            until: None,
                        });
                    }
                }
            } else {
                entries.push(AlexaEntry {
                    domain: id,
                    from: cc,
                    until: None,
                });
            }
        }
        entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_scenario_builds_deterministically() {
        let a = Scenario::imc2016(ScenarioParams::tiny(7));
        let b = Scenario::imc2016(ScenarioParams::tiny(7));
        assert_eq!(a.domains.len(), b.domains.len());
        assert_eq!(a.schedule.len(), b.schedule.len());
        let c = Scenario::imc2016(ScenarioParams::tiny(8));
        assert_ne!(
            a.domains.iter().map(|d| d.hoster.0 as u64).sum::<u64>(),
            c.domains.iter().map(|d| d.hoster.0 as u64).sum::<u64>()
        );
    }

    #[test]
    fn populations_scale_linearly() {
        let small = Scenario::imc2016(ScenarioParams {
            scale: 0.01,
            ..ScenarioParams::tiny(1)
        });
        let big = Scenario::imc2016(ScenarioParams {
            scale: 0.05,
            ..ScenarioParams::tiny(1)
        });
        let ratio = big.domains.len() as f64 / small.domains.len() as f64;
        assert!((3.5..6.5).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn baskets_have_expected_shape() {
        let s = Scenario::imc2016(ScenarioParams {
            scale: 0.1,
            ..Default::default()
        });
        let names: Vec<&str> = s.baskets.iter().map(|b| b.spec.name).collect();
        assert_eq!(
            names,
            vec![
                "Wix",
                "SiteMatrix",
                "ENOM",
                "ZOHO",
                "Namecheap",
                "Sedo",
                "Fabulous"
            ]
        );
        let wix = &s.baskets[0];
        assert!(wix.members.len() >= 100, "wix={}", wix.members.len());
        for &m in &wix.members {
            let st = &s.domains[m.0 as usize];
            assert_eq!(st.basket.map(|(b, _)| b), Some(BasketId(0)));
            assert!(st.www_cname_to_hoster);
        }
    }

    #[test]
    fn day_zero_population_matches_calibration() {
        let p = ScenarioParams {
            scale: 0.1,
            ..Default::default()
        };
        let s = Scenario::imc2016(p);
        let day0_com = s
            .domains
            .iter()
            .filter(|d| d.tld == Tld::Com && d.registered == Day(0))
            .count() as f64;
        // 11 540 fillers + DPS populations & baskets mostly in .com.
        assert!(
            (11_000.0..13_500.0).contains(&day0_com),
            "day0 com = {day0_com}"
        );
    }

    #[test]
    fn on_demand_events_alternate() {
        let s = Scenario::imc2016(ScenarioParams {
            scale: 0.5,
            ..Default::default()
        });
        // Find a domain with ≥6 SetDiversion events (an on-demand one) and
        // check they alternate on/off.
        use std::collections::HashMap;
        let mut per_domain: HashMap<DomainId, Vec<&Event>> = HashMap::new();
        let mut sched = s.schedule.clone();
        for e in sched.take_through(Day(10_000)) {
            if let Action::SetDiversion(id, _) = e.action {
                per_domain.entry(id).or_default().push(e);
            }
        }
        let ondemand = per_domain
            .values()
            .find(|v| v.len() >= 6)
            .expect("some on-demand domain");
        let mut last_on = None;
        for e in ondemand {
            if let Action::SetDiversion(_, div) = &e.action {
                let on = div.diverts_traffic();
                if let Some(prev) = last_on {
                    assert_ne!(prev, on, "events must alternate");
                }
                last_on = Some(on);
            }
        }
    }

    #[test]
    fn alexa_list_has_quota_and_rotation() {
        let s = Scenario::imc2016(ScenarioParams {
            scale: 0.5,
            ..Default::default()
        });
        let list = &s.alexa;
        assert!(list.len() >= 900, "len={}", list.len());
        assert!(
            list.iter().any(|e| e.until.is_some()),
            "some rotation expected"
        );
        // Every entry is a real domain.
        for e in list {
            assert!((e.domain.0 as usize) < s.domains.len());
        }
    }
}
