//! Recursor sweep cost: cold (empty caches, every query descends from the
//! root) vs warm (answer + infra caches populated). Also reports the
//! simulated UDP packet counts behind each variant, the number the paper's
//! measurement infrastructure actually pays for.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dps_dns::{Name, RrType};
use dps_ecosystem::{ScenarioParams, Tld, World};
use dps_netsim::{Day, Network};
use dps_recursor::{Recursor, RecursorConfig, SweepScheduler};

fn jobs(world: &World) -> Vec<(Name, RrType)> {
    let mut jobs = Vec::new();
    for entry in world.zone_entries(Tld::Com).iter().copied().take(60) {
        let apex = world.entry_name(entry);
        jobs.push((apex.clone(), RrType::A));
        jobs.push((apex.prepend("www").unwrap(), RrType::A));
        jobs.push((apex, RrType::Ns));
    }
    jobs
}

fn bench(c: &mut Criterion) {
    let world = World::imc2016(ScenarioParams::tiny(17));
    let src: std::net::IpAddr = "172.16.9.1".parse().unwrap();
    let jobs = jobs(&world);

    // One-off packet accounting, printed alongside the timings.
    {
        let net = Network::new(3);
        let catalog = world.materialize(&net);
        let recursor = Recursor::new(catalog.root_hints(), RecursorConfig::default());
        let scheduler = SweepScheduler::new(recursor, 4);
        let cold = scheduler.run_sweep(&net, src, Day(0), &jobs);
        let warm = scheduler.run_sweep(&net, src, Day(0), &jobs);
        println!(
            "recursor packets: {} queries; cold sweep {} packets, warm sweep {} \
             packets (hit ratio {:.3})",
            cold.queries,
            cold.packets_sent,
            warm.packets_sent,
            warm.hit_ratio()
        );
    }

    let mut group = c.benchmark_group("recursor");
    group.sample_size(10);
    group.throughput(Throughput::Elements(jobs.len() as u64));

    group.bench_function("cold_sweep", |b| {
        let net = Network::new(4);
        let catalog = world.materialize(&net);
        b.iter(|| {
            // Fresh recursor per iteration: every query pays full descent.
            let recursor = Recursor::new(catalog.root_hints(), RecursorConfig::default());
            let report = SweepScheduler::new(recursor, 4).run_sweep(&net, src, Day(0), &jobs);
            black_box(report.packets_sent)
        })
    });

    group.bench_function("warm_sweep", |b| {
        let net = Network::new(5);
        let catalog = world.materialize(&net);
        let recursor = Recursor::new(catalog.root_hints(), RecursorConfig::default());
        let scheduler = SweepScheduler::new(recursor, 4);
        scheduler.run_sweep(&net, src, Day(0), &jobs); // populate caches
        b.iter(|| {
            let report = scheduler.run_sweep(&net, src, Day(0), &jobs);
            black_box(report.packets_sent)
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
