//! Cluster sweep throughput and protocol overhead.
//!
//! Times the same fixed-seed study three ways: the single-process
//! `Study::run_archived`, and manager+worker cluster runs over the
//! in-process loopback transport at 1, 2 and 4 workers. The 1-worker
//! cluster run performs exactly the single-process work plus every
//! protocol cost (framing, leasing, heartbeats, merge), so its slowdown
//! against the direct run *is* the protocol overhead — the budget is 5%.
//!
//! Interpreting the number: the manager decodes results on a reader
//! thread, so with ≥2 CPUs the decode overlaps the worker's next sweep
//! (lease pipelining keeps that sweep queued). On a single-CPU host
//! nothing overlaps and every protocol byte lands on the critical path;
//! `host_cpus` in the JSON records which regime was measured.
//!
//! The vendored criterion stand-in has no JSON reporter, so this bench
//! writes `BENCH_cluster.json` at the workspace root itself.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dps_cluster::manager::{serve, ClusterConfig, ClusterOutcome};
use dps_cluster::transport::{loopback_conn, Conn};
use dps_cluster::worker::{run_agent, WorkerOptions};
use dps_ecosystem::{ScenarioParams, World};
use dps_measure::{Study, StudyConfig};
use std::fmt::Write as _;
use std::sync::mpsc;
use std::time::{Duration, Instant};

const SEED: u64 = 2016;
const SCALE: f64 = 0.01;
const DAYS: u32 = 3;
const CC_START: u32 = 2;
const SAMPLES: usize = 15;

fn params() -> ScenarioParams {
    ScenarioParams {
        seed: SEED,
        scale: SCALE,
        gtld_days: DAYS,
        cc_start_day: CC_START,
    }
}

fn temp_path(tag: &str, sample: usize) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "dps-bench-cluster-{tag}-{}-{sample}.dps",
        std::process::id()
    ))
}

/// One single-process archived study; returns wall seconds.
fn run_single(sample: usize) -> f64 {
    let path = temp_path("single", sample);
    std::fs::remove_file(&path).ok();
    let mut world = World::imc2016(params());
    let start = Instant::now();
    let store = Study::new(StudyConfig {
        days: DAYS,
        cc_start_day: CC_START,
        stride: 1,
    })
    .run_archived(&mut world, &path)
    .expect("archived study");
    let secs = start.elapsed().as_secs_f64();
    black_box(store.total_stored_bytes());
    std::fs::remove_file(&path).ok();
    secs
}

/// One cluster run with `workers` loopback agents; returns wall seconds
/// and the total rows accepted.
fn run_cluster(workers: usize, sample: usize) -> (f64, u64) {
    let path = temp_path(&format!("w{workers}"), sample);
    std::fs::remove_file(&path).ok();
    let (conn_tx, conn_rx) = mpsc::channel::<Conn>();
    let mut agents = Vec::new();
    let start = Instant::now();
    for i in 0..workers {
        // Read timeout > heartbeat interval: the liveness contract.
        let (server_end, worker_end) = loopback_conn(Duration::from_millis(250));
        conn_tx.send(server_end).expect("queue conn");
        let opts = WorkerOptions {
            name: format!("bench-{i}"),
            ..WorkerOptions::default()
        };
        agents.push(std::thread::spawn(move || run_agent(worker_end, opts)));
    }
    drop(conn_tx);
    let ClusterOutcome { store, report } =
        serve(conn_rx, ClusterConfig::for_params(params()), &path).expect("cluster sweep");
    for agent in agents {
        agent.join().expect("agent thread").expect("agent run");
    }
    let secs = start.elapsed().as_secs_f64();
    black_box(store.total_stored_bytes());
    let rows: u64 = report.accepted.iter().map(|r| u64::from(r.rows)).sum();
    std::fs::remove_file(&path).ok();
    (secs, rows)
}

/// Noise filter: the minimum over samples. The bench host is shared and
/// single-core, so wall times carry large additive interference; the
/// minimum is the closest observation to the true cost of the work.
fn minimum(xs: Vec<f64>) -> f64 {
    xs.into_iter().fold(f64::INFINITY, f64::min)
}

fn bench(c: &mut Criterion) {
    // Warm-up: populate allocator arenas and fault in the world build.
    run_single(usize::MAX);

    // Interleave scenarios round-robin so slow periods on the shared
    // host hit every scenario alike instead of biasing one.
    let mut single_walls = Vec::new();
    let mut cluster_walls = [const { Vec::new() }; 3];
    let mut cluster_rows = [0u64; 3];
    for sample in 0..SAMPLES {
        single_walls.push(run_single(sample));
        for (slot, workers) in [1usize, 2, 4].into_iter().enumerate() {
            let (secs, r) = run_cluster(workers, sample);
            cluster_walls[slot].push(secs);
            cluster_rows[slot] = r;
        }
    }
    let single_s = minimum(single_walls);
    let per_workers: Vec<(usize, f64, u64)> = [1usize, 2, 4]
        .into_iter()
        .zip(cluster_walls)
        .zip(cluster_rows)
        .map(|((workers, walls), rows)| (workers, minimum(walls), rows))
        .collect();

    let overhead_pct = per_workers
        .first()
        .map(|&(_, w1, _)| (w1 / single_s - 1.0) * 100.0)
        .unwrap_or(0.0);

    let mut workers_json = String::new();
    for (i, &(workers, wall, rows)) in per_workers.iter().enumerate() {
        let sep = if i + 1 < per_workers.len() { "," } else { "" };
        let _ = write!(
            workers_json,
            "\n    \"{workers}\": {{ \"wall_ms\": {:.1}, \"per_day_ms\": {:.1}, \
             \"rows_per_sec\": {:.0} }}{sep}",
            wall * 1e3,
            wall * 1e3 / f64::from(DAYS),
            rows as f64 / wall,
        );
    }
    let host_cpus = std::thread::available_parallelism().map_or(1, usize::from);
    let json = format!(
        "{{\n  \"scenario\": {{ \"seed\": {SEED}, \"scale\": {SCALE}, \"days\": {DAYS} }},\n  \
         \"host_cpus\": {host_cpus},\n  \
         \"single_process\": {{ \"wall_ms\": {:.1}, \"per_day_ms\": {:.1} }},\n  \
         \"workers\": {{{workers_json}\n  }},\n  \
         \"protocol_overhead_pct_1w\": {overhead_pct:.2},\n  \
         \"protocol_overhead_budget_pct\": 5.0\n}}\n",
        single_s * 1e3,
        single_s * 1e3 / f64::from(DAYS),
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_cluster.json");
    std::fs::write(&out, &json).expect("write BENCH_cluster.json");
    println!(
        "cluster: single {:.1} ms/day; 1w overhead {overhead_pct:+.2}% (budget 5%) -> {}",
        single_s * 1e3 / f64::from(DAYS),
        out.display()
    );
    for &(workers, wall, rows) in &per_workers {
        println!(
            "  {workers} worker(s): {:.1} ms wall, {:.0} rows/s",
            wall * 1e3,
            rows as f64 / wall
        );
    }

    // The same sweeps through criterion, for the standard report.
    let mut group = c.benchmark_group("cluster");
    group.sample_size(10);
    group.bench_function("single_process", |b| {
        b.iter(|| black_box(run_single(usize::MAX - 1)))
    });
    for workers in [1usize, 2, 4] {
        group.bench_function(format!("loopback_{workers}w"), |b| {
            b.iter(|| black_box(run_cluster(workers, usize::MAX - 1)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
