//! The scale ladder: end-to-end sweep throughput and peak memory at
//! 1/1000 and 1/100 of the real population (1/10 behind an env gate).
//!
//! Each rung runs the full archived pipeline — streaming world
//! generation in bounded blocks, a sharded on-disk archive, and the
//! parallel per-shard zero-copy scan — and records
//!
//! * `measure_rows_per_s` — data rows appended per wall second by the
//!   archived sweep (world gen + encode + commit),
//! * `scan_rows_per_s` — rows per wall second of a cold
//!   `Scanner::run_store` pass over the sharded archive,
//! * `peak_rss_mib` — `VmHWM` from `/proc/self/status` after the rung,
//!   the streaming memory contract's observable (bounded blocks mean
//!   RSS grows far slower than population), and
//! * `sharded_matches_single` — at the smallest rung only, whether the
//!   sharded scan output equals a single-file scan of the same world
//!   (shard count must be invisible in every series).
//!
//! The vendored criterion stand-in has no JSON reporter, so the bench
//! writes `BENCH_scale.json` at the workspace root itself. Set
//! `DPS_BENCH_TENTH=1` to add the 1/10 rung (minutes, not seconds).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dps_core::{CompiledRefs, ProviderRefs, Scanner};
use dps_ecosystem::{ScenarioParams, World};
use dps_measure::{Study, StudyConfig};
use dps_store::StoreReader;
use std::fmt::Write as _;
use std::time::Instant;

const SEED: u64 = 2016;
const DAYS: u32 = 6;
const CC_START: u32 = 4;
const SHARDS: u32 = 4;

/// Peak resident set size in KiB (`VmHWM`), the high-water mark since
/// process start. Rungs run smallest-first, so each reading is the max
/// over everything up to and including its own run.
fn peak_rss_kib() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

struct Rung {
    label: &'static str,
    scale: f64,
    measure_s: f64,
    rows: u64,
    scan_s: f64,
    peak_rss_kib: u64,
}

/// Runs one ladder rung: archived sharded sweep, then a cold scan.
fn run_rung(label: &'static str, scale: f64, dir: &std::path::Path) -> Rung {
    std::fs::remove_dir_all(dir).ok();
    std::fs::create_dir_all(dir).expect("bench dir");
    let path = dir.join("archive.dps");
    let mut world = World::imc2016(ScenarioParams {
        seed: SEED,
        scale,
        gtld_days: DAYS,
        cc_start_day: CC_START,
    });
    let start = Instant::now();
    Study::new(StudyConfig {
        days: DAYS,
        cc_start_day: CC_START,
        stride: 1,
    })
    .with_shards(SHARDS)
    .run_archived(&mut world, &path)
    .expect("archived study");
    let measure_s = start.elapsed().as_secs_f64();

    let reader = StoreReader::open_auto(&path).expect("open sharded archive");
    let rows: u64 = reader
        .catalog()
        .pages
        .values()
        .filter(|p| p.source < 5) // data sources only, not quality/telemetry
        .map(|p| p.rows)
        .sum();
    let refs = CompiledRefs::compile(&ProviderRefs::paper_table2(), reader.dict());
    let start = Instant::now();
    let out = Scanner::new(&refs)
        .run_store(&reader)
        .expect("sharded scan");
    let scan_s = start.elapsed().as_secs_f64();
    black_box(out.series.days.len());

    Rung {
        label,
        scale,
        measure_s,
        rows,
        scan_s,
        peak_rss_kib: peak_rss_kib(),
    }
}

/// Cross-checks the sharded scan against a single-file scan of the same
/// world at the smallest rung. Cheap, and catches any shard-visible
/// drift in the series a release build might introduce.
fn sharded_matches_single(dir: &std::path::Path) -> bool {
    let single = dir.join("single.dps");
    let sharded = dir.join("archive.dps");
    let mut world = World::imc2016(ScenarioParams {
        seed: SEED,
        scale: 1.0,
        gtld_days: DAYS,
        cc_start_day: CC_START,
    });
    Study::new(StudyConfig {
        days: DAYS,
        cc_start_day: CC_START,
        stride: 1,
    })
    .run_archived(&mut world, &single)
    .expect("single-file study");
    let a = StoreReader::open_auto(&single).expect("open single");
    let b = StoreReader::open_auto(&sharded).expect("open sharded");
    let refs = CompiledRefs::compile(&ProviderRefs::paper_table2(), a.dict());
    let scanner = Scanner::new(&refs);
    let sa = scanner.run_store(&a).expect("single scan").series;
    let sb = scanner.run_store(&b).expect("sharded scan").series;
    sa.days == sb.days
        && sa.zone_sizes == sb.zone_sizes
        && sa.provider_any == sb.provider_any
        && sa.provider_asn == sb.provider_asn
        && sa.provider_cname == sb.provider_cname
        && sa.provider_ns == sb.provider_ns
        && sa.tld_any == sb.tld_any
        && sa.source_any == sb.source_any
}

fn bench(c: &mut Criterion) {
    let base = std::env::temp_dir().join(format!("dps-bench-scale-{}", std::process::id()));
    let mut rungs: Vec<(&'static str, f64)> = vec![("1/1000", 1.0), ("1/100", 10.0)];
    if std::env::var("DPS_BENCH_TENTH").is_ok_and(|v| v == "1") {
        rungs.push(("1/10", 100.0));
    }
    let mut results = Vec::new();
    for (label, scale) in rungs {
        let dir = base.join(label.replace('/', "_"));
        let rung = run_rung(label, scale, &dir);
        println!(
            "scale {} ({}x): {} rows, measure {:.2}s ({:.0} rows/s), \
             scan {:.3}s ({:.0} rows/s), peak RSS {} MiB",
            rung.label,
            rung.scale,
            rung.rows,
            rung.measure_s,
            rung.rows as f64 / rung.measure_s.max(f64::EPSILON),
            rung.scan_s,
            rung.rows as f64 / rung.scan_s.max(f64::EPSILON),
            rung.peak_rss_kib / 1024,
        );
        results.push(rung);
    }
    let identity = sharded_matches_single(&base.join("1_1000"));
    println!("sharded scan matches single-file at 1/1000: {identity}");

    let mut rungs_json = String::new();
    for (i, r) in results.iter().enumerate() {
        let sep = if i + 1 < results.len() { "," } else { "" };
        let _ = write!(
            rungs_json,
            "\n    \"{}\": {{ \"scale\": {}, \"shards\": {SHARDS}, \"days\": {DAYS}, \
             \"rows\": {}, \"measure_s\": {:.3}, \"measure_rows_per_s\": {:.0}, \
             \"scan_s\": {:.4}, \"scan_rows_per_s\": {:.0}, \"peak_rss_mib\": {} }}{sep}",
            r.label,
            r.scale,
            r.rows,
            r.measure_s,
            r.rows as f64 / r.measure_s.max(f64::EPSILON),
            r.scan_s,
            r.rows as f64 / r.scan_s.max(f64::EPSILON),
            r.peak_rss_kib / 1024,
        );
    }
    let json = format!(
        "{{\n  \"scenario\": {{ \"seed\": {SEED}, \"days\": {DAYS}, \"cc_start\": {CC_START}, \
         \"shards\": {SHARDS} }},\n  \"sharded_matches_single_at_1_1000\": {identity},\n  \
         \"rungs\": {{{rungs_json}\n  }}\n}}\n"
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_scale.json");
    std::fs::write(&out, &json).expect("write BENCH_scale.json");
    println!("wrote {}", out.display());
    std::fs::remove_dir_all(&base).ok();

    // The smallest rung through criterion, for the standard report.
    let dir = base.join("criterion");
    let mut group = c.benchmark_group("scale");
    group.sample_size(10);
    group.bench_function("sweep_1_1000_sharded", |bch| {
        bch.iter(|| black_box(run_rung("1/1000", 1.0, &dir).measure_s))
    });
    group.finish();
    std::fs::remove_dir_all(&base).ok();
}

criterion_group!(benches, bench);
criterion_main!(benches);
