//! Telemetry instrumentation overhead: detached instruments vs a live
//! registry on the two hottest instrumented paths — warm archive scans
//! (`dps-store`) and warm recursor sweeps (`dps-recursor`) — plus the
//! page-cache hit-ratio accounting the counters exist to expose.
//!
//! The vendored criterion stand-in has no JSON reporter, so this bench
//! writes `BENCH_telemetry.json` at the workspace root itself; the
//! overhead numbers recorded in EXPERIMENTS.md come from that file.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dps_dns::{Name, RrType};
use dps_ecosystem::{ScenarioParams, Tld, World};
use dps_measure::{Study, StudyConfig};
use dps_netsim::{Day, Network};
use dps_recursor::{Recursor, RecursorConfig, SweepScheduler};
use dps_store::{Archive, ScanQuery};
use dps_telemetry::Registry;
use std::time::Instant;

fn median(mut times: Vec<f64>) -> f64 {
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[times.len() / 2]
}

/// Mean of the middle half of `times` — drops timer-interrupt and
/// thread-spawn outliers on both tails.
fn iq_mean(mut times: Vec<f64>) -> f64 {
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let q = times.len() / 4;
    let mid = &times[q..times.len() - q];
    mid.iter().sum::<f64>() / mid.len() as f64
}

/// Interleaved A/B timing: alternating samples of `iters` calls each,
/// swapping which side runs first every sample, so frequency scaling,
/// cache warmth and scheduler noise bias neither side. Returns
/// `(median a ns/call, median b ns/call, overhead %)` where the overhead
/// is the interquartile mean of the per-pair b/a ratios — slow-machine
/// moments hit both halves of a pair, so the ratio cancels noise the raw
/// medians cannot.
fn compare<A: FnMut(), B: FnMut()>(
    samples: usize,
    iters: usize,
    mut a: A,
    mut b: B,
) -> (f64, f64, f64) {
    a();
    b();
    let time = |n: usize, f: &mut dyn FnMut()| {
        let start = Instant::now();
        for _ in 0..n {
            f();
        }
        start.elapsed().as_nanos() as f64 / n as f64
    };
    let mut ta = Vec::with_capacity(samples);
    let mut tb = Vec::with_capacity(samples);
    let mut ratios = Vec::with_capacity(samples);
    for sample in 0..samples {
        let (a_ns, b_ns) = if sample % 2 == 0 {
            let a_ns = time(iters, &mut a);
            (a_ns, time(iters, &mut b))
        } else {
            let b_ns = time(iters, &mut b);
            (time(iters, &mut a), b_ns)
        };
        ta.push(a_ns);
        tb.push(b_ns);
        ratios.push(b_ns / a_ns);
    }
    (median(ta), median(tb), (iq_mean(ratios) - 1.0) * 100.0)
}

fn jobs(world: &World) -> Vec<(Name, RrType)> {
    let mut jobs = Vec::new();
    for entry in world.zone_entries(Tld::Com).iter().copied().take(60) {
        let apex = world.entry_name(entry);
        jobs.push((apex.clone(), RrType::A));
        jobs.push((apex.prepend("www").unwrap(), RrType::A));
        jobs.push((apex, RrType::Ns));
    }
    jobs
}

fn bench(c: &mut Criterion) {
    // --- store: warm full scans, detached vs instrumented -------------
    let days = 10u32;
    let mut world = World::imc2016(ScenarioParams {
        seed: 2,
        scale: 0.02,
        gtld_days: days,
        cc_start_day: days,
    });
    let path = std::env::temp_dir().join(format!("dps-bench-telemetry-{}.dps", std::process::id()));
    std::fs::remove_file(&path).ok();
    Study::new(StudyConfig {
        days,
        cc_start_day: days,
        stride: 1,
    })
    .run_archived(&mut world, &path)
    .expect("archived study");

    let detached = Archive::open(&path).expect("open archive");
    let registry = Registry::new();
    let instrumented =
        Archive::open_with_telemetry(&path, 256 << 20, &registry).expect("open archive");
    detached.par_scan(&ScanQuery::all()).expect("warm detached");
    instrumented
        .par_scan(&ScanQuery::all())
        .expect("warm instrumented");

    const SAMPLES: usize = 40;
    const ITERS: usize = 20;
    let (store_detached_ns, store_instrumented_ns, store_overhead) = compare(
        SAMPLES,
        ITERS,
        || {
            black_box(detached.par_scan(&ScanQuery::all()).expect("scan").len());
        },
        || {
            black_box(
                instrumented
                    .par_scan(&ScanQuery::all())
                    .expect("scan")
                    .len(),
            );
        },
    );

    let snap = registry.snapshot();
    let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    let (hits, misses) = (counter("store.cache.hits"), counter("store.cache.misses"));
    let hit_ratio = hits as f64 / (hits + misses).max(1) as f64;

    // --- recursor: warm sweeps, detached vs instrumented --------------
    let world = World::imc2016(ScenarioParams::tiny(17));
    let src: std::net::IpAddr = "172.16.9.1".parse().unwrap();
    let jobs = jobs(&world);

    let net = Network::new(5);
    let catalog = world.materialize(&net);
    let plain = SweepScheduler::new(
        Recursor::new(catalog.root_hints(), RecursorConfig::default()),
        4,
    );
    let recursor_registry = Registry::new();
    let metered = SweepScheduler::new(
        Recursor::with_telemetry(
            catalog.root_hints(),
            RecursorConfig::default(),
            &recursor_registry,
        ),
        4,
    );
    plain.run_sweep(&net, src, Day(0), &jobs);
    metered.run_sweep(&net, src, Day(0), &jobs);

    let (recursor_detached_ns, recursor_instrumented_ns, recursor_overhead) = compare(
        SAMPLES,
        ITERS,
        || {
            black_box(plain.run_sweep(&net, src, Day(0), &jobs).packets_sent);
        },
        || {
            black_box(metered.run_sweep(&net, src, Day(0), &jobs).packets_sent);
        },
    );

    let rsnap = recursor_registry.snapshot();
    let rcounter = |name: &str| rsnap.counters.get(name).copied().unwrap_or(0);
    let (ahits, amisses) = (
        rcounter("recursor.answer.hits"),
        rcounter("recursor.answer.misses"),
    );
    let answer_ratio = ahits as f64 / (ahits + amisses).max(1) as f64;

    let json = format!(
        "{{\n  \"store\": {{\n    \"scan_warm_detached_ns\": {store_detached_ns:.0},\n    \
         \"scan_warm_instrumented_ns\": {store_instrumented_ns:.0},\n    \
         \"overhead_pct\": {store_overhead:.2},\n    \"cache\": {{\n      \
         \"hits\": {hits},\n      \"misses\": {misses},\n      \
         \"hit_ratio\": {hit_ratio:.4},\n      \"pages_decoded\": {pages},\n      \
         \"bytes_read\": {bytes}\n    }}\n  }},\n  \"recursor\": {{\n    \
         \"sweep_warm_detached_ns\": {recursor_detached_ns:.0},\n    \
         \"sweep_warm_instrumented_ns\": {recursor_instrumented_ns:.0},\n    \
         \"overhead_pct\": {recursor_overhead:.2},\n    \"cache\": {{\n      \
         \"answer_hits\": {ahits},\n      \"answer_misses\": {amisses},\n      \
         \"hit_ratio\": {answer_ratio:.4}\n    }}\n  }}\n}}\n",
        pages = counter("store.pages.decoded"),
        bytes = counter("store.bytes.read"),
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_telemetry.json");
    std::fs::write(&out, &json).expect("write BENCH_telemetry.json");
    println!(
        "telemetry overhead: store {store_overhead:+.2}% (cache hit ratio {hit_ratio:.3}), \
         recursor {recursor_overhead:+.2}% (answer hit ratio {answer_ratio:.3}) \
         -> {}",
        out.display()
    );

    // The same four variants through criterion, for the standard report.
    let mut group = c.benchmark_group("telemetry");
    group.sample_size(10);
    group.bench_function("store_scan_warm_detached", |b| {
        b.iter(|| black_box(detached.par_scan(&ScanQuery::all()).expect("scan").len()))
    });
    group.bench_function("store_scan_warm_instrumented", |b| {
        b.iter(|| {
            black_box(
                instrumented
                    .par_scan(&ScanQuery::all())
                    .expect("scan")
                    .len(),
            )
        })
    });
    group.bench_function("recursor_sweep_warm_detached", |b| {
        b.iter(|| black_box(plain.run_sweep(&net, src, Day(0), &jobs).packets_sent))
    });
    group.bench_function("recursor_sweep_warm_instrumented", |b| {
        b.iter(|| black_box(metered.run_sweep(&net, src, Day(0), &jobs).packets_sent))
    });
    group.finish();
    std::fs::remove_file(&path).ok();
}

criterion_group!(benches, bench);
criterion_main!(benches);
