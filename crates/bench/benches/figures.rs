//! End-to-end figure regeneration at reduced scale: one bench per paper
//! artifact, exercising exactly the code the `experiments` binary runs.

use criterion::{criterion_group, criterion_main, Criterion};
use dps_bench::experiments::{run, Context, ExperimentConfig};

fn bench(c: &mut Criterion) {
    // One shared context (the expensive part), sized for bench cadence.
    let config = ExperimentConfig {
        scale: 0.02,
        days: 60,
        cc_start: 40,
        out_dir: std::path::PathBuf::from("target/experiments-bench"),
        ..ExperimentConfig::default()
    };
    let ctx = Context::build(config);

    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    for id in [
        "table1", "table2", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "ablation",
    ] {
        group.bench_function(id, |b| b.iter(|| run(&ctx, id).unwrap().len()));
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
