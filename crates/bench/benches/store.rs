//! Archive scan throughput: cold vs page-cache-warm full scans, and
//! projected (2 of 18 columns) vs full-table decoding.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dps_ecosystem::{ScenarioParams, World};
use dps_measure::{Study, StudyConfig};
use dps_store::{Archive, ScanQuery};

fn bench(c: &mut Criterion) {
    let days = 30u32;
    let params = ScenarioParams {
        seed: 2,
        scale: 0.05,
        gtld_days: days,
        cc_start_day: days,
    };
    let mut world = World::imc2016(params);
    let path = std::env::temp_dir().join(format!("dps-bench-store-{}.dps", std::process::id()));
    std::fs::remove_file(&path).ok();
    Study::new(StudyConfig {
        days,
        cc_start_day: days,
        stride: 1,
    })
    .run_archived(&mut world, &path)
    .expect("archived study");

    let archive = Archive::open(&path).expect("open archive");
    let raw_bytes: u64 = (0..archive.n_sources())
        .filter_map(|s| archive.stats(s as u8))
        .map(|st| st.raw_bytes)
        .sum();

    let mut group = c.benchmark_group("store");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(raw_bytes));

    // Cold: every iteration starts with an empty page cache, so every
    // page is read from disk, checksummed and decoded again.
    group.bench_function("scan_cold", |b| {
        b.iter(|| {
            archive.clear_cache();
            black_box(archive.par_scan(&ScanQuery::all()).unwrap().len())
        })
    });

    // Warm: the cache holds every decoded page after the first pass.
    archive.clear_cache();
    archive.par_scan(&ScanQuery::all()).unwrap();
    group.bench_function("scan_warm", |b| {
        b.iter(|| black_box(archive.par_scan(&ScanQuery::all()).unwrap().len()))
    });

    // Projection: decode only (entry, asn1) instead of all 18 columns.
    group.bench_function("scan_projected_cold", |b| {
        b.iter(|| {
            archive.clear_cache();
            black_box(
                archive
                    .par_scan(&ScanQuery::all().columns(&["entry", "asn1"]))
                    .unwrap()
                    .len(),
            )
        })
    });

    group.finish();
    std::fs::remove_file(&path).ok();
}

criterion_group!(benches, bench);
criterion_main!(benches);
