//! Incremental streaming analysis vs full rescan.
//!
//! The streaming engine's pitch is that analysis state is maintained at
//! day-commit time, so "what does the study say now?" costs one day's
//! delta instead of a rescan of every archived page. This bench puts a
//! number on that: for the same fixed-seed archive it times
//!
//! * `per_day_update` — decoding and applying ONE day's checkpoint page
//!   into an engine already holding every earlier day (the marginal
//!   cost a live sweep pays per committed day), against
//! * `full_rescan` — the dps-core `Scanner::run_archive` pass over all
//!   pages (the cost of answering the same question without streaming),
//!
//! at 1/1000 and 1/100 of the baseline population scale. The vendored
//! criterion stand-in has no JSON reporter, so the bench writes
//! `BENCH_stream.json` at the workspace root itself.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dps_columnar::Table;
use dps_core::{CompiledRefs, ProviderRefs, Scanner};
use dps_ecosystem::{ScenarioParams, World};
use dps_measure::{DayObserver, Study, StudyConfig, ANALYSIS_SOURCE};
use dps_store::Archive;
use dps_stream::StreamEngine;
use std::fmt::Write as _;
use std::time::Instant;

const SEED: u64 = 2016;
const DAYS: u32 = 16;
const CC_START: u32 = 10;
const SAMPLES: usize = 15;

/// One benchmark scenario: a streamed fixed-seed archive plus the
/// replayed engine state just before its last committed day.
struct Built {
    archive: Archive,
    engine_before_last: StreamEngine,
    last_day: u32,
    last_table: std::sync::Arc<Table>,
}

fn build(scale: f64) -> Built {
    let path = std::env::temp_dir().join(format!(
        "dps-bench-stream-{scale}-{}.dps",
        std::process::id()
    ));
    std::fs::remove_file(&path).ok();
    let mut world = World::imc2016(ScenarioParams {
        seed: SEED,
        scale,
        gtld_days: DAYS,
        cc_start_day: CC_START,
    });
    let mut engine = StreamEngine::new();
    Study::new(StudyConfig {
        days: DAYS,
        cc_start_day: CC_START,
        stride: 1,
    })
    .run_archived_observed(&mut world, &path, Some(&mut engine))
    .expect("archived study");

    let archive = Archive::open(&path).expect("open archive");
    std::fs::remove_file(&path).ok();
    let mut checkpoints: Vec<(u32, std::sync::Arc<Table>)> = Vec::new();
    for &(day, source) in archive.catalog().pages.keys() {
        if source == ANALYSIS_SOURCE {
            let table = archive
                .table(day, source)
                .expect("checkpoint reads")
                .expect("checkpoint exists");
            checkpoints.push((day, table));
        }
    }
    let (last_day, last_table) = checkpoints.pop().expect("streamed archive has checkpoints");
    let mut engine_before_last = StreamEngine::new();
    for (day, table) in &checkpoints {
        engine_before_last
            .on_resume(*day, table)
            .expect("checkpoint replays");
    }
    Built {
        archive,
        engine_before_last,
        last_day,
        last_table,
    }
}

/// Marginal streaming cost: decode + apply the last day's checkpoint
/// into an engine holding every earlier day. Returns wall seconds.
fn time_per_day_update(b: &Built) -> f64 {
    let mut engine = b.engine_before_last.clone();
    let start = Instant::now();
    engine
        .on_resume(b.last_day, &b.last_table)
        .expect("checkpoint applies");
    let secs = start.elapsed().as_secs_f64();
    black_box(engine.days().len());
    secs
}

/// The no-streaming alternative: a full dps-core scan of every archived
/// page. Returns wall seconds.
fn time_full_rescan(b: &Built, refs: &CompiledRefs) -> f64 {
    let start = Instant::now();
    let out = Scanner::new(refs)
        .run_archive(&b.archive)
        .expect("archive rescan");
    let secs = start.elapsed().as_secs_f64();
    black_box(out.series.days.len());
    secs
}

/// Noise filter: the minimum over samples (shared host, additive noise).
fn minimum(xs: Vec<f64>) -> f64 {
    xs.into_iter().fold(f64::INFINITY, f64::min)
}

fn bench(c: &mut Criterion) {
    let mut scales_json = String::new();
    let mut built_small = None;
    for (i, scale) in [0.001f64, 0.01].into_iter().enumerate() {
        let b = build(scale);
        let refs = CompiledRefs::compile(&ProviderRefs::paper_table2(), b.archive.dict());
        let mut update_walls = Vec::new();
        let mut rescan_walls = Vec::new();
        for _ in 0..SAMPLES {
            update_walls.push(time_per_day_update(&b));
            rescan_walls.push(time_full_rescan(&b, &refs));
        }
        let update_s = minimum(update_walls);
        let rescan_s = minimum(rescan_walls);
        let speedup = rescan_s / update_s.max(f64::EPSILON);
        let sep = if i == 0 { "," } else { "" };
        let _ = write!(
            scales_json,
            "\n    \"{scale}\": {{ \"days\": {DAYS}, \"per_day_update_ms\": {:.3}, \
             \"full_rescan_ms\": {:.3}, \"rescan_over_update\": {:.1} }}{sep}",
            update_s * 1e3,
            rescan_s * 1e3,
            speedup,
        );
        println!(
            "stream scale {scale}: per-day update {:.3} ms, full rescan {:.3} ms ({speedup:.1}x)",
            update_s * 1e3,
            rescan_s * 1e3,
        );
        if i == 0 {
            built_small = Some(b);
        }
    }
    let json = format!(
        "{{\n  \"scenario\": {{ \"seed\": {SEED}, \"days\": {DAYS}, \"cc_start\": {CC_START} }},\n  \
         \"scales\": {{{scales_json}\n  }}\n}}\n"
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_stream.json");
    std::fs::write(&out, &json).expect("write BENCH_stream.json");
    println!("wrote {}", out.display());

    // The same two operations through criterion, for the standard report.
    let b = built_small.expect("small scenario built");
    let refs = CompiledRefs::compile(&ProviderRefs::paper_table2(), b.archive.dict());
    let mut group = c.benchmark_group("stream");
    group.sample_size(10);
    group.bench_function("per_day_update", |bch| {
        bch.iter(|| black_box(time_per_day_update(&b)))
    });
    group.bench_function("full_rescan", |bch| {
        bch.iter(|| black_box(time_full_rescan(&b, &refs)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
