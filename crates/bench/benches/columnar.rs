//! Columnar encode/decode throughput on measurement-shaped columns.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dps_columnar::{decode_u32s, encode_u32s};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn bench(c: &mut Criterion) {
    const N: usize = 100_000;
    let mut rng = SmallRng::seed_from_u64(3);
    let constant = vec![17u32; N];
    let consecutive: Vec<u32> = (0..N as u32).collect();
    let runny: Vec<u32> = (0..N as u32).map(|i| i / 1000).collect();
    let random: Vec<u32> = (0..N).map(|_| rng.gen()).collect();

    let mut group = c.benchmark_group("columnar");
    group.throughput(Throughput::Elements(N as u64));
    for (name, col) in [
        ("constant", &constant),
        ("consecutive", &consecutive),
        ("runny", &runny),
        ("random", &random),
    ] {
        group.bench_function(format!("encode_{name}"), |b| b.iter(|| encode_u32s(col)));
        let enc = encode_u32s(col);
        group.bench_function(format!("decode_{name}"), |b| {
            b.iter(|| decode_u32s(&enc).unwrap().len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
