//! Measurement-pipeline throughput: full daily sweeps (stage I–III) over
//! a world, the cost that dominates full-scale reproduction runs.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dps_ecosystem::{ScenarioParams, Tld, World};
use dps_measure::collector::SldInterner;
use dps_measure::{Study, StudyConfig};

fn bench(c: &mut Criterion) {
    let params = ScenarioParams {
        seed: 1,
        scale: 0.05,
        gtld_days: 30,
        cc_start_day: 30,
    };
    let world = World::imc2016(params);
    let names = world.zone_entries(Tld::Com).len()
        + world.zone_entries(Tld::Net).len()
        + world.zone_entries(Tld::Org).len();

    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.throughput(Throughput::Elements(names as u64));
    group.bench_function("one_day_sweep", |b| {
        b.iter(|| {
            let mut study = Study::new(StudyConfig {
                days: 1,
                cc_start_day: 30,
                stride: 1,
            });
            let mut interner = SldInterner::new();
            study.measure_day(&world, 0, &mut interner);
            study.store().total_stored_bytes()
        })
    });
    group.bench_function("world_build", |b| {
        b.iter(|| World::imc2016(params).domains().len())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
