//! Longest-prefix-match throughput: the per-address cost of the paper's
//! stage III ASN supplementing.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dps_netsim::{Asn, Prefix, Rib};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::net::{IpAddr, Ipv4Addr};

fn bench(c: &mut Criterion) {
    // A routing table shaped like the simulator's: a few hundred prefixes
    // of mixed lengths.
    let mut rng = SmallRng::seed_from_u64(7);
    let mut rib = Rib::new();
    for i in 0..600u32 {
        let len = [8u8, 16, 16, 20, 24, 24][i as usize % 6];
        let addr = Ipv4Addr::from(rng.gen::<u32>());
        rib.announce(Prefix::new(IpAddr::V4(addr), len).unwrap(), Asn(i % 50 + 1));
    }
    let snapshot = rib.snapshot();
    let addrs: Vec<IpAddr> = (0..10_000)
        .map(|_| IpAddr::V4(Ipv4Addr::from(rng.gen::<u32>())))
        .collect();

    let mut group = c.benchmark_group("lpm");
    group.throughput(Throughput::Elements(addrs.len() as u64));
    group.bench_function("pfx2as_lookup_10k", |b| {
        b.iter(|| {
            let mut hits = 0u32;
            for &a in &addrs {
                if snapshot.origins(a).is_some() {
                    hits += 1;
                }
            }
            hits
        })
    });
    group.bench_function("snapshot_rebuild", |b| b.iter(|| rib.snapshot().len()));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
