//! Full-workspace analyzer pass: wall time of `analyze_sources` over every
//! first-party source in the repo — lexing, symbol extraction, call-graph
//! construction, the taint and lock passes, and waiver resolution — plus
//! the corpus and graph sizes that wall time is paid for.
//!
//! The vendored criterion stand-in has no JSON reporter, so this bench
//! writes `BENCH_analyze.json` at the workspace root itself; the numbers
//! recorded in EXPERIMENTS.md come from that file.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dps_analyzer::callgraph::Graph;
use dps_analyzer::engine::read_sources;
use dps_analyzer::symbols::FileSymbols;
use dps_analyzer::{analyze_sources, context, ingress_surface, lexer, symbols, Mode};
use std::path::Path;
use std::time::Instant;

fn median(mut times: Vec<f64>) -> f64 {
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[times.len() / 2]
}

/// Median ns of `samples` timed calls to `f`, after one warm-up call.
fn time<F: FnMut()>(samples: usize, mut f: F) -> f64 {
    f();
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        f();
        times.push(start.elapsed().as_nanos() as f64);
    }
    median(times)
}

fn bench(c: &mut Criterion) {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let files = read_sources(&root).expect("read workspace sources");
    let lines: usize = files.iter().map(|(_, src)| src.lines().count()).sum();

    // Corpus and graph shape: how much the full pass chews through.
    let symfiles: Vec<(String, FileSymbols)> = files
        .iter()
        .map(|(rel, src)| {
            let lexed = lexer::lex(src);
            let ctx = context::scan(&lexed);
            (rel.clone(), symbols::extract(&lexed, &ctx))
        })
        .collect();
    let graph = Graph::build(&symfiles);
    let functions = graph.fns.len();
    let edges_full: usize = graph.edges.iter().map(Vec::len).sum();
    let edges_precise: usize = graph.edges_precise.iter().map(Vec::len).sum();

    let findings = analyze_sources(&files, Mode::Workspace);
    assert!(
        findings.is_empty(),
        "bench expects a clean workspace, got {} findings",
        findings.len()
    );
    let surface = ingress_surface(&files).len();

    const SAMPLES: usize = 15;
    let full_pass_ns = time(SAMPLES, || {
        black_box(analyze_sources(black_box(&files), Mode::Workspace).len());
    });
    let surface_ns = time(SAMPLES, || {
        black_box(ingress_surface(black_box(&files)).len());
    });

    let json = format!(
        "{{\n  \"corpus\": {{\n    \"files\": {files_n},\n    \"lines\": {lines},\n    \
         \"functions\": {functions},\n    \"call_edges_full\": {edges_full},\n    \
         \"call_edges_precise\": {edges_precise},\n    \
         \"ingress_surface_files\": {surface}\n  }},\n  \"analyze\": {{\n    \
         \"full_pass_ns\": {full_pass_ns:.0},\n    \
         \"full_pass_ms\": {full_ms:.2},\n    \
         \"ns_per_line\": {per_line:.1},\n    \
         \"ingress_surface_ns\": {surface_ns:.0},\n    \"findings\": 0\n  }}\n}}\n",
        files_n = files.len(),
        full_ms = full_pass_ns / 1e6,
        per_line = full_pass_ns / lines.max(1) as f64,
    );
    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_analyze.json");
    std::fs::write(&out, &json).expect("write BENCH_analyze.json");
    println!(
        "analyze: {files_n} files / {lines} lines / {functions} fns in {full_ms:.1} ms \
         ({per_line:.0} ns/line), {edges_precise}/{edges_full} precise/full edges -> {}",
        out.display(),
        files_n = files.len(),
        full_ms = full_pass_ns / 1e6,
        per_line = full_pass_ns / lines.max(1) as f64,
    );

    // Keep a criterion-visible sample so `cargo bench` reports the pass.
    c.bench_function("analyze_workspace_full_pass", |b| {
        b.iter(|| analyze_sources(black_box(&files), Mode::Workspace).len())
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
