//! Classification-scan throughput: the §3.3 pass over the archive.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dps_core::{CompiledRefs, ProviderRefs, Scanner};
use dps_ecosystem::{ScenarioParams, World};
use dps_measure::{Study, StudyConfig};

fn bench(c: &mut Criterion) {
    let params = ScenarioParams {
        seed: 2,
        scale: 0.05,
        gtld_days: 30,
        cc_start_day: 30,
    };
    let mut world = World::imc2016(params);
    let store = Study::new(StudyConfig {
        days: 30,
        cc_start_day: 30,
        stride: 1,
    })
    .run(&mut world);
    let refs = CompiledRefs::compile(&ProviderRefs::paper_table2(), &store.dict);
    let rows: u64 = store
        .scan(dps_measure::Source::Com)
        .map(|(_, t)| t.rows() as u64)
        .sum::<u64>()
        * 3;

    let mut group = c.benchmark_group("classify");
    group.sample_size(10);
    group.throughput(Throughput::Elements(rows));
    group.bench_function("scan_30_days", |b| {
        b.iter(|| Scanner::new(&refs).run(&store).timelines.map.len())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
