//! DNS wire-format hot path: encode/decode of a realistic response with
//! CNAME chain and compression.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dps_dns::{Class, Message, Name, Question, RData, Record, RrType};
use std::net::Ipv4Addr;

fn realistic_response() -> Message {
    let q = Message::query(
        0x55AA,
        Question::new("www.d123456.com".parse().unwrap(), RrType::A),
    );
    let mut r = q.answer_template();
    r.header.aa = true;
    r.answers.push(Record::new(
        "www.d123456.com".parse().unwrap(),
        Class::In,
        300,
        RData::Cname("d123456.edgekey.net".parse().unwrap()),
    ));
    r.answers.push(Record::new(
        "d123456.edgekey.net".parse().unwrap(),
        Class::In,
        300,
        RData::Cname("e123456.akamaiedge.net".parse().unwrap()),
    ));
    r.answers.push(Record::new(
        "e123456.akamaiedge.net".parse().unwrap(),
        Class::In,
        60,
        RData::A(Ipv4Addr::new(20, 0, 31, 7)),
    ));
    r.authorities.push(Record::new(
        "akamaiedge.net".parse().unwrap(),
        Class::In,
        3600,
        RData::Ns("ns1.akam.net".parse().unwrap()),
    ));
    r
}

fn bench(c: &mut Criterion) {
    let msg = realistic_response();
    let bytes = msg.to_bytes().unwrap();
    let mut group = c.benchmark_group("dns_wire");
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("encode", |b| b.iter(|| msg.to_bytes().unwrap()));
    group.bench_function("decode", |b| b.iter(|| Message::parse(&bytes).unwrap()));
    group.bench_function("name_parse", |b| {
        b.iter(|| "www.d123456.com".parse::<Name>().unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
