//! Supervision overhead: a supervised wire sweep (telemetry snapshots,
//! per-row cause tracking, dead-letter bookkeeping) versus the plain wire
//! sweep, both over a healthy network. On a fault-free day the supervisor
//! finds nothing to retry, so its overhead budget is <5%.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dps_authdns::{HealthConfig, HealthTracker, Resolver, ResolverConfig};
use dps_ecosystem::{ScenarioParams, Tld, World};
use dps_measure::collector::{SldInterner, WirePath};
use dps_measure::pipeline::{sweep_with_path, sweep_with_path_supervised};
use dps_measure::{SnapshotStore, Source, SupervisorConfig};
use dps_netsim::{Day, Network};
use std::sync::Arc;

fn wire_path(world: &World, net_seed: u64) -> WirePath {
    let net = Network::new(net_seed);
    let catalog = world.materialize(&net);
    let health = Arc::new(HealthTracker::new(HealthConfig::default()));
    let resolver = Resolver::new(&net, "172.16.0.9".parse().unwrap(), 2, catalog.root_hints())
        .with_config(ResolverConfig::resilient())
        .with_health(health);
    WirePath::new(resolver)
}

fn bench(c: &mut Criterion) {
    let params = ScenarioParams {
        seed: 9,
        scale: 0.01,
        gtld_days: 3,
        cc_start_day: 3,
    };
    let mut world = World::imc2016(params);
    world.advance_to(Day(0));
    let names = world.zone_entries(Tld::Com).len();

    let mut group = c.benchmark_group("supervisor");
    group.sample_size(10);
    group.throughput(Throughput::Elements(names as u64));
    group.bench_function("wire_sweep_plain", |b| {
        b.iter(|| {
            let mut path = wire_path(&world, 17);
            let mut store = SnapshotStore::new();
            let mut interner = SldInterner::new();
            sweep_with_path(&world, &mut path, Source::Com, 0, &mut store, &mut interner);
            store.total_stored_bytes()
        })
    });
    group.bench_function("wire_sweep_supervised", |b| {
        b.iter(|| {
            let mut path = wire_path(&world, 17);
            let mut store = SnapshotStore::new();
            let mut interner = SldInterner::new();
            let q = sweep_with_path_supervised(
                &world,
                &mut path,
                Source::Com,
                0,
                &mut store,
                &mut interner,
                &SupervisorConfig::default(),
            );
            assert_eq!(q.failed, 0);
            store.total_stored_bytes()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
