//! Regenerating every table and figure of the paper.
//!
//! [`Context::build`] runs the whole pipeline once (world → study →
//! classification scan); each `exp_*` function then derives one artifact,
//! returning a printable summary and writing machine-readable CSV into the
//! output directory.

use dps_core::discovery::{discover, seeds_from_registry, DiscoveryConfig};
use dps_core::growth::{self, GrowthConfig};
use dps_core::references::{CompiledRefs, ProviderRefs};
use dps_core::scan::{ScanOutput, Scanner};
use dps_core::{attribution, combinations, flux, mechanism, peaks, report};
use dps_ecosystem::{ScenarioParams, World};
use dps_measure::{SnapshotStore, Source, Study, StudyConfig};
use std::fmt::Write as _;
use std::path::PathBuf;

/// The nine provider marketing names used to seed discovery.
pub const PROVIDER_KEYWORDS: [&str; 9] = [
    "Akamai",
    "CenturyLink",
    "CloudFlare",
    "DOSarrest",
    "F5",
    "Incapsula",
    "Level 3",
    "Neustar",
    "VeriSign",
];

/// Paper values for the Fig. 8 per-provider 80th-percentile markers.
pub const PAPER_P80: [(usize, u32); 9] = [
    (0, 10), // Akamai
    (1, 6),  // CenturyLink
    (2, 31), // CloudFlare
    (3, 27), // DOSarrest
    (4, 79), // F5
    (5, 11), // Incapsula
    (6, 4),  // Level 3
    (7, 4),  // Neustar
    (8, 16), // Verisign
];

/// Experiment-run configuration.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// World seed.
    pub seed: u64,
    /// Population scale (1.0 = 1/1000 of the real namespace).
    pub scale: f64,
    /// Days of gTLD measurement.
    pub days: u32,
    /// First day of .nl / Alexa measurement.
    pub cc_start: u32,
    /// Measure every n-th day.
    pub stride: u32,
    /// Where CSV artifacts go.
    pub out_dir: PathBuf,
    /// Optional archive cache: resume/load the single-file `dps-store`
    /// archive under this directory (a killed sweep restarts from its last
    /// committed day), or fall back to a legacy loose-file archive if one
    /// is already there. Without it the study runs purely in memory.
    pub store_dir: Option<PathBuf>,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            seed: 2016,
            scale: 1.0,
            days: 550,
            cc_start: 366,
            stride: 1,
            out_dir: PathBuf::from("target/experiments"),
            store_dir: None,
        }
    }
}

impl ExperimentConfig {
    /// A quick configuration for smoke runs and benches.
    pub fn quick() -> Self {
        Self {
            scale: 0.05,
            days: 120,
            cc_start: 80,
            out_dir: PathBuf::from("target/experiments-quick"),
            ..Self::default()
        }
    }
}

/// Everything the experiments share: one study, one scan.
pub struct Context {
    /// The configuration used.
    pub config: ExperimentConfig,
    /// The world, advanced to the final day.
    pub world: World,
    /// The measurement archive.
    pub store: SnapshotStore,
    /// Compiled paper references.
    pub refs: CompiledRefs,
    /// Series + timelines.
    pub scan: ScanOutput,
}

impl Context {
    /// Runs world + study + scan. This is the expensive step (minutes at
    /// full scale); every experiment below is cheap afterwards.
    pub fn build(config: ExperimentConfig) -> Self {
        let t0 = std::time::Instant::now();
        let params = ScenarioParams {
            seed: config.seed,
            scale: config.scale,
            gtld_days: config.days,
            cc_start_day: config.cc_start,
        };
        let mut world = World::imc2016(params);
        eprintln!(
            "[{:>7.1?}] world built: {} domains",
            t0.elapsed(),
            world.domains().len()
        );
        let study = Study::new(StudyConfig {
            days: config.days,
            cc_start_day: config.cc_start,
            stride: config.stride,
        });
        let store = match &config.store_dir {
            // A legacy loose-file archive (no single-file archive beside
            // it): read-only fallback with estimated data-point counts.
            Some(dir)
                if dir.join("index.tsv").exists()
                    && !dir.join(dps_measure::ARCHIVE_FILE).exists() =>
            {
                let store = SnapshotStore::load_dir(dir).expect("load legacy store");
                eprintln!(
                    "[{:>7.1?}] loaded legacy loose-file archive: {} (note: data-point counts are estimates)",
                    t0.elapsed(),
                    report::human_bytes(store.total_stored_bytes())
                );
                store
            }
            // The single-file archive path: a complete archive just loads;
            // a partial one (killed sweep) resumes from its last committed
            // day; a missing one is measured and written as we go.
            Some(dir) => {
                std::fs::create_dir_all(dir).expect("create archive dir");
                let path = dir.join(dps_measure::ARCHIVE_FILE);
                let store = study
                    .run_archived(&mut world, &path)
                    .expect("archived study");
                eprintln!(
                    "[{:>7.1?}] study archived: {} at {} (exact data-point counts)",
                    t0.elapsed(),
                    report::human_bytes(store.total_stored_bytes()),
                    path.display()
                );
                store
            }
            None => {
                let store = study.run(&mut world);
                eprintln!(
                    "[{:>7.1?}] study complete: {} stored",
                    t0.elapsed(),
                    report::human_bytes(store.total_stored_bytes())
                );
                store
            }
        };
        let refs = CompiledRefs::compile(&ProviderRefs::paper_table2(), &store.dict);
        let scan = Scanner::new(&refs).run(&store);
        eprintln!(
            "[{:>7.1?}] scan complete: {} referencing (domain, provider) pairs",
            t0.elapsed(),
            scan.timelines.map.len()
        );
        std::fs::create_dir_all(&config.out_dir).expect("create out dir");
        Self {
            config,
            world,
            store,
            refs,
            scan,
        }
    }

    fn write(&self, name: &str, content: &str) {
        let path = self.config.out_dir.join(name);
        std::fs::write(&path, content).expect("write artifact");
        eprintln!("  wrote {}", path.display());
    }

    /// Growth config adjusted for the measurement stride.
    fn growth_config(&self) -> GrowthConfig {
        let stride = self.config.stride.max(1) as usize;
        GrowthConfig {
            median_window: (28 / stride).max(3),
            max_excursion_days: (240 / stride).max(10),
            ..GrowthConfig::default()
        }
    }
}

/// Table 1: data-set statistics.
pub fn exp_table1(ctx: &Context) -> String {
    let text = report::table1(&ctx.store);
    ctx.write("table1.txt", &text);
    let mut out = String::from("== Table 1: data set ==\n");
    out.push_str(&text);
    let _ = writeln!(
        out,
        "\npaper (at 1000x our scale): .com 161.2M SLDs / 534.5G DPs, total 203.3M SLDs / 655.7G DPs / 23.3TiB"
    );
    out
}

/// Table 2: reference discovery vs ground truth.
pub fn exp_table2(ctx: &Context) -> String {
    let seeds = seeds_from_registry(ctx.world.as_registry(), &PROVIDER_KEYWORDS);
    let dconfig = DiscoveryConfig {
        day_stride: (14 / ctx.config.stride.max(1) as usize).max(1),
        ..DiscoveryConfig::default()
    };
    let found = discover(&ctx.store, &seeds, &dconfig);
    let truth = ProviderRefs::paper_table2();
    let rendered = report::table2(&found);
    let (diff, exact) = report::table2_comparison(&found, &truth);
    ctx.write("table2.txt", &format!("{rendered}\n{diff}"));
    format!(
        "== Table 2: discovered references ==\n{rendered}\n{diff}\nexact provider matches: {exact}/9\n"
    )
}

/// Figure 2: DPS use per gTLD over time.
pub fn exp_fig2(ctx: &Context) -> String {
    let csv = report::fig2_csv(&ctx.scan.series);
    ctx.write("fig2.csv", &csv);
    let series = &ctx.scan.series;
    let combined = series.combined_any();
    let (max_i, max_v) = combined
        .iter()
        .enumerate()
        .max_by_key(|(_, &v)| v)
        .map(|(i, &v)| (i, v))
        .unwrap();
    let mut out = String::from("== Fig. 2: DPS use and zone breakdown ==\n");
    let _ = writeln!(
        out,
        "combined series: start {}, end {}, peak {} on {}",
        combined[0],
        combined.last().unwrap(),
        max_v,
        dps_netsim::Day(series.days[max_i])
    );
    let _ = writeln!(
        out,
        "paper shape: many anomalous peaks/troughs, e.g. ~1.1M names on 2015-03-05 — ours peaks near that date at scale"
    );
    let tlds: Vec<&[u32]> = (0..3).map(|s| series.tld_any[s].as_slice()).collect();
    let t = attribution::transversality(&tlds, 8.0, 30);
    let _ = writeln!(
        out,
        "transversality: {:.0}% of .com anomaly days replicate in .net/.org (paper: anomalies are transversal to the zones)",
        t * 100.0
    );
    out
}

/// Figure 3: per-provider breakdown with AS/CNAME/NS lines.
pub fn exp_fig3(ctx: &Context) -> String {
    let csv = report::fig3_csv(&ctx.scan.series, &ctx.refs.names);
    ctx.write("fig3.csv", &csv);
    let s = &ctx.scan.series;
    let last = s.days.len() - 1;
    let mut out =
        String::from("== Fig. 3: per-provider use and protection methods (last day) ==\n");
    let _ = writeln!(
        out,
        "{:<14} {:>8} {:>8} {:>8} {:>8}",
        "provider", "any", "AS", "CNAME", "NS"
    );
    for (p, name) in ctx.refs.names.iter().enumerate() {
        let _ = writeln!(
            out,
            "{:<14} {:>8} {:>8} {:>8} {:>8}",
            name,
            s.provider_any[p][last],
            s.provider_asn[p][last],
            s.provider_cname[p][last],
            s.provider_ns[p][last]
        );
    }
    // Headline observations from §4.3.
    let cf = 2;
    let ns_share = f64::from(s.provider_ns[cf][last]) / f64::from(s.provider_any[cf][last].max(1));
    let _ = writeln!(
        out,
        "\nCloudFlare delegation share: {:.0}% (paper: ~75%)",
        ns_share * 100.0
    );
    let inc = 5;
    let inc_ns_share =
        f64::from(s.provider_ns[inc][last]) / f64::from(s.provider_any[inc][last].max(1));
    let _ = writeln!(
        out,
        "Incapsula delegation share: {:.2}% (paper: ~0.02%)",
        inc_ns_share * 100.0
    );
    out
}

/// Figure 4: namespace vs DPS-use distribution over the gTLDs.
pub fn exp_fig4(ctx: &Context) -> String {
    let ((ns, dps), text) = report::fig4(&ctx.scan.series);
    ctx.write(
        "fig4.csv",
        &format!(
            "distribution,com,net,org\nnamespace,{:.2},{:.2},{:.2}\ndps_use,{:.2},{:.2},{:.2}\n",
            ns[0], ns[1], ns[2], dps[0], dps[1], dps[2]
        ),
    );
    format!(
        "== Fig. 4: distribution over the namespace ==\n{text}paper: namespace 82.47/10.33/7.21, DPS use 85.71/8.22/6.07\n"
    )
}

/// Figure 5: growth of DPS use vs overall expansion (gTLDs).
pub fn exp_fig5(ctx: &Context) -> String {
    let series = &ctx.scan.series;
    let gconf = ctx.growth_config();
    let combined = series.combined_any();
    let g_dps = growth::analyze(&series.days, &combined, &gconf);
    let g_zone = growth::analyze(&series.days, &series.combined_zone_size(), &gconf);
    let csv = report::growth_csv(&[("dps_adoption", &g_dps), ("overall_expansion", &g_zone)]);
    ctx.write("fig5.csv", &csv);
    format!(
        "== Fig. 5: growth in ~50% of the DNS ==\n\
         DPS adoption growth:   {:.3}x   (paper: 1.24x)\n\
         overall expansion:     {:.3}x   (paper: 1.09x)\n\
         large anomalies cleaned: {}\n",
        g_dps.factor,
        g_zone.factor,
        g_dps.shifts.len()
    )
}

/// Figure 6: growth for .nl and the Alexa list over their 6-month window.
pub fn exp_fig6(ctx: &Context) -> String {
    let series = &ctx.scan.series;
    // Restrict to the cc window: days where .nl was actually measured.
    let idx: Vec<usize> = (0..series.days.len())
        .filter(|&i| series.zone_sizes[Source::Nl.index()][i] > 0)
        .collect();
    if idx.is_empty() {
        return "== Fig. 6: skipped (no .nl window in this run) ==\n".into();
    }
    let days: Vec<u32> = idx.iter().map(|&i| series.days[i]).collect();
    let pick = |v: &[u32]| -> Vec<u32> { idx.iter().map(|&i| v[i]).collect() };
    let gconf = ctx.growth_config();
    let g_nl = growth::analyze(&days, &pick(&series.source_any[Source::Nl.index()]), &gconf);
    let g_nl_zone = growth::analyze(&days, &pick(&series.zone_sizes[Source::Nl.index()]), &gconf);
    let g_alexa = growth::analyze(
        &days,
        &pick(&series.source_any[Source::Alexa.index()]),
        &gconf,
    );
    let csv = report::growth_csv(&[
        ("nl_dps", &g_nl),
        ("nl_expansion", &g_nl_zone),
        ("alexa_dps", &g_alexa),
    ]);
    ctx.write("fig6.csv", &csv);
    format!(
        "== Fig. 6: growth in .nl and Alexa ==\n\
         .nl DPS adoption:    {:.3}x   (paper: ~1.105x)\n\
         .nl expansion:       {:.3}x   (paper: ~1.018x)\n\
         Alexa DPS adoption:  {:.3}x   (paper: ~1.118x)\n",
        g_nl.factor, g_nl_zone.factor, g_alexa.factor
    )
}

/// Figure 7: per-provider flux in two-week windows.
pub fn exp_fig7(ctx: &Context) -> String {
    let window = (14 / ctx.config.stride.max(1) as usize).max(1);
    let fl = flux::analyze(&ctx.scan.timelines, ctx.refs.n, window);
    let csv = report::fig7_csv(&fl, &ctx.refs.names, &ctx.scan.series.days);
    ctx.write("fig7.csv", &csv);
    let mut out = String::from("== Fig. 7: flux of DPS use per provider ==\n");
    for (p, series) in fl.iter().enumerate() {
        let delta = series.delta();
        let max_in = delta.iter().max().copied().unwrap_or(0);
        let max_out = delta.iter().min().copied().unwrap_or(0);
        let (total, _) = flux::total_domains(series);
        let _ = writeln!(
            out,
            "{:<14} domains: {:>6}  max window delta: {:+}/{:+}",
            ctx.refs.names[p], total, max_in, max_out
        );
    }
    out.push_str("paper shape: repeated anomalies collapse to one influx/outflux pair; CloudFlare influx is spread out\n");
    out
}

/// Figure 8: on-demand peak-duration CDFs.
pub fn exp_fig8(ctx: &Context) -> String {
    let dists = peaks::analyze(&ctx.scan.timelines, ctx.refs.n, ctx.config.stride.max(1));
    let (summary, csv) = report::fig8(&dists, &ctx.refs.names);
    ctx.write("fig8.csv", &csv);
    let mut out = String::from("== Fig. 8: on-demand peak duration occurrences ==\n");
    out.push_str(&summary);
    out.push_str("\npaper p80 markers: ");
    for &(p, days) in &PAPER_P80 {
        let measured = dists[p]
            .quantile(0.8)
            .map(|d| d.to_string())
            .unwrap_or_else(|| "-".into());
        let _ = write!(out, "{} {}d/{}d  ", ctx.refs.names[p], measured, days);
    }
    out.push_str("(measured/paper)\n");
    out
}

/// Anomaly attribution demo on the three largest swings.
pub fn exp_anomalies(ctx: &Context) -> String {
    let mut out = String::from("== Anomaly attribution (§4.4.1) ==\n");
    let mut all: Vec<(usize, attribution::Anomaly)> = Vec::new();
    for p in 0..ctx.refs.n {
        for a in attribution::find_anomalies(&ctx.scan.series.provider_any[p], 8.0, 30) {
            all.push((p, a));
        }
    }
    all.sort_by_key(|(_, a)| std::cmp::Reverse(a.delta.abs()));
    for (p, a) in all.iter().take(8) {
        let day = ctx.scan.series.days[a.day_index];
        let prev = ctx.scan.series.days[a.day_index - 1];
        let att = attribution::explain(&ctx.store, &ctx.refs, *p as u8, prev, day);
        let party = att.dominant_party().unwrap_or("(mixed)").to_string();
        let _ = writeln!(
            out,
            "{:<14} {}: Δ{:+}  (+{} -{})  dominant party: {}",
            ctx.refs.names[*p],
            dps_netsim::Day(day),
            a.delta,
            att.joined,
            att.left,
            party
        );
    }
    let _ = writeln!(out, "({} anomalies total)", all.len());
    out
}

/// Reference-combination breakdown (§3.3, "not only if, but how"),
/// evaluated on the last measured day.
pub fn exp_combos(ctx: &Context) -> String {
    let last = *ctx.scan.series.days.last().expect("days");
    let breakdown = combinations::analyze_day(&ctx.store, &ctx.refs, last);
    let text = combinations::render(&breakdown, &ctx.refs.names);
    ctx.write("combinations.txt", &text);
    format!(
        "== Reference combinations on {} (§3.3) ==\n{text}",
        dps_netsim::Day(last)
    )
}

/// On-demand mechanism identification (§3.4).
pub fn exp_mechanisms(ctx: &Context) -> String {
    let breakdowns = mechanism::analyze(&ctx.store, &ctx.refs, &ctx.scan.timelines, 1);
    let text = mechanism::render(&breakdowns, &ctx.refs.names);
    ctx.write("mechanisms.txt", &text);
    format!(
        "== On-demand diversion mechanisms (§3.4) ==\n{text}\
         scenario design: CloudFlare/Verisign flip via managed DNS, Akamai/Incapsula/Neustar\n\
         via CNAME changes, the rest via A-record changes; ENOM/ZOHO baskets divert via BGP.\n"
    )
}

/// Ablation: ASN-only detection vs the full CNAME+NS+ASN methodology.
pub fn exp_ablation(ctx: &Context) -> String {
    let s = &ctx.scan.series;
    let last = s.days.len() - 1;
    let mut out = String::from("== Ablation: ASN-only vs full detection (last day) ==\n");
    let _ = writeln!(
        out,
        "{:<14} {:>8} {:>9} {:>8}",
        "provider", "ASN-only", "full", "missed"
    );
    for (p, name) in ctx.refs.names.iter().enumerate() {
        let asn_only = s.provider_asn[p][last];
        let full = s.provider_any[p][last];
        let _ = writeln!(
            out,
            "{:<14} {:>8} {:>9} {:>7.1}%",
            name,
            asn_only,
            full,
            100.0 * f64::from(full - asn_only) / f64::from(full.max(1))
        );
    }
    out.push_str(
        "ASN-only detection misses managed-DNS/no-diversion customers (Verisign's NS-only\n\
         population) and any domain measured while diversion was off — the reason the\n\
         paper combines CNAME, NS and ASN references.\n",
    );
    out
}

/// Ablation: smoothing window and anomaly-cleaning sweep on Fig. 5.
pub fn exp_smoothing(ctx: &Context) -> String {
    let series = &ctx.scan.series;
    let combined = series.combined_any();
    let mut out =
        String::from("== Ablation: smoothing window / cleaning on the Fig. 5 factor ==\n");
    let _ = writeln!(out, "{:>8} {:>10} {:>10}", "window", "cleaned", "raw");
    let stride = ctx.config.stride.max(1) as usize;
    for window in [7usize, 14, 28, 56] {
        let factors: Vec<f64> = [true, false]
            .iter()
            .map(|&clean| {
                let config = GrowthConfig {
                    median_window: (window / stride).max(1),
                    clean_anomalies: clean,
                    max_excursion_days: (240 / stride).max(10),
                    ..GrowthConfig::default()
                };
                growth::analyze(&series.days, &combined, &config).factor
            })
            .collect();
        let _ = writeln!(
            out,
            "{:>7}d {:>9.3}x {:>9.3}x",
            window, factors[0], factors[1]
        );
    }
    out.push_str(
        "the cleaned factor is stable across windows; without cleaning, window choice matters\n",
    );
    out
}

/// Ablation: per-day data-quality gating (the automated §4.2 cleaning).
///
/// A sweep that collapses in the final stretch of the window fakes a mass
/// provider exodus: the tail level shift is unpaired, so anomaly cleaning
/// (correctly) keeps it and the growth factor craters. Masking those days
/// via their low-coverage `DayQuality` records bridges them instead and
/// restores the true factor. Also prints the store's real per-day quality
/// summary, as `dpscope store info` would.
pub fn exp_quality(ctx: &Context) -> String {
    use dps_core::{QualityMask, DEFAULT_MIN_COVERAGE};
    let series = &ctx.scan.series;
    let combined = series.combined_any();
    let stride = ctx.config.stride.max(1) as usize;
    let config = GrowthConfig {
        median_window: (28 / stride).max(1),
        max_excursion_days: (240 / stride).max(10),
        ..GrowthConfig::default()
    };
    let reference = growth::analyze(&series.days, &combined, &config);

    // Simulated outage: the last `k` measured days lose ~95% coverage —
    // long enough that median smoothing cannot out-vote the tail.
    let n = combined.len();
    let k = (config.median_window / 2 + 2).min(n / 4).max(1);
    let mut degraded = combined.clone();
    let mut masked_days = Vec::new();
    for (i, v) in degraded.iter_mut().enumerate().skip(n - k) {
        *v /= 20;
        masked_days.push(series.days[i]);
    }
    let unmasked = growth::analyze(&series.days, &degraded, &config);
    let masked = growth::analyze_masked(&series.days, &degraded, &config, &masked_days);

    let mask = QualityMask::from_store(&ctx.store, DEFAULT_MIN_COVERAGE);
    let mut out = String::from("== Ablation: data-quality gating on the Fig. 5 factor (§4.2) ==\n");
    let _ = writeln!(out, "{:<34} {:>8}", "arm", "factor");
    let _ = writeln!(
        out,
        "{:<34} {:>7.3}x",
        "clean series (reference)", reference.factor
    );
    let _ = writeln!(
        out,
        "{:<34} {:>7.3}x",
        format!("last {k} days degraded, no mask"),
        unmasked.factor
    );
    let _ = writeln!(
        out,
        "{:<34} {:>7.3}x",
        format!("last {k} days degraded, masked"),
        masked.factor
    );
    out.push_str(
        "an unpaired tail shift looks like a permanent exodus, so anomaly cleaning keeps\n\
         it; only the coverage mask can tell missing data from real churn.\n\n",
    );
    out.push_str(&report::quality_summary(&ctx.store, &mask));
    out
}

/// Footnote 10: census of CloudFlare's authoritative name-server host
/// names on one day, most-referenced first.
pub fn exp_nsnames(ctx: &Context) -> String {
    let last = *ctx.scan.series.days.last().expect("days");
    let cloudflare = 2u8;
    let census = report::ns_host_census(&ctx.store, &ctx.refs, cloudflare, last);
    let mut out = format!(
        "== NS host census (paper footnote 10) on {} ==\n{} distinct CloudFlare NS host names\n",
        dps_netsim::Day(last),
        census.len()
    );
    for (host, count) in census.iter().take(8) {
        let _ = writeln!(out, "  {host:<28} referenced by {count} domains");
    }
    out.push_str(
        "paper: 403 names on 2016-04-30, kate.ns.cloudflare.com most-referenced (112k domains)\n",
    );
    let csv: String = std::iter::once("host,domains".to_string())
        .chain(census.iter().map(|(h, c)| format!("{h},{c}")))
        .collect::<Vec<_>>()
        .join("\n");
    ctx.write("nsnames.csv", &csv);
    out
}

/// Ground-truth validation (beyond the paper): per-domain-day detection
/// precision/recall, computable only because the simulator knows the
/// truth. Steps a fresh copy of the world through sampled days.
pub fn exp_validation(ctx: &Context) -> String {
    use dps_ecosystem::Tld;
    use std::collections::HashSet;
    let params = ScenarioParams {
        seed: ctx.config.seed,
        scale: ctx.config.scale,
        gtld_days: ctx.config.days,
        cc_start_day: ctx.config.cc_start,
    };
    let mut fresh = World::imc2016(params);
    let sample: Vec<u32> = ctx.scan.series.days.iter().copied().step_by(14).collect();
    let sampled: HashSet<u32> = sample.iter().copied().collect();

    // Truth on sampled days.
    let mut truth: HashSet<(u32, u32, u8)> = HashSet::new();
    for &day in &sample {
        fresh.advance_to(dps_netsim::Day(day));
        for (i, st) in fresh.domains().iter().enumerate() {
            let measured = matches!(st.tld, Tld::Com | Tld::Net | Tld::Org);
            if !measured || !st.alive_on(dps_netsim::Day(day)) || st.outage {
                continue;
            }
            let in_outage_basket = st
                .basket
                .is_some_and(|(b, _)| fresh.baskets()[b.0 as usize].outage);
            if in_outage_basket {
                continue;
            }
            if let Some(p) = st.diversion.provider() {
                truth.insert((day, i as u32, p.0));
            }
        }
    }
    // Detection on the same days (customer domains only — infrastructure
    // SLDs self-reference by design).
    let mut detected: HashSet<(u32, u32, u8)> = HashSet::new();
    for (&(entry, p), tl) in &ctx.scan.timelines.map {
        if entry % 2 == 1 {
            continue;
        }
        for di in 0..tl.any.len() {
            let day = ctx.scan.timelines.days[di];
            if tl.any.get(di) && sampled.contains(&day) {
                detected.insert((day, entry / 2, p));
            }
        }
    }
    let tp = detected.intersection(&truth).count() as f64;
    let precision = if detected.is_empty() {
        1.0
    } else {
        tp / detected.len() as f64
    };
    let recall = if truth.is_empty() {
        1.0
    } else {
        tp / truth.len() as f64
    };
    format!(
        "== Ground-truth validation (beyond the paper) ==\n\
         sampled days: {} (every 14th)\n\
         truth (domain, day, provider) triples: {}\n\
         detected: {}\n\
         precision: {:.4}   recall: {:.4}\n",
        sample.len(),
        truth.len(),
        detected.len(),
        precision,
        recall
    )
}

/// Pipeline demo (the paper's Fig. 1 architecture, with live stats).
pub fn exp_pipeline(ctx: &Context) -> String {
    let mut out = String::from("== Fig. 1: measurement pipeline ==\n");
    out.push_str(
        "TLD zone repositories → Stage I collection (worker cloud)\n\
         → Stage II storage (columnar snapshots) → Stage III ASN supplement → analysis\n\n",
    );
    let mut dps = 0u64;
    let mut stored = 0u64;
    let mut raw = 0u64;
    for source in dps_measure::SOURCES {
        let st = ctx.store.stats(source);
        dps += st.data_points;
        stored += st.stored_bytes;
        raw += st.raw_bytes;
    }
    let _ = writeln!(
        out,
        "data points collected: {}",
        report::human_count(dps as f64)
    );
    let _ = writeln!(
        out,
        "storage: {} columnar ({} raw, {:.1}x compression)",
        report::human_bytes(stored),
        report::human_bytes(raw),
        raw as f64 / stored as f64
    );
    let _ = writeln!(out, "dictionary entries: {}", ctx.store.dict.len());
    out
}

/// Runs one experiment by id; `all` runs everything.
pub fn run(ctx: &Context, id: &str) -> Option<String> {
    let all = [
        ("table1", exp_table1 as fn(&Context) -> String),
        ("table2", exp_table2),
        ("fig2", exp_fig2),
        ("fig3", exp_fig3),
        ("fig4", exp_fig4),
        ("fig5", exp_fig5),
        ("fig6", exp_fig6),
        ("fig7", exp_fig7),
        ("fig8", exp_fig8),
        ("anomalies", exp_anomalies),
        ("combos", exp_combos),
        ("mechanisms", exp_mechanisms),
        ("nsnames", exp_nsnames),
        ("ablation", exp_ablation),
        ("smoothing", exp_smoothing),
        ("quality", exp_quality),
        ("validation", exp_validation),
        ("pipeline", exp_pipeline),
    ];
    if id == "all" {
        let mut out = String::new();
        for (_, f) in all {
            out.push_str(&f(ctx));
            out.push('\n');
        }
        return Some(out);
    }
    all.iter()
        .find(|(name, _)| *name == id)
        .map(|(_, f)| f(ctx))
}

/// The experiment ids `run` understands.
pub fn experiment_ids() -> Vec<&'static str> {
    vec![
        "table1",
        "table2",
        "fig2",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "anomalies",
        "combos",
        "mechanisms",
        "nsnames",
        "ablation",
        "smoothing",
        "quality",
        "validation",
        "pipeline",
        "all",
    ]
}
