//! # dps-bench — experiment harness and benchmarks
//!
//! The [`experiments`] module regenerates every table and figure of the
//! paper (driven by the `experiments` binary); the Criterion benches under
//! `benches/` track the performance of the hot paths.

pub mod experiments;
