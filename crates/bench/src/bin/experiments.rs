//! Experiment runner: regenerates every table and figure of the paper.
//!
//! ```sh
//! # Full reproduction (~1/1000 of the real namespace, 550 daily sweeps;
//! # takes a few minutes and ~1 GiB RAM):
//! cargo run --release -p dps-bench --bin experiments -- all
//!
//! # Faster: sweep every 2nd day at half scale.
//! cargo run --release -p dps-bench --bin experiments -- --scale 0.5 --stride 2 all
//!
//! # One experiment:
//! cargo run --release -p dps-bench --bin experiments -- fig5
//! ```

use dps_bench::experiments::{experiment_ids, run, Context, ExperimentConfig};

fn usage() -> ! {
    eprintln!(
        "usage: experiments [--scale X] [--days N] [--cc-start N] [--stride N] [--seed N] [--out DIR] [--store DIR] <id>...\n\
         ids: {}",
        experiment_ids().join(", ")
    );
    std::process::exit(2);
}

fn main() {
    let mut config = ExperimentConfig::default();
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match arg.as_str() {
            "--scale" => config.scale = value("--scale").parse().unwrap_or_else(|_| usage()),
            "--days" => config.days = value("--days").parse().unwrap_or_else(|_| usage()),
            "--cc-start" => {
                config.cc_start = value("--cc-start").parse().unwrap_or_else(|_| usage())
            }
            "--stride" => config.stride = value("--stride").parse().unwrap_or_else(|_| usage()),
            "--seed" => config.seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--out" => config.out_dir = value("--out").into(),
            "--store" => config.store_dir = Some(value("--store").into()),
            "--quick" => {
                let out = config.out_dir.clone();
                config = ExperimentConfig::quick();
                config.out_dir = out;
            }
            "-h" | "--help" => usage(),
            id if !id.starts_with('-') => ids.push(id.to_string()),
            _ => usage(),
        }
    }
    if ids.is_empty() {
        usage();
    }
    if config.cc_start >= config.days {
        config.cc_start = config.days * 2 / 3;
    }

    eprintln!(
        "building context: scale {}, {} days (stride {}), cc from day {}",
        config.scale, config.days, config.stride, config.cc_start
    );
    let ctx = Context::build(config);
    for id in ids {
        match run(&ctx, &id) {
            Some(text) => println!("{text}"),
            None => {
                eprintln!("unknown experiment {id:?}");
                usage()
            }
        }
    }
}
