#!/usr/bin/env sh
# Repository CI gate: formatting, lints, static analysis, then the tier-1
# build + test run. Everything runs offline against the vendored
# dependency stand-ins.
#
# Subcommands (run one step alone):
#   ./ci.sh chaos-smoke       chaos determinism smoke only
#   ./ci.sh telemetry-smoke   archived telemetry determinism smoke only
#   ./ci.sh cluster-smoke     multi-process sweep byte-identity smoke only
#   ./ci.sh stream-smoke      incremental-analysis equivalence smoke only
#   ./ci.sh fuzz-smoke        deterministic fuzzer over every target
#   ./ci.sh serve-smoke       real-socket authoritative DNS round trip
#   ./ci.sh scale-smoke       sharded-archive equivalence + resume smoke
#   ./ci.sh analyze           dps-analyzer over the workspace (must be clean)
#   ./ci.sh analyze-fixtures  known-bad corpus must still fail, good must pass
set -eu

cd "$(dirname "$0")"

# Supervised sweep under a scripted fault schedule: must complete, verify
# clean, and be byte-identical across two same-seed runs.
chaos_smoke() {
    echo "==> smoke: dpscope measure --chaos (determinism)"
    rm -rf target/ci-chaos-a target/ci-chaos-b
    ./target/release/dpscope measure --scale 0.004 --days 2 --cc-start 2 \
        --archive target/ci-chaos-a \
        --chaos 'blackout@0..1500ms; degrade@0..inf@loss=0.15'
    ./target/release/dpscope measure --scale 0.004 --days 2 --cc-start 2 \
        --archive target/ci-chaos-b \
        --chaos 'blackout@0..1500ms; degrade@0..inf@loss=0.15'
    ./target/release/dpscope store verify target/ci-chaos-a
    ./target/release/dpscope store info target/ci-chaos-a
    cmp target/ci-chaos-a/archive.dps target/ci-chaos-b/archive.dps
    rm -rf target/ci-chaos-a target/ci-chaos-b
}

# Archived telemetry must be deterministic and non-trivial: two same-seed
# chaos sweeps render byte-identical `metrics --json`, the JSON parses,
# and the counters that prove the instrumentation is live are non-zero.
telemetry_smoke() {
    echo "==> smoke: dpscope metrics (telemetry determinism)"
    rm -rf target/ci-telemetry-a target/ci-telemetry-b
    for side in a b; do
        ./target/release/dpscope measure --scale 0.004 --days 2 --cc-start 2 \
            --archive "target/ci-telemetry-$side" \
            --chaos 'blackout@0..1500ms; degrade@0..inf@loss=0.15'
        ./target/release/dpscope metrics "target/ci-telemetry-$side" --json \
            >"target/ci-telemetry-$side/metrics.json"
    done
    cmp target/ci-telemetry-a/metrics.json target/ci-telemetry-b/metrics.json
    for counter in net.packets.sent net.chaos.degraded sweep.attempted \
        health.breaker.probes; do
        grep -q "\"$counter\"" target/ci-telemetry-a/metrics.json || {
            echo "missing counter $counter in metrics JSON" >&2
            exit 1
        }
        if grep -q "\"$counter\": 0," target/ci-telemetry-a/metrics.json; then
            echo "counter $counter is zero — instrumentation is dead" >&2
            exit 1
        fi
    done
    if command -v python3 >/dev/null 2>&1; then
        python3 -c 'import json,sys; json.load(open(sys.argv[1]))' \
            target/ci-telemetry-a/metrics.json
    fi
    # The per-day view must render too (day 0 exists in a 2-day sweep).
    ./target/release/dpscope metrics target/ci-telemetry-a --day 1 >/dev/null
    rm -rf target/ci-telemetry-a target/ci-telemetry-b
}

# Multi-process sweep: a manager plus two forked worker agents over a
# Unix socket must produce an archive byte-identical to the
# single-process run of the same seed, verify clean, and leave a
# readable per-worker provenance sidecar.
cluster_smoke() {
    echo "==> smoke: dpscope measure --workers 2 (cluster byte-identity)"
    rm -rf target/ci-cluster-single target/ci-cluster-multi
    ./target/release/dpscope measure --scale 0.004 --days 3 --cc-start 2 \
        --archive target/ci-cluster-single
    ./target/release/dpscope measure --scale 0.004 --days 3 --cc-start 2 \
        --workers 2 --archive target/ci-cluster-multi
    cmp target/ci-cluster-single/archive.dps target/ci-cluster-multi/archive.dps
    ./target/release/dpscope store verify target/ci-cluster-multi
    test -s target/ci-cluster-multi/provenance.tsv
    ./target/release/dpscope metrics target/ci-cluster-multi --by-worker \
        | grep -q 'cluster.rows{worker="local-' || {
        echo "metrics --by-worker shows no per-worker rows" >&2
        exit 1
    }
    rm -rf target/ci-cluster-single target/ci-cluster-multi
}

# Streaming analysis: a --stream sweep must stay byte-identical between
# single-process and 2-worker cluster runs (checkpoint pages included),
# verify clean, pass the incremental-equals-full-rescan gate, and render
# a deterministic status.
stream_smoke() {
    echo "==> smoke: dpscope measure --stream (incremental analysis equivalence)"
    rm -rf target/ci-stream-single target/ci-stream-multi
    ./target/release/dpscope measure --scale 0.004 --days 3 --cc-start 2 \
        --stream --archive target/ci-stream-single
    ./target/release/dpscope measure --scale 0.004 --days 3 --cc-start 2 \
        --stream --workers 2 --archive target/ci-stream-multi
    cmp target/ci-stream-single/archive.dps target/ci-stream-multi/archive.dps
    ./target/release/dpscope store verify target/ci-stream-single
    ./target/release/dpscope stream check target/ci-stream-single
    ./target/release/dpscope stream status target/ci-stream-single
    ./target/release/dpscope stream status target/ci-stream-single --json \
        >target/ci-stream-single/status.json
    ./target/release/dpscope stream status target/ci-stream-multi --json \
        >target/ci-stream-multi/status.json
    cmp target/ci-stream-single/status.json target/ci-stream-multi/status.json
    ./target/release/dpscope store info target/ci-stream-single \
        | grep -q '^analysis' || {
        echo "store info does not list the analysis page kind" >&2
        exit 1
    }
    rm -rf target/ci-stream-single target/ci-stream-multi
}

# Sharded archives: a --shards 3 sweep must verify clean, scan to the
# same analysis as the single-file run of the same seed, resume into the
# existing sharded layout, and keep `--shards 1` byte-identical to the
# historical single-file archive.
scale_smoke() {
    echo "==> smoke: dpscope measure --shards (sharded-archive equivalence)"
    rm -rf target/ci-scale-single target/ci-scale-sharded target/ci-scale-resume
    ./target/release/dpscope measure --scale 0.004 --days 3 --cc-start 2 \
        --archive target/ci-scale-single
    ./target/release/dpscope measure --scale 0.004 --days 3 --cc-start 2 \
        --shards 3 --archive target/ci-scale-sharded
    test -s target/ci-scale-sharded/archive.manifest
    test -s target/ci-scale-sharded/archive.shard002.dps
    ./target/release/dpscope store verify target/ci-scale-sharded
    ./target/release/dpscope store info target/ci-scale-sharded \
        | grep -q 'sharded (3 shard files' || {
        echo "store info does not report the sharded layout" >&2
        exit 1
    }
    # Analysis over the sharded archive equals the single-file run.
    ./target/release/dpscope analyze --scale 0.004 --days 3 --cc-start 2 \
        --archive target/ci-scale-single --out target/ci-scale-single/figs table1
    ./target/release/dpscope analyze --scale 0.004 --days 3 --cc-start 2 \
        --archive target/ci-scale-sharded --out target/ci-scale-sharded/figs table1
    cmp target/ci-scale-single/figs/table1.txt target/ci-scale-sharded/figs/table1.txt
    # Re-running the same sweep resumes into the existing sharded layout
    # (every day already committed) and leaves every file byte-identical.
    # Incremental and crash-interrupted resumes are covered in cargo
    # tests; the CLI cannot stop a sweep mid-run deterministically.
    mkdir -p target/ci-scale-resume
    cp target/ci-scale-sharded/archive.manifest \
        target/ci-scale-sharded/archive.shard*.dps target/ci-scale-resume/
    ./target/release/dpscope measure --scale 0.004 --days 3 --cc-start 2 \
        --shards 3 --archive target/ci-scale-resume
    cmp target/ci-scale-resume/archive.manifest target/ci-scale-sharded/archive.manifest
    for k in 000 001 002; do
        cmp "target/ci-scale-resume/archive.shard$k.dps" \
            "target/ci-scale-sharded/archive.shard$k.dps"
    done
    rm -rf target/ci-scale-single target/ci-scale-sharded target/ci-scale-resume
}

# Deterministic mutation fuzzing: every decoder target runs a fixed seed
# for a bounded iteration count; any panic or round-trip divergence fails
# the gate. The checked-in corpus (including minimised regressions) is
# loaded automatically.
fuzz_smoke() {
    echo "==> smoke: dpscope fuzz all (deterministic, fixed seed)"
    ./target/release/dpscope fuzz all --iters 100000 --seed 2016
}

# Real-socket authoritative DNS: spawn `dpscope serve` on loopback, query
# it over UDP and TCP with the real-transport dig, then shut it down
# cleanly by closing stdin.
serve_smoke() {
    echo "==> smoke: dpscope serve + dig over real sockets"
    rm -rf target/ci-serve
    mkdir -p target/ci-serve/zones
    printf '$ORIGIN ci.test.\n@ IN NS ns1.ci.test.\nns1 IN A 10.9.0.53\nwww IN A 10.9.0.80\n' \
        >target/ci-serve/zones/ci.test.zone
    mkfifo target/ci-serve/stdin
    ./target/release/dpscope serve --zones target/ci-serve/zones \
        >target/ci-serve/out.txt 2>&1 <target/ci-serve/stdin &
    serve_pid=$!
    # Hold the write end open until we are done, then close it for EOF.
    exec 9>target/ci-serve/stdin
    for _ in $(seq 1 50); do
        grep -q 'serve: listening' target/ci-serve/out.txt 2>/dev/null && break
        sleep 0.1
    done
    udp_addr=$(sed -n 's/.*udp=\([0-9.:]*\).*/\1/p' target/ci-serve/out.txt)
    tcp_addr=$(sed -n 's/.*tcp=\([0-9.:]*\).*/\1/p' target/ci-serve/out.txt)
    ./target/release/dpscope dig www.ci.test A --server "udp://$udp_addr" \
        | grep -q '10.9.0.80' || { echo "UDP answer missing" >&2; exit 1; }
    ./target/release/dpscope dig www.ci.test A --server "tcp://$tcp_addr" \
        | grep -q '10.9.0.80' || { echo "TCP answer missing" >&2; exit 1; }
    exec 9>&-
    wait "$serve_pid" || { echo "serve exited unclean" >&2; exit 1; }
    grep -q 'serve: shutdown' target/ci-serve/out.txt
    rm -rf target/ci-serve
}

# Workspace-native static analysis: determinism, panic-safety and hygiene
# invariants must hold (waivers need written reasons). --deny promotes
# warnings (e.g. stale waivers) to failures so CI stays tidy. The SARIF
# artifact is written even on a clean run so code-review tooling always
# has a current report to ingest.
analyze() {
    echo "==> dps-analyzer --deny (workspace invariants)"
    cargo run --release --offline -q -p dps-analyzer -- \
        --root . --deny --sarif target/dps-analyzer.sarif
    test -s target/dps-analyzer.sarif \
        || { echo "missing SARIF artifact target/dps-analyzer.sarif" >&2; exit 1; }
}

# Negative check: every bad fixture must still fire its annotated rules,
# every good fixture must stay clean. Guards the analyzer itself against
# silently losing its teeth.
analyze_fixtures() {
    echo "==> dps-analyzer --check-fixtures (rules still bite)"
    cargo run --release --offline -q -p dps-analyzer -- \
        --check-fixtures crates/analyzer/fixtures
}

case "${1:-}" in
chaos-smoke)
    cargo build --release --offline
    chaos_smoke
    echo "==> chaos smoke green"
    exit 0
    ;;
telemetry-smoke)
    cargo build --release --offline
    telemetry_smoke
    echo "==> telemetry smoke green"
    exit 0
    ;;
cluster-smoke)
    cargo build --release --offline
    cluster_smoke
    echo "==> cluster smoke green"
    exit 0
    ;;
stream-smoke)
    cargo build --release --offline
    stream_smoke
    echo "==> stream smoke green"
    exit 0
    ;;
fuzz-smoke)
    cargo build --release --offline
    fuzz_smoke
    echo "==> fuzz smoke green"
    exit 0
    ;;
serve-smoke)
    cargo build --release --offline
    serve_smoke
    echo "==> serve smoke green"
    exit 0
    ;;
scale-smoke)
    cargo build --release --offline
    scale_smoke
    echo "==> scale smoke green"
    exit 0
    ;;
analyze)
    analyze
    echo "==> analyze green"
    exit 0
    ;;
analyze-fixtures)
    analyze_fixtures
    echo "==> analyze-fixtures green"
    exit 0
    ;;
esac

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

analyze
analyze_fixtures

echo "==> tier-1: cargo build --release"
cargo build --release --offline

echo "==> smoke: dpscope store verify over a tiny archive"
rm -rf target/ci-smoke
./target/release/dpscope measure --scale 0.005 --days 4 --cc-start 3 --archive target/ci-smoke
./target/release/dpscope store info target/ci-smoke
./target/release/dpscope store verify target/ci-smoke
rm -rf target/ci-smoke

chaos_smoke
telemetry_smoke
cluster_smoke
stream_smoke
fuzz_smoke
serve_smoke
scale_smoke

echo "==> tier-1: cargo test -q"
cargo test -q --offline

echo "==> workspace tests"
cargo test -q --offline --workspace

echo "==> CI green"
