#!/usr/bin/env sh
# Repository CI gate: formatting, lints, then the tier-1 build + test run.
# Everything runs offline against the vendored dependency stand-ins.
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release --offline

echo "==> tier-1: cargo test -q"
cargo test -q --offline

echo "==> workspace tests"
cargo test -q --offline --workspace

echo "==> CI green"
