#!/usr/bin/env sh
# Repository CI gate: formatting, lints, then the tier-1 build + test run.
# Everything runs offline against the vendored dependency stand-ins.
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release --offline

echo "==> smoke: dpscope store verify over a tiny archive"
rm -rf target/ci-smoke
./target/release/dpscope measure --scale 0.005 --days 4 --cc-start 3 --archive target/ci-smoke
./target/release/dpscope store info target/ci-smoke
./target/release/dpscope store verify target/ci-smoke
rm -rf target/ci-smoke

echo "==> tier-1: cargo test -q"
cargo test -q --offline

echo "==> workspace tests"
cargo test -q --offline --workspace

echo "==> CI green"
