//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` as forward-looking
//! annotations only; no code path serializes through serde. This stub
//! provides the trait names plus no-op derive macros so the annotations
//! compile without network access to the real serde stack.

/// Marker trait matching `serde::Serialize`'s name.
pub trait Serialize {}

/// Marker trait matching `serde::Deserialize`'s name.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
