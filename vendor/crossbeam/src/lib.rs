//! Offline stand-in for the `crossbeam` crate: the `thread::scope` API the
//! mapreduce engine uses, implemented on `std::thread::scope` (stable since
//! Rust 1.63). Spawn closures receive a `&Scope` like crossbeam's, so
//! nested spawns keep working.

/// Scoped threads in crossbeam's API shape.
pub mod thread {
    use std::any::Any;

    /// Spawn scope handed to the `scope` closure and to spawned threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result (`Err` on panic).
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread scoped to `'env` borrows. The closure receives
        /// this scope again so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope in which borrowing spawns are allowed; joins
    /// all spawned threads before returning. Always `Ok` — panics in
    /// spawned threads surface through their `join` (matching how the
    /// workspace uses crossbeam).
    #[allow(clippy::type_complexity)]
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = super::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let out = super::thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(out, 42);
    }
}
