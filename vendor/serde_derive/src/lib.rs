//! Offline stand-in for `serde_derive`.
//!
//! The workspace only *derives* `Serialize`/`Deserialize` as forward-looking
//! annotations — nothing serializes through serde at runtime (the columnar
//! store has its own encoding). The derives therefore expand to nothing,
//! which keeps the annotations compiling without the real proc-macro stack
//! (syn/quote are unavailable offline).

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
