//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small API subset it uses: non-poisoning `RwLock`, `Mutex`
//! and `Condvar` built on `std::sync`. Poisoned locks are recovered
//! transparently (parking_lot has no poisoning at all).

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A reader-writer lock that, unlike `std::sync::RwLock`, never poisons.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `t`.
    pub const fn new(t: T) -> Self {
        Self(std::sync::RwLock::new(t))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").field(&*self.read()).finish()
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A mutex that never poisons.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard for [`Mutex`]. The inner `Option` lets [`Condvar::wait`] move the
/// std guard out and back while keeping parking_lot's `&mut guard` shape.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `t`.
    pub const fn new(t: T) -> Self {
        Self(std::sync::Mutex::new(t))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Mutex").field(&*self.lock()).finish()
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0
            .as_deref()
            .expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0
            .as_deref_mut()
            .expect("guard present outside Condvar::wait")
    }
}

/// A condition variable usable with [`Mutex`], parking_lot style
/// (`wait` takes `&mut MutexGuard`).
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Self(std::sync::Condvar::new())
    }

    /// Blocks until notified, atomically releasing the guard's lock.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(|e| e.into_inner()));
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn mutex_and_condvar() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        t.join().unwrap();
    }
}
