//! String strategies from regular expressions.

use crate::regex::{parse, Node, RegexError};
use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy generating strings that match `pattern`. Mirrors
/// `proptest::string::string_regex`.
pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, RegexError> {
    Ok(RegexGeneratorStrategy {
        node: parse(pattern)?,
    })
}

/// See [`string_regex`].
#[derive(Debug, Clone)]
pub struct RegexGeneratorStrategy {
    node: Node,
}

impl Strategy for RegexGeneratorStrategy {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        self.node.generate(rng, &mut out);
        out
    }
}
