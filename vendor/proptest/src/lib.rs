//! Offline stand-in for the `proptest` crate.
//!
//! Implements the API subset the workspace's property tests use:
//! `Strategy` with `prop_map`/`boxed`, range and tuple strategies,
//! `any::<T>()`, `proptest::collection::vec`, regex-string strategies, the
//! `proptest!` / `prop_oneof!` / `prop_assert*` macros, `ProptestConfig`
//! and `TestCaseError`.
//!
//! Differences from real proptest, by design:
//! * no shrinking — a failing case reports its inputs verbatim;
//! * sampling is seeded per test from the test name, so runs are
//!   deterministic without a persistence file.

pub mod arbitrary;
pub mod collection;
pub mod regex;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// A strategy for any `Arbitrary` type, like `proptest::prelude::any`.
pub fn any<A: arbitrary::Arbitrary>() -> arbitrary::AnyStrategy<A> {
    arbitrary::AnyStrategy::new()
}

/// The glob import every property test starts with.
pub mod prelude {
    pub use crate::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property, failing the case (not the
/// process) so the harness can report the generating inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `prop_assert!` for equality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)*)
        );
    }};
}

/// `prop_assert!` for inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)*)
        );
    }};
}

/// Chooses uniformly between several strategies producing the same value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property-test functions. Each `arg in strategy` binding is
/// sampled `config.cases` times; the body runs per sample and may use
/// `prop_assert*` or return early with `?` on [`TestCaseError`].
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut rng);)*
                // Render inputs up front: the body may consume them by value.
                let inputs = format!("{:#?}", ($(&$arg,)*));
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property '{}' failed on case {}/{}: {}\ninputs: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e,
                        inputs
                    );
                }
            }
        }
    )*};
}
