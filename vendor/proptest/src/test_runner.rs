//! Config, error type and the seeded RNG driving sampling.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};
use std::fmt;

/// Why a single generated case failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// An assertion in the property body failed.
    Fail(String),
    /// The case asked to be skipped (`prop_assume`-style).
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self::Fail(msg.into())
    }

    /// A rejection with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        Self::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Fail(m) => write!(f, "{m}"),
            Self::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Per-test configuration; only `cases` is meaningful in this stand-in.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// The RNG handed to strategies while sampling.
#[derive(Debug, Clone)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// Deterministic RNG derived from the test's name, so every test
    /// explores a distinct but reproducible sequence.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self(SmallRng::seed_from_u64(h))
    }

    /// RNG from an explicit seed.
    pub fn from_seed(seed: u64) -> Self {
        Self(SmallRng::seed_from_u64(seed))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}
