//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Accepted size arguments for [`vec`]: an exact length, `lo..hi`, or
/// `lo..=hi`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// A `Vec` of values from `element`, with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_respected() {
        let mut rng = TestRng::from_seed(2);
        for _ in 0..50 {
            assert_eq!(vec(0u8..5, 3usize).sample(&mut rng).len(), 3);
            let v = vec(0u8..5, 1..4).sample(&mut rng);
            assert!((1..4).contains(&v.len()));
            let w = vec(0u8..5, 0..=2).sample(&mut rng);
            assert!(w.len() <= 2);
        }
    }
}
