//! A tiny regex *generator*: parses a pattern into an AST and samples
//! matching strings. Supports the subset property tests use: literals,
//! character classes with ranges, groups, alternation, and the `?`, `*`,
//! `+`, `{n}`, `{n,}`, `{n,m}` quantifiers. Anchors and look-around are
//! not supported (generation makes them meaningless).

use crate::test_runner::TestRng;
use rand::Rng;
use std::fmt;

/// Unbounded repetitions (`*`, `+`, `{n,}`) cap here.
const MAX_UNBOUNDED_REPEAT: u32 = 8;

/// A pattern the parser rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegexError(pub String);

impl fmt::Display for RegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unsupported regex: {}", self.0)
    }
}

impl std::error::Error for RegexError {}

#[derive(Debug, Clone)]
pub(crate) enum Node {
    /// A literal character.
    Char(char),
    /// One character drawn from a set.
    Class(Vec<(char, char)>),
    /// Nodes in sequence.
    Seq(Vec<Node>),
    /// One branch chosen uniformly.
    Alt(Vec<Node>),
    /// `node{lo,hi}` (inclusive).
    Repeat(Box<Node>, u32, u32),
}

impl Node {
    pub(crate) fn generate(&self, rng: &mut TestRng, out: &mut String) {
        match self {
            Node::Char(c) => out.push(*c),
            Node::Class(ranges) => {
                // Weight ranges by size for uniformity over the set.
                let total: u32 = ranges.iter().map(|(a, b)| *b as u32 - *a as u32 + 1).sum();
                let mut pick = rng.gen_range(0..total);
                for (a, b) in ranges {
                    let size = *b as u32 - *a as u32 + 1;
                    if pick < size {
                        out.push(char::from_u32(*a as u32 + pick).expect("in range"));
                        break;
                    }
                    pick -= size;
                }
            }
            Node::Seq(nodes) => {
                for n in nodes {
                    n.generate(rng, out);
                }
            }
            Node::Alt(branches) => {
                let i = rng.gen_range(0..branches.len());
                branches[i].generate(rng, out);
            }
            Node::Repeat(node, lo, hi) => {
                let n = rng.gen_range(*lo..=*hi);
                for _ in 0..n {
                    node.generate(rng, out);
                }
            }
        }
    }
}

pub(crate) fn parse(pattern: &str) -> Result<Node, RegexError> {
    let mut chars: Vec<char> = pattern.chars().collect();
    chars.reverse(); // pop() from the front
    let node = parse_alt(&mut chars, pattern)?;
    if !chars.is_empty() {
        return Err(RegexError(format!(
            "{pattern}: trailing '{}'",
            chars.last().unwrap()
        )));
    }
    Ok(node)
}

fn parse_alt(chars: &mut Vec<char>, pat: &str) -> Result<Node, RegexError> {
    let mut branches = vec![parse_seq(chars, pat)?];
    while chars.last() == Some(&'|') {
        chars.pop();
        branches.push(parse_seq(chars, pat)?);
    }
    Ok(if branches.len() == 1 {
        branches.pop().expect("one")
    } else {
        Node::Alt(branches)
    })
}

fn parse_seq(chars: &mut Vec<char>, pat: &str) -> Result<Node, RegexError> {
    let mut nodes = Vec::new();
    while let Some(&c) = chars.last() {
        if c == ')' || c == '|' {
            break;
        }
        let atom = parse_atom(chars, pat)?;
        nodes.push(parse_quantifier(chars, atom, pat)?);
    }
    Ok(Node::Seq(nodes))
}

fn parse_atom(chars: &mut Vec<char>, pat: &str) -> Result<Node, RegexError> {
    match chars.pop() {
        Some('(') => {
            // Non-capturing marker is accepted and ignored.
            if chars.ends_with(&[':', '?']) {
                chars.pop();
                chars.pop();
            }
            let inner = parse_alt(chars, pat)?;
            if chars.pop() != Some(')') {
                return Err(RegexError(format!("{pat}: unclosed group")));
            }
            Ok(inner)
        }
        Some('[') => parse_class(chars, pat),
        Some('\\') => {
            let c = chars
                .pop()
                .ok_or_else(|| RegexError(format!("{pat}: dangling escape")))?;
            match c {
                'd' => Ok(Node::Class(vec![('0', '9')])),
                'w' => Ok(Node::Class(vec![
                    ('a', 'z'),
                    ('A', 'Z'),
                    ('0', '9'),
                    ('_', '_'),
                ])),
                's' => Ok(Node::Char(' ')),
                _ => Ok(Node::Char(c)),
            }
        }
        Some('.') => Ok(Node::Class(vec![(' ', '~')])), // printable ASCII
        Some(c @ ('^' | '$')) => Err(RegexError(format!("{pat}: anchor '{c}'"))),
        Some(c) => Ok(Node::Char(c)),
        None => Err(RegexError(format!("{pat}: unexpected end"))),
    }
}

fn parse_class(chars: &mut Vec<char>, pat: &str) -> Result<Node, RegexError> {
    if chars.last() == Some(&'^') {
        return Err(RegexError(format!("{pat}: negated class")));
    }
    let mut ranges: Vec<(char, char)> = Vec::new();
    loop {
        let c = chars
            .pop()
            .ok_or_else(|| RegexError(format!("{pat}: unclosed class")))?;
        match c {
            ']' => break,
            '\\' => {
                let e = chars
                    .pop()
                    .ok_or_else(|| RegexError(format!("{pat}: dangling escape")))?;
                match e {
                    'd' => ranges.push(('0', '9')),
                    _ => ranges.push((e, e)),
                }
            }
            _ => {
                // Range (a-z) or single char; '-' before ']' is literal.
                if chars.last() == Some(&'-')
                    && chars.get(chars.len().wrapping_sub(2)) != Some(&']')
                {
                    chars.pop();
                    let end = chars
                        .pop()
                        .ok_or_else(|| RegexError(format!("{pat}: bad range")))?;
                    if end < c {
                        return Err(RegexError(format!("{pat}: inverted range {c}-{end}")));
                    }
                    ranges.push((c, end));
                } else {
                    ranges.push((c, c));
                }
            }
        }
    }
    if ranges.is_empty() {
        return Err(RegexError(format!("{pat}: empty class")));
    }
    Ok(Node::Class(ranges))
}

fn parse_quantifier(chars: &mut Vec<char>, atom: Node, pat: &str) -> Result<Node, RegexError> {
    match chars.last() {
        Some('?') => {
            chars.pop();
            Ok(Node::Repeat(Box::new(atom), 0, 1))
        }
        Some('*') => {
            chars.pop();
            Ok(Node::Repeat(Box::new(atom), 0, MAX_UNBOUNDED_REPEAT))
        }
        Some('+') => {
            chars.pop();
            Ok(Node::Repeat(Box::new(atom), 1, MAX_UNBOUNDED_REPEAT))
        }
        Some('{') => {
            chars.pop();
            let mut spec = String::new();
            loop {
                match chars.pop() {
                    Some('}') => break,
                    Some(c) => spec.push(c),
                    None => return Err(RegexError(format!("{pat}: unclosed repetition"))),
                }
            }
            let parse_n = |s: &str| {
                s.parse::<u32>()
                    .map_err(|_| RegexError(format!("{pat}: bad count '{s}'")))
            };
            let (lo, hi) = match spec.split_once(',') {
                None => {
                    let n = parse_n(&spec)?;
                    (n, n)
                }
                Some((lo, "")) => {
                    let lo = parse_n(lo)?;
                    (lo, lo + MAX_UNBOUNDED_REPEAT)
                }
                Some((lo, hi)) => (parse_n(lo)?, parse_n(hi)?),
            };
            if hi < lo {
                return Err(RegexError(format!("{pat}: inverted repetition {lo},{hi}")));
            }
            Ok(Node::Repeat(Box::new(atom), lo, hi))
        }
        _ => Ok(atom),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen_many(pattern: &str, n: usize) -> Vec<String> {
        let node = parse(pattern).unwrap();
        let mut rng = TestRng::from_seed(9);
        (0..n)
            .map(|_| {
                let mut s = String::new();
                node.generate(&mut rng, &mut s);
                s
            })
            .collect()
    }

    #[test]
    fn class_with_ranges_and_literals() {
        for s in gen_many("[a-z0-9.-]{0,30}", 200) {
            assert!(s.len() <= 30);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '-'));
        }
    }

    #[test]
    fn label_shape_pattern() {
        // The DNS-label pattern the dns proptests use.
        for s in gen_many("[a-z0-9]([a-z0-9-]{0,14}[a-z0-9])?", 200) {
            assert!(!s.is_empty() && s.len() <= 16, "{s}");
            assert!(!s.starts_with('-') && !s.ends_with('-'), "{s}");
        }
    }

    #[test]
    fn alternation_and_plus() {
        let all = gen_many("(ab|cd)+x?", 100);
        for s in &all {
            let t = s.strip_suffix('x').unwrap_or(s);
            assert!(t.len() % 2 == 0 && !t.is_empty(), "{s}");
            for chunk in t.as_bytes().chunks(2) {
                assert!(chunk == b"ab" || chunk == b"cd", "{s}");
            }
        }
    }

    #[test]
    fn rejects_unsupported() {
        assert!(parse("^anchored$").is_err());
        assert!(parse("[^a]").is_err());
        assert!(parse("a{3,1}").is_err());
        assert!(parse("(unclosed").is_err());
    }
}
