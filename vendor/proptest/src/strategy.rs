//! The `Strategy` trait and its combinators.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// A recipe for generating values of one type. Object-safe so strategies
/// can be boxed for `prop_oneof!`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.sample(rng))
    }
}

/// See [`Strategy::boxed`].
pub struct BoxedStrategy<V>(Arc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        Self(Arc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        self.0.sample(rng)
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over `arms`; must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Bare string literals are regex strategies, like in real proptest:
/// `"[a-z]{1,8}"` generates matching strings.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        crate::string::string_regex(self)
            .unwrap_or_else(|e| panic!("invalid regex strategy {self:?}: {e}"))
            .sample(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_maps_and_unions() {
        let mut rng = TestRng::from_seed(1);
        let s = (0u32..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!(v < 20 && v % 2 == 0);
        }
        let u = Union::new(vec![(0u8..1).boxed(), (10u8..11).boxed()]);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(u.sample(&mut rng));
        }
        assert_eq!(seen, [0u8, 10].into_iter().collect());
    }
}
