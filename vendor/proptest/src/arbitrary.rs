//! `any::<T>()` support: uniform generation over a type's whole domain.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::{Rng, RngCore};
use std::marker::PhantomData;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<f64>()
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Printable ASCII keeps generated text debuggable.
        char::from(rng.gen_range(0x20u8..0x7F))
    }
}

impl<A: Arbitrary, const N: usize> Arbitrary for [A; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| A::arbitrary(rng))
    }
}

impl<A: Arbitrary, B: Arbitrary> Arbitrary for (A, B) {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (A::arbitrary(rng), B::arbitrary(rng))
    }
}

/// The strategy returned by [`crate::any`].
pub struct AnyStrategy<A>(PhantomData<fn() -> A>);

impl<A> AnyStrategy<A> {
    pub(crate) fn new() -> Self {
        Self(PhantomData)
    }
}

impl<A: Arbitrary> Strategy for AnyStrategy<A> {
    type Value = A;
    fn sample(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}
