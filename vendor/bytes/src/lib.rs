//! Offline stand-in for the `bytes` crate: the subset the DNS wire codec
//! uses — a growable buffer (`BytesMut`) plus the `Buf`/`BufMut` method
//! traits for big-endian reads and writes.

use std::ops::{Deref, DerefMut};

/// Write side: append primitive values in network byte order.
pub trait BufMut {
    /// Appends raw octets.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one octet.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// Read side: consume primitive values from the front of a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skips `n` bytes.
    fn advance(&mut self, n: usize);

    /// Reads one octet.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let v = u16::from_be_bytes(self.chunk()[..2].try_into().expect("2 bytes"));
        self.advance(2);
        v
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let v = u32::from_be_bytes(self.chunk()[..4].try_into().expect("4 bytes"));
        self.advance(4);
        v
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

/// A growable, contiguous byte buffer (derefs to `[u8]`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }

    /// Clears the buffer, keeping capacity.
    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Self {
        b.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_and_patch() {
        let mut b = BytesMut::with_capacity(8);
        b.put_u16(0x1234);
        b.put_u8(0xFF);
        b.put_u32(0xDEAD_BEEF);
        assert_eq!(b.len(), 7);
        b[0..2].copy_from_slice(&0xAABBu16.to_be_bytes());
        assert_eq!(b.to_vec()[..3], [0xAA, 0xBB, 0xFF]);
    }

    #[test]
    fn buf_reads() {
        let mut s: &[u8] = &[0, 1, 0, 0, 0, 2, 9];
        assert_eq!(s.get_u16(), 1);
        assert_eq!(s.get_u32(), 2);
        assert_eq!(s.get_u8(), 9);
        assert_eq!(s.remaining(), 0);
    }
}
