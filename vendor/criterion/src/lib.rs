//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the workspace benches use — `Criterion`,
//! benchmark groups with `throughput`/`sample_size`, `Bencher::iter`, and
//! the `criterion_group!`/`criterion_main!` macros — over a plain
//! wall-clock measurement loop. No statistics beyond median-of-samples and
//! no HTML reports; results print one line per benchmark:
//!
//! ```text
//! columnar/encode_runny    time: 184.2 µs   thrpt: 542.9 Melem/s
//! ```

use std::hint;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Units for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 30 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
            sample_size: 30,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into(), None, self.sample_size, f);
        self
    }
}

/// A named group sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used for derived rates.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets how many timed samples to take.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_benchmark(&id, self.throughput, self.sample_size, f);
        self
    }

    /// Ends the group (formatting no-op).
    pub fn finish(self) {}
}

/// Timing context passed to benchmark closures.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled by [`Bencher::iter`].
    ns_per_iter: f64,
}

impl Bencher {
    /// Measures `f`, auto-scaling the iteration count so each sample runs
    /// long enough for the clock to resolve it.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and pick an iteration count aiming at ~2 ms per sample.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
                self.ns_per_iter = elapsed.as_nanos() as f64 / iters as f64;
                break;
            }
            iters *= 2;
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    id: &str,
    throughput: Option<Throughput>,
    samples: usize,
    mut f: F,
) {
    let mut b = Bencher { ns_per_iter: 0.0 };
    // Each call to `f` is one sample; `f` drives `b.iter`.
    let mut times: Vec<f64> = Vec::with_capacity(samples);
    let budget = Instant::now();
    for _ in 0..samples {
        f(&mut b);
        times.push(b.ns_per_iter);
        if budget.elapsed() > Duration::from_secs(3) {
            break; // keep slow macro-benches bounded
        }
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let median = times[times.len() / 2];
    let time = fmt_time(median);
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / (median * 1e-9);
            println!(
                "{id:<40} time: {time:>10}   thrpt: {}",
                fmt_rate(rate, "elem/s")
            );
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / (median * 1e-9);
            println!(
                "{id:<40} time: {time:>10}   thrpt: {}",
                fmt_rate(rate, "B/s")
            );
        }
        None => println!("{id:<40} time: {time:>10}"),
    }
}

fn fmt_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.1} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn fmt_rate(per_s: f64, unit: &str) -> String {
    if per_s >= 1e9 {
        format!("{:.2} G{unit}", per_s / 1e9)
    } else if per_s >= 1e6 {
        format!("{:.2} M{unit}", per_s / 1e6)
    } else if per_s >= 1e3 {
        format!("{:.2} k{unit}", per_s / 1e3)
    } else {
        format!("{per_s:.1} {unit}")
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_prints() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.throughput(Throughput::Elements(100));
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.finish();
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_time(12.3), "12.3 ns");
        assert_eq!(fmt_time(12_345.0), "12.3 µs");
        assert!(fmt_rate(2.5e6, "elem/s").contains("Melem/s"));
    }
}
