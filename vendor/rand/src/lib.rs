//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Provides the pieces the workspace uses: a seedable `SmallRng`
//! (xoshiro256++, the same generator family real `SmallRng` uses on
//! 64-bit targets), the `Rng`/`RngCore`/`SeedableRng` traits with
//! `gen`/`gen_range`/`gen_bool`, and `seq::SliceRandom::shuffle`.
//! Determinism matters (seeded worlds must be reproducible run-to-run);
//! bit-compatibility with the real crate does not.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly over their whole domain (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1), matching rand's Standard for f64.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types with uniform sampling over caller-supplied ranges.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// Uniform draw from `[lo, hi]`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128;
                lo.wrapping_add((u128::from(rng.next_u64()) % span) as $t)
            }

            fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                lo.wrapping_add((u128::from(rng.next_u64()) % span) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty gen_range");
                let unit = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }

            fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                Self::sample_range(rng, lo, hi)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T: SampleUniform> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_inclusive(rng, *self.start(), *self.end())
    }
}

/// User-facing sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// A uniform value over `T`'s whole domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform value in `range`.
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand does for small seeds.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::RngCore;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: u64 = rng.gen_range(5..=5);
            assert_eq!(w, 5);
            let f: f64 = rng.gen_range(1e-9..1.0);
            assert!((1e-9..1.0).contains(&f));
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let i: usize = rng.gen_range(0..3);
            assert!(i < 3);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }

    #[test]
    fn f64_distribution_sane() {
        let mut rng = SmallRng::seed_from_u64(5);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
